"""Replica groups: R copies of every shard slice on distinct devices.

:class:`ReplicatedIndexHandle` is the ``create_index(..., shards=N,
replicas=R)`` surface. It keeps the sharded handle's whole contract —
same planner context, same exact merge, bit-identical results — and adds
an availability layer underneath:

* **Placement** is chained declustering: replica ``r`` of shard ``s``
  lives on pool device ``(s + r) % P`` with ``P = max(N, R)``. Every
  group spans R *distinct* devices, consecutive shards overlap on
  staggered device sets, and any ``R - 1`` concurrent device failures
  leave every group a survivor.
* **Each copy is its own residency unit**: R copies of a slice are R
  independent attach/evict entries under the session's aggregate memory
  budget, so replication trades budget headroom for availability
  exactly like real device memory would.
* **Selection** is least-loaded-first at dispatch time: the plan
  executor asks :meth:`_scan_candidates` for the group ordered by
  rolling per-device busy seconds (ties break to the lowest replica
  number). Replica choice deliberately stays *out* of the compiled
  plan: cached plans remain valid across failures and load shifts, and
  the executor re-prices the choice per batch from the same observed
  busy-seconds signal a cost-lattice row would use.
* **Self-healing**: :meth:`re_replicate` replaces copies stranded on a
  permanently failed device by re-attaching the surviving index to the
  least-loaded live device outside the group (paying ``index_transfer``
  — the index structure itself is copied from a survivor, not rebuilt).
"""

from __future__ import annotations

from repro.api.session import _IndexPart
from repro.cluster.executor import ShardedIndexHandle
from repro.core.engine import GenieEngine
from repro.errors import ConfigError
from repro.replica.faults import STATUS_DOWN


class ReplicatedIndexHandle(ShardedIndexHandle):
    """A sharded session index with R copies of every shard slice.

    Created by :meth:`GenieSession.create_index(..., shards=N, replicas=R)
    <repro.api.session.GenieSession.create_index>`. With ``replicas=1``
    this behaves exactly like a :class:`ShardedIndexHandle` (one copy per
    shard) while still participating in fault handling — a single-replica
    shard on a crashed device fails the search with a clean
    :class:`~repro.errors.AvailabilityError`.
    """

    def __init__(
        self,
        session,
        name: str,
        model,
        config,
        shards: int,
        replicas: int,
        strategy: str = "range",
        seed: int = 0,
    ):
        if int(replicas) < 1:
            raise ConfigError("replicas must be >= 1")
        super().__init__(
            session, name, model, config, shards, strategy=strategy, seed=seed
        )
        self.n_replicas = int(replicas)
        self._replica_parts: list[list[_IndexPart]] = []

    # ------------------------------------------------------------------
    # placement

    def _pool_size(self) -> int:
        """Pool devices needed: enough for the shards *and* one group."""
        return max(self.n_shards, self.n_replicas)

    def replica_devices(self, shard: int) -> list[int]:
        """Pool positions of ``shard``'s replica group (chained declustering).

        Replica ``r`` maps to ``(shard + r) % pool``; with
        ``replicas <= pool`` the group's devices are pairwise distinct.
        """
        pool = self._pool_size()
        return [(int(shard) + r) % pool for r in range(self.n_replicas)]

    def replica_layout(self) -> dict[int, tuple[int, ...]]:
        """Current shard → device-position placement (after any healing)."""
        return {
            shard: tuple(
                self.session.device_position(part.engine.device) for part in group
            )
            for shard, group in enumerate(self._replica_parts)
        }

    def _place_parts(self, built, devices) -> list[_IndexPart]:
        """R parts per shard, one per group device; replica 0 is primary."""
        self._parts = []
        self._replica_parts = []
        for shard, index in built:
            group = []
            for r, position in enumerate(self.replica_devices(shard.position)):
                if r == 0:
                    engine = self._part_engine(shard.position, devices[position])
                else:
                    engine = GenieEngine(
                        device=devices[position],
                        host=self.session.host,
                        config=self.config,
                    )
                group.append(
                    _IndexPart(
                        self, shard.position, engine, shard.corpus, index,
                        offset=0, global_ids=shard.global_ids, replica=r,
                    )
                )
            self._replica_parts.append(group)
            self._parts.append(group[0])
        return [part for group in self._replica_parts for part in group]

    def _all_parts(self) -> list[_IndexPart]:
        """Every replica of every shard, plus any delta-segment parts."""
        parts = [part for group in self._replica_parts for part in group]
        if self._stream is not None:
            parts.extend(self._stream.attached_parts())
        return parts

    # ------------------------------------------------------------------
    # dispatch

    def _scan_candidates(self, part: _IndexPart) -> tuple:
        """The part's replica group, least-loaded device first.

        Ordering key is (rolling busy seconds of the replica's device,
        replica number) — deterministic, and self-balancing: a slowed
        device accumulates stretched busy seconds and repels traffic.
        Delta-segment parts are not replicated and pass through as
        themselves.
        """
        for group in self._replica_parts:
            if part in group:
                session = self.session
                load = session.device_load
                order = sorted(
                    range(len(group)),
                    key=lambda r: (
                        load.load(session.device_position(group[r].engine.device)),
                        r,
                    ),
                )
                return tuple(group[r] for r in order)
        return (part,)

    # ------------------------------------------------------------------
    # self-healing

    def re_replicate(self) -> int:
        """Replace replicas stranded on permanently failed devices.

        For every group member whose device the session's fault plan
        marks permanently down, a replacement copy is placed on the
        least-loaded live pool device not already hosting the shard —
        re-attaching the *surviving* index structure (the group's copies
        are identical), so the cost is an ``index_transfer`` on the new
        device's link, not a rebuild. Groups whose dead device has no
        eligible target (everything else down or already hosting) are
        left under-replicated for a later pass.

        Returns the number of replicas placed. No-op without an injected
        fault plan.
        """
        faults = self.session.faults
        if faults is None or self.plan is None:
            return 0
        pool = self.session.shard_devices(self._pool_size())
        load = self.session.device_load
        placed = 0
        for shard_pos, group in enumerate(self._replica_parts):
            for r, part in enumerate(group):
                position = self.session.device_position(part.engine.device)
                if not faults.permanently_down(position):
                    continue
                hosting = {
                    self.session.device_position(p.engine.device) for p in group
                }
                candidates = [
                    i for i in range(len(pool))
                    if i not in hosting and faults.state(i)[0] != STATUS_DOWN
                ]
                if not candidates:
                    continue
                target = min(candidates, key=lambda i: (load.load(i), i))
                replacement = _IndexPart(
                    self, shard_pos,
                    GenieEngine(
                        device=pool[target],
                        host=self.session.host,
                        config=self.config,
                    ),
                    part.corpus, part.index,
                    offset=0, global_ids=part.global_ids, replica=r,
                )
                if part.resident:
                    self.session._evict_part(part)
                group[r] = replacement
                if r == 0:
                    self._parts[shard_pos] = replacement
                self.session._ensure_resident(replacement)
                placed += 1
        return placed
