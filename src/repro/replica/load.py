"""Rolling per-device busy-seconds, the replica-selection signal.

Replica choice is least-loaded-first: before each shard scan the
executor orders a shard's replica group by how many simulated seconds
each replica's device spent scanning over a recent window. The window
is bounded (a deque per device, same shape as ``DriftTracker``'s rolling
percentiles) so a long-lived server tracks *current* load, not lifetime
totals — a device that was hot an hour ago and idle since should not
repel traffic forever.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError

#: Default number of per-device samples the rolling window keeps.
DEFAULT_WINDOW = 128


class DeviceLoadTracker:
    """Rolling busy-seconds per pool device over the last N samples."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        if window <= 0:
            raise ConfigError(f"load window must be positive, got {window}")
        self.window = int(window)
        self._samples: dict[int, deque] = {}

    def record(self, device: int, seconds: float) -> None:
        """Record one scan's simulated seconds against ``device``."""
        if device < 0:
            return
        if seconds < 0:
            raise ConfigError(f"negative busy seconds: {seconds}")
        bucket = self._samples.get(device)
        if bucket is None:
            bucket = deque(maxlen=self.window)
            self._samples[device] = bucket
        bucket.append(float(seconds))

    def load(self, device: int) -> float:
        """Windowed busy seconds for ``device`` (0.0 if never sampled)."""
        bucket = self._samples.get(device)
        if not bucket:
            return 0.0
        return sum(bucket)

    def snapshot(self) -> dict:
        """Windowed busy seconds for every sampled device, keyed by position."""
        return {device: self.load(device) for device in sorted(self._samples)}

    def reset(self) -> None:
        """Drop all samples (e.g. after a rebalance changes shard shapes)."""
        self._samples.clear()
