"""Self-healing rebalance: load-weighted range cuts and the policy loop.

The motivating workload is the 1.65 range-partition imbalance on sorted
Adult (``benchmarks/results/shard_scaling.txt``): contiguous ranges of a
sorted corpus concentrate the hot age bands on one shard. Hash
partitioning fixes the skew but gives up keyword-bounds routing (every
query broadcasts). The rebalancer keeps the range layout — and therefore
pruned routing — and instead moves the *cut points*: each shard's
observed busy seconds are spread over its objects as a load density, and
new bounds are chosen so every shard carries a near-equal share.

:func:`balanced_range_bounds` is the pure math; the serve layer drives
it through :class:`RebalancePolicy`, which watches the rolling
``shard_imbalance`` (:attr:`ServeMetrics.rolling_shard_imbalance
<repro.serve.metrics.ServeMetrics.rolling_shard_imbalance>`) and fires
:meth:`ShardedIndexHandle.rebalance
<repro.cluster.executor.ShardedIndexHandle.rebalance>` once the window
is full, the threshold is crossed, and the cooldown has elapsed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

#: Fraction of the mean shard weight used to floor cold shards' weights,
#: so a never-scanned shard still claims a nonzero share of objects.
MIN_WEIGHT_FRACTION = 0.05


def balanced_range_bounds(
    sizes,
    weights,
    min_weight_fraction: float = MIN_WEIGHT_FRACTION,
) -> list[int] | None:
    """Range cut points that equalize observed per-shard load.

    Args:
        sizes: Objects per shard of the *current* contiguous range
            partition, in position order.
        weights: Observed load per shard (same order, >= 0) — e.g.
            rolling busy seconds. Shard ``s``'s weight is spread
            uniformly over its ``sizes[s]`` objects.
        min_weight_fraction: Cold shards are floored at this fraction of
            the mean weight, so zero-traffic ranges still get objects.

    Returns:
        ``n_shards + 1`` bounds (``bounds[0] == 0``,
        ``bounds[-1] == sum(sizes)``, each shard >= 1 object), or
        ``None`` when no meaningful cut exists (all-zero weights, fewer
        objects than shards).

    Raises:
        ConfigError: Mismatched lengths or negative inputs.
    """
    sizes = [int(s) for s in sizes]
    weights = [float(w) for w in weights]
    if len(sizes) != len(weights):
        raise ConfigError(
            f"sizes/weights length mismatch: {len(sizes)} vs {len(weights)}"
        )
    if any(s < 0 for s in sizes) or any(w < 0 for w in weights):
        raise ConfigError("sizes and weights must be non-negative")
    n_shards = len(sizes)
    n_objects = sum(sizes)
    if n_shards < 2 or n_objects < n_shards:
        return None
    if sum(weights) <= 0:
        return None
    floor = min_weight_fraction * (sum(weights) / n_shards)
    densities = [
        (max(w, floor) / s if s else 0.0) for s, w in zip(sizes, weights)
    ]
    per_object = np.concatenate(
        [np.full(s, d, dtype=np.float64) for s, d in zip(sizes, densities) if s]
    )
    cum = np.cumsum(per_object)
    total = float(cum[-1])
    if total <= 0:
        return None
    targets = total * np.arange(1, n_shards, dtype=np.float64) / n_shards
    # The cumsum accumulates float error over n_objects additions; a
    # relative slack keeps an exactly-uniform density cutting exactly
    # evenly instead of drifting one object past each target.
    cuts = np.searchsorted(cum, targets - 1e-9 * total, side="left") + 1
    bounds = [0]
    for i, cut in enumerate(cuts):
        # Keep bounds strictly increasing with room for the remaining
        # shards, so every shard ends up with at least one object.
        lo = bounds[-1] + 1
        hi = n_objects - (n_shards - 1 - i)
        bounds.append(int(min(max(int(cut), lo), hi)))
    bounds.append(n_objects)
    return bounds


class RebalancePolicy:
    """When to rebalance: rolling imbalance past a threshold, with hysteresis.

    Consulted by :class:`~repro.serve.server.GenieServer` after each
    dispatched sharded batch. Three gates keep it from thrashing:

    * **warmup** — at least ``min_window`` batches must be in the rolling
      window before the imbalance estimate is trusted;
    * **threshold** — the rolling ``max/mean`` shard imbalance must
      exceed ``threshold`` (1.0 = perfectly balanced);
    * **cooldown** — at least ``cooldown`` sharded batches must pass
      after a rebalance before the next one may fire (the window refills
      with post-move observations in between).
    """

    def __init__(
        self,
        threshold: float = 1.25,
        min_window: int = 16,
        cooldown: int = 32,
    ):
        if threshold < 1.0:
            raise ConfigError(f"rebalance threshold must be >= 1, got {threshold}")
        if min_window < 1:
            raise ConfigError(f"min_window must be >= 1, got {min_window}")
        if cooldown < 0:
            raise ConfigError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = float(threshold)
        self.min_window = int(min_window)
        self.cooldown = int(cooldown)
        self._last_fire: int | None = None

    def should_rebalance(self, metrics) -> bool:
        """Whether a rebalance should fire given current serve metrics."""
        if metrics.rolling_window_batches < self.min_window:
            return False
        if self._last_fire is not None:
            if metrics.sharded_batches - self._last_fire < self.cooldown:
                return False
        return metrics.rolling_shard_imbalance > self.threshold

    def note_fired(self, metrics) -> None:
        """Record that a rebalance fired (starts the cooldown)."""
        self._last_fire = int(metrics.sharded_batches)
