"""Deterministic fault injection for the simulated device pool.

Failure experiments must be as bit-reproducible as everything else in
this repo, so faults are *data*, not chance: a :class:`FaultPlan` is a
seeded, virtual-clock schedule of device crash/slowdown/recovery events
that the executor consults at dispatch time. Replaying the same plan
against the same workload produces the same failovers, the same retry
penalties, and the same merged results.

Three layers:

* :class:`FaultEvent` — one outage: a device, a start time, an optional
  end time (``None`` = permanent), a kind (``"crash"`` or ``"slow"``)
  and a slowdown factor.
* :class:`FaultPlan` — an immutable schedule of events with point-in-time
  queries (:meth:`FaultPlan.state`) and a seeded generator
  (:meth:`FaultPlan.random`) that never takes more than ``max_down``
  devices down at once — pair it with ``max_down = replicas - 1`` and
  every replica group keeps a survivor.
* :class:`FaultInjector` — the session-side attachment: plan + clock +
  the seeded retry-latency model charged when a scan fails over.

:class:`FailoverEvent` records one observed failover (a scan attempt
that hit a down device and moved on); events surface on
``SearchResult.failovers`` and drive the serve layer's ``replica_*``
counters and re-replication trigger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: Valid values for :attr:`FaultEvent.kind`.
FAULT_KINDS = ("crash", "slow")

#: Device status strings returned by :meth:`FaultPlan.state`.
STATUS_UP = "up"
STATUS_DOWN = "down"
STATUS_SLOW = "slow"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled device outage on the virtual clock.

    Attributes:
        device: Pool position of the affected device.
        start: Virtual-clock second the outage begins (inclusive).
        end: Virtual-clock second it ends (exclusive), or ``None`` for a
            permanent failure.
        kind: ``"crash"`` (device refuses scans) or ``"slow"`` (scans
            succeed but stage timings stretch by ``factor``).
        factor: Slowdown multiplier for ``"slow"`` events (>= 1).
    """

    device: int
    start: float
    end: float | None = None
    kind: str = "crash"
    factor: float = 4.0

    def __post_init__(self):
        if self.device < 0:
            raise ConfigError(f"fault device must be >= 0, got {self.device}")
        if self.start < 0:
            raise ConfigError(f"fault start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ConfigError(
                f"fault end ({self.end}) must be after start ({self.start})"
            )
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind == "slow" and self.factor < 1.0:
            raise ConfigError(
                f"slowdown factor must be >= 1, got {self.factor}"
            )

    def active(self, now: float) -> bool:
        """Whether this outage covers virtual-clock second ``now``."""
        if now < self.start:
            return False
        return self.end is None or now < self.end

    @property
    def permanent(self) -> bool:
        """Whether this outage never recovers."""
        return self.end is None


class FaultPlan:
    """An immutable, queryable schedule of :class:`FaultEvent`\\ s."""

    def __init__(self, events=()):
        self.events = tuple(
            sorted(events, key=lambda e: (e.start, e.device, e.kind))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"FaultPlan(events={len(self.events)})"

    @classmethod
    def random(
        cls,
        n_devices: int,
        horizon: float,
        seed: int,
        max_down: int = 1,
        mean_outage: float | None = None,
        slow_fraction: float = 0.0,
        slow_factor: float = 4.0,
    ) -> "FaultPlan":
        """A seeded schedule with at most ``max_down`` devices down at once.

        Outages are laid out on ``max_down`` independent, non-overlapping
        "tracks": at any instant at most one event per track is active,
        so at most ``max_down`` distinct devices are crashed
        simultaneously. With chained-declustering placement and
        ``max_down <= replicas - 1`` every replica group always keeps a
        live member, which is exactly the regime where failover must be
        result-transparent. ``max_down = 0`` yields an empty plan.

        Args:
            n_devices: Size of the device pool events may target.
            horizon: Virtual-clock span (seconds) the schedule covers.
            seed: RNG seed; identical arguments yield identical plans.
            max_down: Maximum concurrently-crashed device count.
            mean_outage: Typical outage length; defaults to a sixth of
                the horizon.
            slow_fraction: Probability an outage is a slowdown instead
                of a crash (slowdowns still occupy a track slot).
            slow_factor: Stage-timing multiplier for slowdown events.
        """
        if n_devices <= 0:
            raise ConfigError(f"n_devices must be positive, got {n_devices}")
        if horizon <= 0:
            raise ConfigError(f"horizon must be positive, got {horizon}")
        if max_down < 0:
            raise ConfigError(f"max_down must be >= 0, got {max_down}")
        if mean_outage is None:
            mean_outage = horizon / 6.0
        rng = np.random.default_rng(seed)
        events = []
        for _track in range(max_down):
            now = float(rng.uniform(0.0, horizon / 3.0))
            while now < horizon:
                duration = float(mean_outage * (0.5 + rng.random()))
                device = int(rng.integers(n_devices))
                if rng.random() < slow_fraction:
                    events.append(
                        FaultEvent(device, now, now + duration, "slow", slow_factor)
                    )
                else:
                    events.append(FaultEvent(device, now, now + duration, "crash"))
                now += duration + float(mean_outage * (0.5 + rng.random()))
        return cls(events)

    def state(self, device: int, now: float) -> tuple[str, float]:
        """Status of ``device`` at virtual-clock second ``now``.

        Returns ``(status, factor)``: ``("down", 0.0)`` if any crash
        event covers ``now``, else ``("slow", factor)`` with the largest
        active slowdown factor, else ``("up", 1.0)``.
        """
        factor = 1.0
        down = False
        for event in self.events:
            if event.device != device or not event.active(now):
                continue
            if event.kind == "crash":
                down = True
            else:
                factor = max(factor, event.factor)
        if down:
            return (STATUS_DOWN, 0.0)
        if factor > 1.0:
            return (STATUS_SLOW, factor)
        return (STATUS_UP, 1.0)

    def permanently_down(self, device: int, now: float) -> bool:
        """Whether ``device`` is inside a crash outage that never ends."""
        for event in self.events:
            if (
                event.device == device
                and event.kind == "crash"
                and event.permanent
                and event.active(now)
            ):
                return True
        return False

    def down_devices(self, now: float) -> tuple[int, ...]:
        """Pool positions of every device crashed at ``now`` (sorted)."""
        down = {
            event.device
            for event in self.events
            if event.kind == "crash" and event.active(now)
        }
        return tuple(sorted(down))


class FaultInjector:
    """Session-side fault state: a plan, a clock, and the retry model.

    The executor asks :meth:`state` for a device's health before each
    shard scan. A failed attempt charges a deterministic retry penalty
    (detection timeout plus *seeded* jitter — the bounded-attempt shape
    lint rule REPRO007 enforces) onto the batch critical path.

    The clock is usually wired by :class:`repro.serve.server.GenieServer`
    at construction (its :class:`VirtualClock`); standalone sessions may
    pass any object with a ``now()`` method, or leave it ``None`` to
    evaluate the plan at t=0.
    """

    def __init__(
        self,
        plan: FaultPlan,
        clock=None,
        retry_penalty: float = 2e-5,
        retry_jitter: float = 0.25,
        seed: int = 0,
    ):
        if retry_penalty < 0:
            raise ConfigError(
                f"retry_penalty must be >= 0, got {retry_penalty}"
            )
        if not 0.0 <= retry_jitter <= 1.0:
            raise ConfigError(
                f"retry_jitter must be in [0, 1], got {retry_jitter}"
            )
        self.plan = plan
        self.clock = clock
        self.retry_penalty = float(retry_penalty)
        self.retry_jitter = float(retry_jitter)
        self.seed = int(seed)

    def now(self) -> float:
        """Current virtual-clock second (0.0 when no clock is attached)."""
        if self.clock is None:
            return 0.0
        return float(self.clock.now())

    def state(self, device: int) -> tuple[str, float]:
        """Status of pool device ``device`` right now."""
        if device < 0:
            return (STATUS_UP, 1.0)
        return self.plan.state(device, self.now())

    def permanently_down(self, device: int) -> bool:
        """Whether pool device ``device`` is permanently failed right now."""
        if device < 0:
            return False
        return self.plan.permanently_down(device, self.now())

    def retry_penalty_for(self, shard: int, attempt: int) -> float:
        """Simulated seconds one failed scan attempt costs.

        Deterministic: jitter comes from an RNG seeded by (injector
        seed, shard, attempt), so identical fault schedules replay to
        identical critical paths.
        """
        rng = np.random.default_rng([self.seed, int(shard), int(attempt)])
        return self.retry_penalty * (1.0 + self.retry_jitter * float(rng.random()))


@dataclass(frozen=True)
class FailoverEvent:
    """One observed failover: a scan attempt skipped a down device.

    Attributes:
        index: Name of the index whose shard was being scanned.
        shard: Shard position within the index.
        device: Pool position of the device that was down.
        attempt: Zero-based attempt number within the candidate order.
        permanent: Whether the device's outage never recovers (triggers
            re-replication in the serve layer).
        penalty: Simulated retry seconds this attempt charged.
    """

    index: str
    shard: int
    device: int
    attempt: int
    permanent: bool
    penalty: float
