"""repro.replica: replicated, self-healing cluster serving.

Four pieces, wired through the existing layers:

* **Replica groups** (:mod:`repro.replica.handle`) —
  ``create_index(..., shards=N, replicas=R)`` places R copies of every
  shard slice on distinct pool devices (chained declustering); shard
  scans pick the least-loaded live replica per batch.
* **Deterministic fault injection** (:mod:`repro.replica.faults`) — a
  seeded :class:`FaultPlan` of device crash/slowdown/recovery events on
  the virtual clock; failure experiments are bit-reproducible.
* **Retry-on-replica failover** — the plan executor re-dispatches a
  scan that hits a failed device to a surviving replica, charging the
  retry on the batch critical path; results are property-tested
  bit-identical to a fault-free run, and only a fully-down group raises
  :class:`~repro.errors.AvailabilityError`.
* **Self-healing** (:mod:`repro.replica.rebalance`) — a
  :class:`RebalancePolicy` watches the serve layer's rolling shard
  imbalance and recuts hot range partitions online
  (:meth:`ShardedIndexHandle.rebalance
  <repro.cluster.executor.ShardedIndexHandle.rebalance>`), and
  permanently failed devices trigger re-replication of their groups.

:class:`ReplicatedIndexHandle` is imported lazily (it pulls in the
session and cluster layers; the leaf modules here must stay importable
from them without a cycle).
"""

from repro.replica.faults import (
    FAULT_KINDS,
    FailoverEvent,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    STATUS_DOWN,
    STATUS_SLOW,
    STATUS_UP,
)
from repro.replica.load import DeviceLoadTracker
from repro.replica.rebalance import RebalancePolicy, balanced_range_bounds

__all__ = [
    "FAULT_KINDS",
    "STATUS_DOWN",
    "STATUS_SLOW",
    "STATUS_UP",
    "DeviceLoadTracker",
    "FailoverEvent",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "RebalancePolicy",
    "ReplicatedIndexHandle",
    "balanced_range_bounds",
]


def __getattr__(name):
    if name == "ReplicatedIndexHandle":
        from repro.replica.handle import ReplicatedIndexHandle

        return ReplicatedIndexHandle
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
