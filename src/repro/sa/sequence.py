"""Sequence similarity search under edit distance (Section V-A).

Pipeline: shred sequences into ordered n-grams, index them with GENIE,
retrieve the K candidates with the largest common-gram counts, then verify
with exact edit distance using Algorithm 2's filter bounds. Theorem 5.2
gives a *certificate*: when the K-th candidate's count falls below
``|Q| - n + 1 - tau_k' * n``, the returned top-k is provably the true
top-k; otherwise the search can be repeated with a larger K.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import GenieConfig, GenieEngine
from repro.core.types import Corpus, Query
from repro.errors import QueryError
from repro.gpu.device import Device
from repro.gpu.host import HostCpu
from repro.sa.edit_distance import edit_distance, edit_distance_ops
from repro.sa.ngram import NgramVocabulary

#: The paper's defaults for DBLP: K = 32 shortlist, top-1 result.
PAPER_K_CANDIDATES = 32


@dataclass
class SequenceMatch:
    """One verified result: a sequence id with its exact edit distance."""

    sequence_id: int
    distance: int
    count: int


@dataclass
class SequenceSearchResult:
    """Outcome of one sequence query.

    Attributes:
        matches: Up to k verified matches, best (smallest distance) first.
        certified: ``True`` when Theorem 5.2's condition held, i.e. the
            matches are provably the true top-k under edit distance.
        candidates_verified: Edit-distance computations spent.
        shortlist_size: The K used for the GENIE retrieval.
    """

    matches: list[SequenceMatch] = field(default_factory=list)
    certified: bool = False
    candidates_verified: int = 0
    shortlist_size: int = 0

    @property
    def best(self) -> SequenceMatch | None:
        """The most similar verified sequence, if any."""
        return self.matches[0] if self.matches else None


class SequenceIndex:
    """GENIE-backed sequence similarity search.

    Args:
        n: n-gram length (3 by default, as for DBLP titles).
        device: Simulated GPU.
        host: Simulated host CPU (charged for verification).
        config: Engine configuration.
    """

    def __init__(
        self,
        n: int = 3,
        device: Device | None = None,
        host: HostCpu | None = None,
        config: GenieConfig | None = None,
    ):
        self.n = int(n)
        self.vocabulary = NgramVocabulary(self.n)
        self.host = host if host is not None else HostCpu()
        self.engine = GenieEngine(device=device, host=self.host, config=config or GenieConfig())
        self.sequences: list[str] = []

    def fit(self, sequences: list[str]) -> "SequenceIndex":
        """Shred and index the data sequences."""
        self.sequences = list(sequences)
        corpus = Corpus([self.vocabulary.encode(s, grow=True) for s in self.sequences])
        self.engine.fit(corpus)
        return self

    def _query_for(self, sequence: str) -> Query:
        return Query.from_keywords(self.vocabulary.encode(sequence, grow=False))

    def search(
        self, query: str, k: int = 1, n_candidates: int = PAPER_K_CANDIDATES
    ) -> SequenceSearchResult:
        """One round of retrieve-and-verify.

        Args:
            query: Query sequence.
            k: Number of nearest sequences wanted.
            n_candidates: Shortlist size K (K >> k per the paper).

        Returns:
            The verified result, with :attr:`SequenceSearchResult.certified`
            set per Theorem 5.2.
        """
        if not self.sequences:
            raise QueryError("index must be fitted before searching")
        if k < 1 or n_candidates < k:
            raise QueryError("need n_candidates >= k >= 1")
        genie_query = self._query_for(query)
        if genie_query.num_items == 0:
            return SequenceSearchResult(shortlist_size=n_candidates)
        shortlist = self.engine.query([genie_query], k=n_candidates)[0]
        return self._verify(query, shortlist.ids, shortlist.counts, k, n_candidates)

    def _verify(self, query: str, ids, counts, k: int, n_candidates: int) -> SequenceSearchResult:
        """Algorithm 2 generalized to top-k, with cost charged to the host."""
        n = self.n
        matches: list[SequenceMatch] = []
        verified = 0

        def kth_distance() -> int:
            return matches[k - 1].distance if len(matches) >= k else np.iinfo(np.int64).max

        def filter_threshold() -> float:
            tau = kth_distance()
            if tau == np.iinfo(np.int64).max:
                return -np.inf
            return len(query) - n + 1 - n * (tau - 1)

        for j, (sid, count) in enumerate(zip(ids, counts)):
            if j > 0 and matches and filter_threshold() > count:
                break  # Theorem 5.1: no later candidate can beat the k-th best.
            candidate = self.sequences[int(sid)]
            if len(matches) >= k and abs(len(query) - len(candidate)) > kth_distance():
                continue  # length filter
            distance = edit_distance(query, candidate)
            self.host.charge_ops(edit_distance_ops(len(query), len(candidate)), stage="verify")
            verified += 1
            matches.append(SequenceMatch(sequence_id=int(sid), distance=distance, count=int(count)))
            matches.sort(key=lambda match: (match.distance, match.sequence_id))
            del matches[k:]

        certified = False
        if matches and len(ids) > 0:
            # Theorem 5.2: compare the K-th candidate's count with the bound
            # derived from the k-th verified distance.
            c_last = int(counts[-1])
            tau_k = matches[min(k, len(matches)) - 1].distance
            certified = (len(ids) < n_candidates) or (
                c_last < len(query) - n + 1 - tau_k * n
            )
        return SequenceSearchResult(
            matches=matches,
            certified=certified,
            candidates_verified=verified,
            shortlist_size=n_candidates,
        )

    def search_until_certified(
        self,
        query: str,
        k: int = 1,
        schedule: tuple[int, ...] = (8, 16, 32, 64, 128, 256),
    ) -> SequenceSearchResult:
        """Repeat the search with growing K until Theorem 5.2 certifies it.

        Returns the last round's result (certified or not — the schedule is
        finite, as the paper recommends balancing time against certainty).
        """
        result = SequenceSearchResult()
        for n_candidates in schedule:
            result = self.search(query, k=k, n_candidates=n_candidates)
            if result.certified:
                return result
        return result
