"""Sequence similarity search under edit distance (Section V-A).

Pipeline: shred sequences into ordered n-grams, index them with GENIE,
retrieve the K candidates with the largest common-gram counts, then verify
with exact edit distance using Algorithm 2's filter bounds. Theorem 5.2
gives a *certificate*: when the K-th candidate's count falls below
``|Q| - n + 1 - tau_k' * n``, the returned top-k is provably the true
top-k; otherwise the search can be repeated with a larger K.

This module keeps the result dataclasses and the deprecated
:class:`SequenceIndex` wrapper; the encoding and the verification hook live
in :class:`repro.api.models.SequenceModel`, driven through
:class:`repro.api.session.GenieSession`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import GenieConfig, GenieEngine
from repro.errors import QueryError
from repro.gpu.device import Device
from repro.gpu.host import HostCpu
from repro.sa.ngram import NgramVocabulary

#: The paper's defaults for DBLP: K = 32 shortlist, top-1 result.
PAPER_K_CANDIDATES = 32


@dataclass
class SequenceMatch:
    """One verified result: a sequence id with its exact edit distance."""

    sequence_id: int
    distance: int
    count: int


@dataclass
class SequenceSearchResult:
    """Outcome of one sequence query.

    Attributes:
        matches: Up to k verified matches, best (smallest distance) first.
        certified: ``True`` when Theorem 5.2's condition held, i.e. the
            matches are provably the true top-k under edit distance.
        candidates_verified: Edit-distance computations spent.
        shortlist_size: The K used for the GENIE retrieval.
    """

    matches: list[SequenceMatch] = field(default_factory=list)
    certified: bool = False
    candidates_verified: int = 0
    shortlist_size: int = 0

    @property
    def best(self) -> SequenceMatch | None:
        """The most similar verified sequence, if any."""
        return self.matches[0] if self.matches else None


class SequenceIndex:
    """Deprecated wrapper: GENIE-backed sequence similarity search.

    Thin shim over :class:`repro.api.session.GenieSession` with a
    ``"sequence"`` model; retrieval, verification and certificates are
    identical to the historical implementation. New code should call
    ``session.create_index(sequences, model="sequence", n=...)`` and read
    the verified :class:`SequenceSearchResult` payload off
    ``handle.search(...)``.

    Args:
        n: n-gram length (3 by default, as for DBLP titles).
        device: Simulated GPU.
        host: Simulated host CPU (charged for verification).
        config: Engine configuration.
    """

    def __init__(
        self,
        n: int = 3,
        device: Device | None = None,
        host: HostCpu | None = None,
        config: GenieConfig | None = None,
    ):
        from repro.api.models import SequenceModel
        from repro.api.session import GenieSession

        self._model = SequenceModel(n=n)
        self.session = GenieSession(device=device, host=host)
        self.handle = self.session.declare_index(
            self._model, name="sequence", config=config or GenieConfig()
        )
        self.n = self._model.n

    @property
    def engine(self) -> GenieEngine:
        """The underlying engine (kept for experiment/profiling code)."""
        return self.handle.engine

    @property
    def host(self) -> HostCpu:
        """The simulated host CPU charged for verification."""
        return self.session.host

    @property
    def vocabulary(self) -> NgramVocabulary:
        """The ordered-n-gram -> keyword map learned at fit time."""
        return self._model.vocabulary

    @property
    def sequences(self) -> list[str]:
        """The indexed sequences."""
        return self._model.sequences

    def fit(self, sequences: list[str]) -> "SequenceIndex":
        """Shred and index the data sequences."""
        self.handle.fit(sequences)
        return self

    def search(
        self, query: str, k: int = 1, n_candidates: int = PAPER_K_CANDIDATES
    ) -> SequenceSearchResult:
        """One round of retrieve-and-verify.

        Args:
            query: Query sequence.
            k: Number of nearest sequences wanted.
            n_candidates: Shortlist size K (K >> k per the paper).

        Returns:
            The verified result, with :attr:`SequenceSearchResult.certified`
            set per Theorem 5.2.
        """
        if not self.sequences:
            raise QueryError("index must be fitted before searching")
        if k < 1 or n_candidates < k:
            raise QueryError("need n_candidates >= k >= 1")
        return self.handle.search([query], k=k, n_candidates=n_candidates).payload[0]

    def search_until_certified(
        self,
        query: str,
        k: int = 1,
        schedule: tuple[int, ...] = (8, 16, 32, 64, 128, 256),
    ) -> SequenceSearchResult:
        """Repeat the search with growing K until Theorem 5.2 certifies it.

        Returns the last round's result (certified or not — the schedule is
        finite, as the paper recommends balancing time against certainty).
        """
        result = SequenceSearchResult()
        for n_candidates in schedule:
            result = self.search(query, k=k, n_candidates=n_candidates)
            if result.certified:
                return result
        return result
