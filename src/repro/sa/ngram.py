"""Ordered n-gram decomposition of sequences (Section V-A1).

A sequence is shredded into length-n substrings by a sliding window; the
*ordered* n-gram ``(gram, i)`` tags the i-th occurrence of the same gram so
that the match-count model counts common grams as ``min(c_s, c_q)`` per
distinct gram (Lemma 5.1).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.types import ID_DTYPE


def ordered_ngrams(sequence: str, n: int) -> list[tuple[str, int]]:
    """Decompose a sequence into ordered n-grams.

    Args:
        sequence: The string to shred.
        n: Gram length.

    Returns:
        ``(gram, occurrence_index)`` pairs, e.g. ``"aabaab"`` with n = 3
        gives ``[("aab", 0), ("aba", 0), ("baa", 0), ("aab", 1)]``
        (Example 5.1). Sequences shorter than ``n`` give an empty list.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    seen: Counter[str] = Counter()
    grams: list[tuple[str, int]] = []
    for i in range(len(sequence) - n + 1):
        gram = sequence[i : i + n]
        grams.append((gram, seen[gram]))
        seen[gram] += 1
    return grams


def common_gram_count(s: str, q: str, n: int) -> int:
    """Reference for Lemma 5.1: ``sum_g min(c_s(g), c_q(g))``."""
    cs = Counter(s[i : i + n] for i in range(len(s) - n + 1))
    cq = Counter(q[i : i + n] for i in range(len(q) - n + 1))
    return sum(min(count, cq[gram]) for gram, count in cs.items())


def count_filter_bound(len_q: int, len_s: int, tau: int, n: int) -> int:
    """Theorem 5.1's lower bound on the common-gram count at edit distance tau.

    ``MC >= max(|Q|, |S|) - n + 1 - tau * n``.
    """
    return max(len_q, len_s) - n + 1 - tau * n


class NgramVocabulary:
    """Bidirectional map between ordered n-grams and GENIE keywords.

    Args:
        n: Gram length.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = int(n)
        self._ids: dict[tuple[str, int], int] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def encode(self, sequence: str, grow: bool = True) -> np.ndarray:
        """Keyword ids of a sequence's ordered n-grams.

        Args:
            sequence: The sequence to encode.
            grow: Whether unseen grams get fresh ids (index build) or are
                dropped (query time — an unseen gram matches nothing).

        Returns:
            ``int64`` keyword array.
        """
        keywords = []
        for gram in ordered_ngrams(sequence, self.n):
            kw = self._ids.get(gram)
            if kw is None and grow:
                kw = len(self._ids)
                self._ids[gram] = kw
            if kw is not None:
                keywords.append(kw)
        return np.asarray(keywords, dtype=ID_DTYPE)
