"""Edit (Levenshtein) distance: full DP and banded variants.

The verification step of GENIE's sequence search (Algorithm 2) computes
exact edit distances between the query and the shortlisted candidates; the
banded variant (Ukkonen) prunes computation once a known bound is exceeded,
which is what the verifier's running upper bound enables.
"""

from __future__ import annotations

import numpy as np


def edit_distance(a: str, b: str) -> int:
    """Exact Levenshtein distance by row-vectorized dynamic programming."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a  # iterate over the longer string, keep the row short
    b_arr = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32)
    row = np.arange(len(b) + 1, dtype=np.int64)
    for i, ch in enumerate(a, start=1):
        prev = row
        code = np.uint32(ord(ch))
        substitute = prev[:-1] + (b_arr != code)
        row = np.empty_like(prev)
        row[0] = i
        # delete from `a`: prev[1:] + 1; the insert term needs a serial
        # prefix pass, done with minimum.accumulate below.
        np.minimum(substitute, prev[1:] + 1, out=row[1:])
        # insert: row[j-1] + 1 propagated left-to-right.
        row[1:] = np.minimum.accumulate(
            row[1:] - np.arange(1, len(b) + 1)
        ) + np.arange(1, len(b) + 1)
        row[1:] = np.minimum(row[1:], row[:-1] + 1)
    return int(row[-1])


def edit_distance_bounded(a: str, b: str, bound: int) -> int:
    """Banded edit distance: exact if <= ``bound``, else ``bound + 1``.

    Args:
        a: First string.
        b: Second string.
        bound: Maximum distance of interest.

    Returns:
        ``ed(a, b)`` when it does not exceed ``bound``; any value larger
        than ``bound`` (specifically ``bound + 1``) otherwise.
    """
    if bound < 0:
        raise ValueError("bound must be non-negative")
    if abs(len(a) - len(b)) > bound:
        return bound + 1
    if a == b:
        return 0
    if not a or not b:
        # One side empty: the distance is the other side's length, and the
        # band arithmetic below assumes at least one column.
        return max(len(a), len(b))
    if len(a) < len(b):
        a, b = b, a
    la, lb = len(a), len(b)
    big = bound + 1
    prev = np.minimum(np.arange(lb + 1, dtype=np.int64), big)
    for i in range(1, la + 1):
        row = np.full(lb + 1, big, dtype=np.int64)
        lo = max(1, i - bound)
        hi = min(lb, i + bound)
        if lo > hi:
            return bound + 1
        row[0] = i if i <= bound else big
        ai = a[i - 1]
        for j in range(lo, hi + 1):
            cost = 0 if ai == b[j - 1] else 1
            row[j] = min(prev[j - 1] + cost, prev[j] + 1, row[j - 1] + 1, big)
        if row[lo : hi + 1].min() > bound:
            return bound + 1
        prev = row
    return int(min(prev[-1], big))


def edit_distance_ops(len_a: int, len_b: int, bound: int | None = None) -> float:
    """Abstract CPU op count of an edit-distance computation (for timing).

    A full DP touches ``len_a * len_b`` cells; a banded run touches about
    ``min(len_a, len_b) * (2 * bound + 1)`` cells.
    """
    if bound is None:
        return float(len_a) * float(len_b)
    return float(min(len_a, len_b)) * float(2 * bound + 1)
