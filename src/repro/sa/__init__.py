"""Shotgun-and-Assembly front-ends: sequences, documents, relational tables.

Typical use::

    from repro.sa import SequenceIndex

    index = SequenceIndex(n=3).fit(titles)
    result = index.search("approximate string matcing", k=1, n_candidates=32)
    print(result.best, result.certified)
"""

from repro.sa.document import DEFAULT_STOPWORDS, DocumentIndex, WordVocabulary, tokenize
from repro.sa.edit_distance import edit_distance, edit_distance_bounded, edit_distance_ops
from repro.sa.ngram import NgramVocabulary, common_gram_count, count_filter_bound, ordered_ngrams
from repro.sa.relational import (
    PAPER_NUM_BINS,
    AttributeSpec,
    Discretizer,
    RelationalIndex,
)
from repro.sa.sequence import (
    PAPER_K_CANDIDATES,
    SequenceIndex,
    SequenceMatch,
    SequenceSearchResult,
)

__all__ = [
    "ordered_ngrams",
    "common_gram_count",
    "count_filter_bound",
    "NgramVocabulary",
    "edit_distance",
    "edit_distance_bounded",
    "edit_distance_ops",
    "SequenceIndex",
    "SequenceMatch",
    "SequenceSearchResult",
    "PAPER_K_CANDIDATES",
    "DocumentIndex",
    "WordVocabulary",
    "tokenize",
    "DEFAULT_STOPWORDS",
    "RelationalIndex",
    "AttributeSpec",
    "Discretizer",
    "PAPER_NUM_BINS",
]
