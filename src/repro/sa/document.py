"""Short-document similarity search (Section V-B).

Documents are shredded into words; the match count between two documents is
then exactly the inner product of their binary vector-space representations.

This module keeps the tokenization primitives (:func:`tokenize`,
:class:`WordVocabulary`) and the deprecated :class:`DocumentIndex` wrapper;
the encoding lives in :class:`repro.api.models.DocumentModel` and the
engine work in :class:`repro.api.session.GenieSession`.
"""

from __future__ import annotations

import re

import numpy as np

from repro.core.engine import GenieConfig, GenieEngine
from repro.core.types import TopKResult
from repro.errors import QueryError
from repro.gpu.device import Device
from repro.gpu.host import HostCpu

_TOKEN_RE = re.compile(r"[a-z0-9']+")

#: A small English stop-word list (the paper removes stop words from tweets).
DEFAULT_STOPWORDS = frozenset(
    "a an and are as at be by for from has he in is it its of on or that the "
    "this to was were will with i you we they she him her them my your our".split()
)


def tokenize(text: str, stopwords: frozenset[str] = DEFAULT_STOPWORDS) -> list[str]:
    """Lowercase word tokens with stop words removed."""
    return [tok for tok in _TOKEN_RE.findall(text.lower()) if tok not in stopwords]


class WordVocabulary:
    """Word -> keyword id map."""

    def __init__(self):
        self._ids: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def encode(self, tokens: list[str], grow: bool = True) -> np.ndarray:
        """Keyword ids of distinct tokens (binary vector-space model)."""
        keywords = []
        for token in dict.fromkeys(tokens):  # preserves order, dedupes
            kw = self._ids.get(token)
            if kw is None and grow:
                kw = len(self._ids)
                self._ids[token] = kw
            if kw is not None:
                keywords.append(kw)
        return np.asarray(keywords, dtype=np.int64)


class DocumentIndex:
    """Deprecated wrapper: GENIE-backed short-document search.

    Thin shim over :class:`repro.api.session.GenieSession` with a
    ``"document"`` model; results and stage timings are identical to the
    historical implementation. New code should call
    ``session.create_index(texts, model="document")``.

    Args:
        device: Simulated GPU.
        host: Simulated host CPU.
        config: Engine configuration.
        stopwords: Words to drop at tokenization time.
    """

    def __init__(
        self,
        device: Device | None = None,
        host: HostCpu | None = None,
        config: GenieConfig | None = None,
        stopwords: frozenset[str] = DEFAULT_STOPWORDS,
    ):
        from repro.api.models import DocumentModel
        from repro.api.session import GenieSession

        self._model = DocumentModel(stopwords=stopwords)
        self.session = GenieSession(device=device, host=host)
        self.handle = self.session.declare_index(
            self._model, name="document", config=config or GenieConfig()
        )
        self.stopwords = stopwords

    @property
    def engine(self) -> GenieEngine:
        """The underlying engine (kept for experiment/profiling code)."""
        return self.handle.engine

    @property
    def vocabulary(self) -> WordVocabulary:
        """The word -> keyword map learned at fit time."""
        return self._model.vocabulary

    @property
    def documents(self) -> list[str]:
        """The indexed documents."""
        return self._model.documents

    def fit(self, documents: list[str]) -> "DocumentIndex":
        """Tokenize and index the documents."""
        self.handle.fit(documents)
        return self

    def query_one(self, text: str, k: int = 10) -> TopKResult:
        """Top-k documents by binary inner product with ``text``."""
        return self.query_batch([text], k=k)[0]

    def query_batch(self, texts: list[str], k: int = 10) -> list[TopKResult]:
        """Batched document search."""
        if not self.documents:
            raise QueryError("index must be fitted before querying")
        return self.handle.search(texts, k=k).results

    def inner_product(self, a: str, b: str) -> int:
        """Reference binary vector-space inner product of two texts."""
        return len(set(tokenize(a, self.stopwords)) & set(tokenize(b, self.stopwords)))
