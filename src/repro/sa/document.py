"""Short-document similarity search (Section V-B).

Documents are shredded into words; the match count between two documents is
then exactly the inner product of their binary vector-space representations.
"""

from __future__ import annotations

import re

import numpy as np

from repro.core.engine import GenieConfig, GenieEngine
from repro.core.types import Corpus, Query, TopKResult
from repro.errors import QueryError
from repro.gpu.device import Device
from repro.gpu.host import HostCpu

_TOKEN_RE = re.compile(r"[a-z0-9']+")

#: A small English stop-word list (the paper removes stop words from tweets).
DEFAULT_STOPWORDS = frozenset(
    "a an and are as at be by for from has he in is it its of on or that the "
    "this to was were will with i you we they she him her them my your our".split()
)


def tokenize(text: str, stopwords: frozenset[str] = DEFAULT_STOPWORDS) -> list[str]:
    """Lowercase word tokens with stop words removed."""
    return [tok for tok in _TOKEN_RE.findall(text.lower()) if tok not in stopwords]


class WordVocabulary:
    """Word -> keyword id map."""

    def __init__(self):
        self._ids: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def encode(self, tokens: list[str], grow: bool = True) -> np.ndarray:
        """Keyword ids of distinct tokens (binary vector-space model)."""
        keywords = []
        for token in dict.fromkeys(tokens):  # preserves order, dedupes
            kw = self._ids.get(token)
            if kw is None and grow:
                kw = len(self._ids)
                self._ids[token] = kw
            if kw is not None:
                keywords.append(kw)
        return np.asarray(keywords, dtype=np.int64)


class DocumentIndex:
    """GENIE-backed short-document search.

    The returned match count of a result equals the inner product between
    the query's and the document's binary word vectors.

    Args:
        device: Simulated GPU.
        host: Simulated host CPU.
        config: Engine configuration.
        stopwords: Words to drop at tokenization time.
    """

    def __init__(
        self,
        device: Device | None = None,
        host: HostCpu | None = None,
        config: GenieConfig | None = None,
        stopwords: frozenset[str] = DEFAULT_STOPWORDS,
    ):
        self.vocabulary = WordVocabulary()
        self.stopwords = stopwords
        self.engine = GenieEngine(device=device, host=host, config=config or GenieConfig())
        self.documents: list[str] = []

    def fit(self, documents: list[str]) -> "DocumentIndex":
        """Tokenize and index the documents."""
        self.documents = list(documents)
        corpus = Corpus(
            [self.vocabulary.encode(tokenize(doc, self.stopwords), grow=True) for doc in self.documents]
        )
        self.engine.fit(corpus)
        return self

    def query_one(self, text: str, k: int = 10) -> TopKResult:
        """Top-k documents by binary inner product with ``text``."""
        return self.query_batch([text], k=k)[0]

    def query_batch(self, texts: list[str], k: int = 10) -> list[TopKResult]:
        """Batched document search."""
        if not self.documents:
            raise QueryError("index must be fitted before querying")
        queries = [
            Query.from_keywords(self.vocabulary.encode(tokenize(t, self.stopwords), grow=False))
            for t in texts
        ]
        empty = [i for i, q in enumerate(queries) if q.num_items == 0]
        if empty:
            raise QueryError(f"queries {empty} contain no indexed words")
        return self.engine.query(queries, k=k)

    def inner_product(self, a: str, b: str) -> int:
        """Reference binary vector-space inner product of two texts."""
        return len(set(tokenize(a, self.stopwords)) & set(tokenize(b, self.stopwords)))
