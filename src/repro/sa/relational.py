"""Top-k selection on relational tables (Sections II-A and V-C).

A tuple becomes the keyword set ``{(attribute, value)}`` — continuous
attributes are first discretized into equal-width intervals (the paper uses
1024 on Adult). A range-selection query turns each per-attribute range into
one query item containing every keyword in the range; GENIE then ranks
tuples by how many of their attributes fall inside the query's ranges.

This module keeps the encoding primitives (:class:`AttributeSpec`,
:class:`Discretizer`) and the deprecated :class:`RelationalIndex` wrapper;
the encoding itself lives in :class:`repro.api.models.RelationalModel` and
the engine work in :class:`repro.api.session.GenieSession`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import GenieConfig, GenieEngine
from repro.core.types import Query, TopKResult
from repro.errors import ConfigError, QueryError
from repro.gpu.device import Device
from repro.gpu.host import HostCpu

#: Discretization granularity the paper uses for Adult's numeric attributes.
PAPER_NUM_BINS = 1024


@dataclass(frozen=True)
class AttributeSpec:
    """Schema entry for one column.

    Attributes:
        name: Column name.
        kind: ``"categorical"`` (values are small non-negative ints) or
            ``"numeric"`` (values are floats, discretized at fit time).
        bins: Discretization granularity for numeric columns.
    """

    name: str
    kind: str = "numeric"
    bins: int = PAPER_NUM_BINS

    def __post_init__(self):
        if self.kind not in ("numeric", "categorical"):
            raise ConfigError(f"unknown attribute kind: {self.kind}")
        if self.bins < 1:
            raise ConfigError("bins must be >= 1")


class Discretizer:
    """Equal-width binning for one numeric column.

    A degenerate range (a constant column, ``lo == hi``) collapses to the
    single valid bin 0 — no division by the zero-width span ever happens,
    and every transformed value stays inside ``[0, bins)``.
    """

    def __init__(self, bins: int):
        self.bins = int(bins)
        self.lo = 0.0
        self.hi = 1.0

    def fit(self, values: np.ndarray) -> "Discretizer":
        """Learn the value range from data.

        Raises:
            ConfigError: If ``values`` is empty or contains non-finite
                entries (the range would be undefined).
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ConfigError("cannot fit a discretizer on an empty column")
        if not np.isfinite(values).all():
            raise ConfigError("numeric column contains non-finite values")
        self.lo = float(values.min())
        self.hi = float(values.max())
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Bin ids in ``[0, bins)``; out-of-range values clamp to the edges."""
        values = np.asarray(values, dtype=np.float64)
        span = self.hi - self.lo
        if not span > 0:  # constant column, or an unfitted degenerate range
            return np.zeros(values.shape, dtype=np.int64)
        raw = np.floor((values - self.lo) / span * self.bins).astype(np.int64)
        return np.clip(raw, 0, self.bins - 1)


class RelationalIndex:
    """Deprecated wrapper: GENIE top-k selection over a mixed table.

    Thin shim over :class:`repro.api.session.GenieSession` with a
    ``"relational"`` model; results, errors and stage timings are identical
    to the historical implementation. New code should call
    ``session.create_index(columns, model="relational", schema=...)``.

    Args:
        schema: One :class:`AttributeSpec` per column, in column order.
        device: Simulated GPU.
        host: Simulated host CPU.
        config: Engine configuration.
    """

    def __init__(
        self,
        schema: list[AttributeSpec],
        device: Device | None = None,
        host: HostCpu | None = None,
        config: GenieConfig | None = None,
    ):
        from repro.api.models import RelationalModel
        from repro.api.session import GenieSession

        self._model = RelationalModel(schema)
        self.session = GenieSession(device=device, host=host)
        self.handle = self.session.declare_index(
            self._model, name="relational", config=config or GenieConfig()
        )
        self.schema = self._model.schema

    @property
    def engine(self) -> GenieEngine:
        """The underlying engine (kept for experiment/profiling code)."""
        return self.handle.engine

    @property
    def n_rows(self) -> int:
        """Rows indexed so far (0 before :meth:`fit`)."""
        return self._model.n_rows

    def fit(self, columns: dict[str, np.ndarray]) -> "RelationalIndex":
        """Index a table given as ``{column_name: values}``."""
        self.handle.fit(columns)
        return self

    def make_query(self, ranges: dict[str, tuple]) -> Query:
        """Build a GENIE query from ``{attribute: (lo, hi)}`` ranges."""
        return self._model.make_query(ranges)

    def query(self, ranges_batch: list[dict[str, tuple]], k: int = 10) -> list[TopKResult]:
        """Batched top-k selection; counts = matched attributes per tuple."""
        if self.n_rows == 0:
            raise QueryError("index must be fitted before querying")
        return self.handle.search(ranges_batch, k=k).results
