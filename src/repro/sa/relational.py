"""Top-k selection on relational tables (Sections II-A and V-C).

A tuple becomes the keyword set ``{(attribute, value)}`` — continuous
attributes are first discretized into equal-width intervals (the paper uses
1024 on Adult). A range-selection query turns each per-attribute range into
one query item containing every keyword in the range; GENIE then ranks
tuples by how many of their attributes fall inside the query's ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import GenieConfig, GenieEngine
from repro.core.types import Corpus, Query, TopKResult
from repro.errors import ConfigError, QueryError
from repro.gpu.device import Device
from repro.gpu.host import HostCpu

#: Discretization granularity the paper uses for Adult's numeric attributes.
PAPER_NUM_BINS = 1024


@dataclass(frozen=True)
class AttributeSpec:
    """Schema entry for one column.

    Attributes:
        name: Column name.
        kind: ``"categorical"`` (values are small non-negative ints) or
            ``"numeric"`` (values are floats, discretized at fit time).
        bins: Discretization granularity for numeric columns.
    """

    name: str
    kind: str = "numeric"
    bins: int = PAPER_NUM_BINS

    def __post_init__(self):
        if self.kind not in ("numeric", "categorical"):
            raise ConfigError(f"unknown attribute kind: {self.kind}")
        if self.bins < 1:
            raise ConfigError("bins must be >= 1")


class Discretizer:
    """Equal-width binning for one numeric column."""

    def __init__(self, bins: int):
        self.bins = int(bins)
        self.lo = 0.0
        self.hi = 1.0

    def fit(self, values: np.ndarray) -> "Discretizer":
        """Learn the value range from data."""
        values = np.asarray(values, dtype=np.float64)
        self.lo = float(values.min())
        self.hi = float(values.max())
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Bin ids in ``[0, bins)``; out-of-range values clamp to the edges."""
        values = np.asarray(values, dtype=np.float64)
        span = self.hi - self.lo
        if span <= 0:
            return np.zeros(values.shape, dtype=np.int64)
        raw = np.floor((values - self.lo) / span * self.bins).astype(np.int64)
        return np.clip(raw, 0, self.bins - 1)


class RelationalIndex:
    """GENIE top-k selection over a mixed categorical/numeric table.

    Args:
        schema: One :class:`AttributeSpec` per column, in column order.
        device: Simulated GPU.
        host: Simulated host CPU.
        config: Engine configuration.
    """

    def __init__(
        self,
        schema: list[AttributeSpec],
        device: Device | None = None,
        host: HostCpu | None = None,
        config: GenieConfig | None = None,
    ):
        if not schema:
            raise ConfigError("schema must have at least one attribute")
        self.schema = list(schema)
        self.engine = GenieEngine(device=device, host=host, config=config or GenieConfig())
        self._discretizers: dict[str, Discretizer] = {}
        self._offsets: dict[str, int] = {}
        self._domain: dict[str, int] = {}
        self.n_rows = 0

    def _attr(self, name: str) -> AttributeSpec:
        for spec in self.schema:
            if spec.name == name:
                return spec
        raise QueryError(f"unknown attribute: {name}")

    def fit(self, columns: dict[str, np.ndarray]) -> "RelationalIndex":
        """Index a table given as ``{column_name: values}``.

        Numeric columns are discretized; keyword ranges are laid out
        attribute after attribute, exactly the ``(d, v)`` pair encoding of
        Fig. 1.
        """
        missing = [spec.name for spec in self.schema if spec.name not in columns]
        if missing:
            raise ConfigError(f"columns missing from data: {missing}")
        lengths = {name: len(np.asarray(col)) for name, col in columns.items()}
        if len(set(lengths.values())) != 1:
            raise ConfigError(f"ragged columns: {lengths}")
        self.n_rows = next(iter(lengths.values()))

        encoded: dict[str, np.ndarray] = {}
        offset = 0
        for spec in self.schema:
            values = np.asarray(columns[spec.name])
            if spec.kind == "numeric":
                disc = Discretizer(spec.bins).fit(values)
                self._discretizers[spec.name] = disc
                codes = disc.transform(values)
                domain = spec.bins
            else:
                codes = np.asarray(values, dtype=np.int64)
                if codes.size and codes.min() < 0:
                    raise ConfigError(f"categorical column {spec.name} has negative codes")
                domain = int(codes.max()) + 1 if codes.size else 1
            self._offsets[spec.name] = offset
            self._domain[spec.name] = domain
            encoded[spec.name] = codes + offset
            offset += domain

        rows = np.column_stack([encoded[spec.name] for spec in self.schema])
        self.engine.fit(Corpus(list(rows)))
        return self

    def _codes_for_range(self, name: str, lo, hi) -> np.ndarray:
        spec = self._attr(name)
        domain = self._domain[name]
        if spec.kind == "numeric":
            disc = self._discretizers[name]
            lo_code = int(disc.transform(np.asarray([lo]))[0])
            hi_code = int(disc.transform(np.asarray([hi]))[0])
        else:
            lo_code, hi_code = int(lo), int(hi)
        lo_code = max(0, min(lo_code, domain - 1))
        hi_code = max(0, min(hi_code, domain - 1))
        if hi_code < lo_code:
            raise QueryError(f"empty range on {name}: [{lo}, {hi}]")
        return np.arange(lo_code, hi_code + 1, dtype=np.int64) + self._offsets[name]

    def make_query(self, ranges: dict[str, tuple]) -> Query:
        """Build a GENIE query from ``{attribute: (lo, hi)}`` ranges."""
        if not ranges:
            raise QueryError("query must constrain at least one attribute")
        return Query(items=[self._codes_for_range(name, lo, hi) for name, (lo, hi) in ranges.items()])

    def query(self, ranges_batch: list[dict[str, tuple]], k: int = 10) -> list[TopKResult]:
        """Batched top-k selection; counts = matched attributes per tuple."""
        if self.n_rows == 0:
            raise QueryError("index must be fitted before querying")
        queries = [self.make_query(ranges) for ranges in ranges_batch]
        return self.engine.query(queries, k=k)
