"""Seeded synthetic traffic: arrival processes over multi-modality mixes.

The serving benchmark needs *traffic*, not a pre-assembled batch: a
stream of single-query requests spread over the session's indexes, with
realistic arrival dynamics. Two classic patterns are provided, both
driven entirely by the server's virtual clock and a seeded generator so
every run of a workload is bit-identical:

* **Open loop** (:func:`sample_trace` + :func:`run_open_loop`) — arrivals
  follow a Poisson process at a fixed offered rate, independent of how
  fast the server answers. This is the pattern that exposes queueing:
  when the offered rate exceeds the fifo service rate the queue grows
  and admission control pushes back.
* **Closed loop** (:func:`run_closed_loop`) — ``n_clients`` each keep one
  request outstanding, submitting the next one ``think_time`` after the
  previous completes. Throughput is bounded by client concurrency, the
  pattern of benchmark harnesses like YCSB.

A *mix* is a list of :class:`TrafficSource` — one per index, each with a
weight and a seeded raw-query sampler — so a trace interleaves, say, 45%
document queries, 45% ANN queries and 10% sequence queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Callable

import numpy as np

from repro.errors import AdmissionError, ConfigError
from repro.serve.server import GenieServer, RequestFuture


@dataclass(frozen=True)
class TrafficSource:
    """One index's share of a traffic mix.

    Attributes:
        index: Session index name the queries target.
        make_query: ``make_query(rng) -> raw query`` — a seeded sampler in
            the index's raw query format.
        weight: Relative share of the mix.
        k: Results per request.
        opts: Model-specific search options (e.g. ``n_candidates``).
    """

    index: str
    make_query: Callable[[np.random.Generator], Any]
    weight: float = 1.0
    k: int = 10
    opts: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Arrival:
    """One request of a trace: when it arrives and what it asks."""

    time: float
    index: str
    raw_query: Any
    k: int
    opts: tuple  # canonicalized (name, value) pairs


def _pick(sources: list[TrafficSource], probabilities: np.ndarray, rng: np.random.Generator):
    return sources[int(rng.choice(len(sources), p=probabilities))]


def _weights(sources: list[TrafficSource]) -> np.ndarray:
    if not sources:
        raise ConfigError("traffic needs at least one source")
    weights = np.asarray([s.weight for s in sources], dtype=np.float64)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ConfigError("source weights must be non-negative with a positive sum")
    return weights / weights.sum()


def sample_trace(
    sources: list[TrafficSource],
    n_requests: int,
    rate: float,
    seed: int = 0,
    start: float = 0.0,
) -> list[Arrival]:
    """A seeded open-loop (Poisson) trace over a traffic mix.

    Args:
        sources: The mix; each arrival picks a source by weight.
        n_requests: Trace length.
        rate: Offered load in requests per simulated second (exponential
            inter-arrival gaps with mean ``1/rate``).
        seed: Generator seed; same seed, same trace, bit for bit.
        start: Time of the first gap's origin.
    """
    if rate <= 0:
        raise ConfigError("rate must be positive")
    probabilities = _weights(sources)
    rng = np.random.default_rng(seed)
    arrivals = []
    t = float(start)
    for _ in range(int(n_requests)):
        t += float(rng.exponential(1.0 / rate))
        source = _pick(sources, probabilities, rng)
        arrivals.append(
            Arrival(
                time=t,
                index=source.index,
                raw_query=source.make_query(rng),
                k=source.k,
                opts=tuple(sorted(source.opts.items())),
            )
        )
    return arrivals


def run_open_loop(
    server: GenieServer, trace: list[Arrival]
) -> tuple[list[tuple[Arrival, RequestFuture]], int]:
    """Replay a trace against a server; drain at the end.

    The server's clock is advanced to each arrival time (firing batching
    deadlines on the way), the request is submitted, and rejected
    arrivals (admission control) are counted rather than raised — an open
    loop does not slow down for backpressure.

    Returns:
        ``(served, rejected)`` where ``served`` pairs each admitted
        arrival with its (completed) future.
    """
    served: list[tuple[Arrival, RequestFuture]] = []
    rejected = 0
    for arrival in trace:
        server.advance_to(arrival.time)
        try:
            future = server.submit(
                arrival.index, arrival.raw_query, k=arrival.k, **dict(arrival.opts)
            )
        except AdmissionError:
            rejected += 1
            continue
        served.append((arrival, future))
    server.drain()
    return served, rejected


def run_closed_loop(
    server: GenieServer,
    sources: list[TrafficSource],
    n_clients: int,
    requests_per_client: int,
    think_time: float = 0.0,
    seed: int = 0,
) -> list[tuple[Arrival, RequestFuture]]:
    """Closed-loop traffic: each client resubmits after completion.

    Every client draws its request sequence from its own seeded stream
    (``default_rng([seed, client])``), so the workload is reproducible
    regardless of interleaving. Clients all start at the server's current
    time; client ``c`` submits request ``i+1`` at ``completion(i) +
    think_time``. When the scheduler holds a request past the next
    submission (micro-batching ``max_wait``), the loop advances the clock
    to the earliest batching deadline — exactly what a real arrival
    stream would do to a wall clock.

    Returns:
        ``(arrival, future)`` pairs in submission order.
    """
    if n_clients < 1 or requests_per_client < 1:
        raise ConfigError("need n_clients >= 1 and requests_per_client >= 1")
    if think_time < 0:
        raise ConfigError("think_time must be >= 0")
    probabilities = _weights(sources)
    streams = [np.random.default_rng([seed, client]) for client in range(n_clients)]
    sent = [0] * n_clients
    outstanding: dict[int, RequestFuture] = {}
    served: list[tuple[Arrival, RequestFuture]] = []

    events: list[tuple[float, int, int]] = []  # (time, tie-break, client)
    tick = 0
    for client in range(n_clients):
        heappush(events, (server.clock.now(), tick, client))
        tick += 1

    while events or outstanding:
        deadline = server.next_deadline()
        if events and (deadline is None or events[0][0] <= deadline):
            t, _, client = heappop(events)
            server.advance_to(t)
            rng = streams[client]
            source = _pick(sources, probabilities, rng)
            arrival = Arrival(
                time=server.clock.now(),
                index=source.index,
                raw_query=source.make_query(rng),
                k=source.k,
                opts=tuple(sorted(source.opts.items())),
            )
            future = server.submit(
                arrival.index, arrival.raw_query, k=arrival.k, **dict(arrival.opts)
            )
            served.append((arrival, future))
            sent[client] += 1
            outstanding[client] = future
        elif deadline is not None:
            server.advance_to(deadline)
        else:
            server.drain()

        for client in [c for c, f in outstanding.items() if f.done()]:
            future = outstanding.pop(client)
            if sent[client] < requests_per_client:
                resume = future.metadata.completed
                if resume is None:  # failed request: move on immediately
                    resume = server.clock.now()
                heappush(events, (resume + think_time, tick, client))
                tick += 1
    return served
