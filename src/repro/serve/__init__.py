"""Online serving for GENIE sessions: batch the stream, bound the queue.

The paper's throughput claim lives or dies on batch size: the inverted
index match kernel amortizes per-launch overhead over thousands of
concurrent queries (Fig. 9 / Fig. 11), but online traffic arrives one
request at a time. ``repro.serve`` is the layer that converts a request
stream back into the batches the kernel wants:

* :class:`~repro.serve.server.GenieServer` — ``submit()`` /
  ``submit_many()`` with futures, bounded-queue admission control
  (explicit :class:`~repro.errors.AdmissionError` backpressure, never
  silent drops), an exact-match result cache, graceful ``drain()`` /
  ``close()``, and per-request metadata (queue time, batch ridden,
  profile slice).
* :class:`~repro.serve.scheduler.MicroBatchScheduler` +
  :class:`~repro.serve.scheduler.BatchPolicy` — dynamic micro-batching
  under a ``max_batch`` / ``max_wait`` envelope with fair round-robin
  across indexes; ``BatchPolicy.fifo()`` is the one-request-per-kernel
  baseline the benchmark compares against.
* :class:`~repro.serve.cache.QueryResultCache` — exact-match LRU keyed on
  the encoded query, invalidated through the session's ``fit()``/
  ``drop()`` hooks.
* :class:`~repro.serve.metrics.ServeMetrics` — throughput, p50/p95/p99
  latency, batch-size histograms, cache/residency counters via
  ``snapshot()``.
* :mod:`~repro.serve.traffic` — seeded open-loop (Poisson) and
  closed-loop traffic over multi-modality query mixes.

Everything runs on a :class:`~repro.serve.clock.VirtualClock` in
simulated seconds: scheduling decisions, latencies and percentiles are
deterministic and bit-reproducible in CI.

Quickstart::

    from repro.api import GenieSession
    from repro.serve import BatchPolicy, GenieServer

    session = GenieSession(memory_budget=256 << 20)
    session.create_index(texts, model="document", name="tweets")
    server = GenieServer(session, policy=BatchPolicy.micro(max_batch=32))
    future = server.submit("tweets", "gpu similarity search", k=10)
    server.drain()
    future.result().as_pairs()      # identical to a direct search
    future.metadata.batch_size      # the batch this request rode in
    server.snapshot()["throughput_qps"]
"""

from repro.serve.cache import QueryResultCache, make_cache_key
from repro.serve.clock import VirtualClock
from repro.serve.metrics import ServeMetrics, percentile_nearest_rank
from repro.serve.scheduler import BatchPolicy, MicroBatchScheduler
from repro.serve.server import GenieServer, RequestFuture, RequestMetadata
from repro.serve.traffic import (
    Arrival,
    TrafficSource,
    run_closed_loop,
    run_open_loop,
    sample_trace,
)

__all__ = [
    "GenieServer",
    "RequestFuture",
    "RequestMetadata",
    "BatchPolicy",
    "MicroBatchScheduler",
    "QueryResultCache",
    "make_cache_key",
    "ServeMetrics",
    "percentile_nearest_rank",
    "VirtualClock",
    "TrafficSource",
    "Arrival",
    "sample_trace",
    "run_open_loop",
    "run_closed_loop",
]
