"""Serving metrics: throughput, latency percentiles, batch histograms.

All times are *simulated seconds* from the server's virtual clock, so a
seeded workload produces bit-identical numbers on every run — latency
percentiles are CI-assertable, not flaky. Percentiles use the
nearest-rank method (no interpolation): ``p50`` of a recorded population
is always one of the recorded latencies.

Internally every scalar counter lives in a
:class:`~repro.obs.registry.MetricsRegistry` of typed primitives
(:class:`~repro.obs.registry.Counter` /
:class:`~repro.obs.registry.Histogram`), and the batch-size histogram is
cardinality-bounded — but the public surface is unchanged: the same
attributes read and write as before, and :meth:`ServeMetrics.snapshot`
exports the same keys it always has (a back-compat test enforces it).
"""

from __future__ import annotations

from collections import deque

from repro.obs.drift import DriftTracker
from repro.obs.registry import Histogram, MetricsRegistry, percentile_nearest_rank

__all__ = ["REPORTED_PERCENTILES", "ROLLING_SHARD_WINDOW", "ServeMetrics", "percentile_nearest_rank"]

#: Percentiles reported by :meth:`ServeMetrics.snapshot`.
REPORTED_PERCENTILES = (50.0, 95.0, 99.0)

#: Sharded batches the rolling shard-imbalance window spans by default.
ROLLING_SHARD_WINDOW = 64

#: Distinct batch sizes the histogram keeps exact before clamping new
#: values onto the nearest existing bin. Far above any realistic
#: ``max_batch`` policy, so normal workloads never clamp; adversarial
#: long-running traffic stays bounded.
BATCH_SIZE_BINS = 128


def _counter_property(name: str):
    """Expose a registry counter as a plain read/write int-like attribute.

    Call sites accumulate with ``metrics.rejected += 1`` exactly as they
    did when these were bare instance attributes; the property routes the
    read and the write-back through the registered counter.
    """

    def fget(self):
        return self._registry.get(name).value

    def fset(self, value):
        self._registry.get(name).value = value

    return property(fget, fset, doc=f"Registry counter ``{name}``.")


class ServeMetrics:
    """Counters and distributions accumulated by a :class:`GenieServer`.

    Attributes:
        submitted: Requests admitted (queued or served from cache).
        completed: Requests answered, including cache hits.
        rejected: Requests refused by queue-full admission control.
        rejected_by_reason: Refusal breakdown ``{reason: count}`` over
            ``"queue_full"`` / ``"closed"`` / ``"bad_directive"`` — the
            latter two fail the caller without touching ``rejected``
            (whose queue-full-only meaning predates the breakdown).
        failed: Requests whose batch raised (the error is on the future).
        cache_hits / cache_misses: Admission-time cache outcomes.
        batches: Coalesced search calls dispatched.
        batch_sizes: Histogram ``{batch_size: count}`` — a bounded
            :class:`~repro.obs.registry.Histogram` view, exact up to
            ``BATCH_SIZE_BINS`` distinct sizes.
        swap_ins / evictions: Residency events caused by dispatched batches.
        busy_seconds: Simulated device-service time consumed by batches.
            For sharded batches this is the *critical path* (the shards
            run concurrently); per-shard work is in ``shard_busy_seconds``.
        shard_busy_seconds: Per shard position, simulated seconds that
            shard's device spent on dispatched batches (sharded indexes
            only; empty otherwise). Lifetime totals — see
            :attr:`rolling_shard_imbalance` for the recent-window view
            rebalancing decisions need.
        sharded_batches: Dispatched batches that ran on a sharded index.
        replica_failovers: Scan attempts re-dispatched past a failed
            device onto a surviving replica (see :mod:`repro.replica`).
        replica_rebalances: Online hot-shard rebalances the server's
            :class:`~repro.replica.rebalance.RebalancePolicy` fired.
        replica_re_replications: Replicas re-placed after a permanent
            device failure left their group under-replicated.
        routed_batches: Sharded batches whose plan pruned at least one
            (query, shard) scan pair instead of broadcasting (see
            :class:`repro.plan.nodes.RoutingSummary`).
        plan_cache: The session's :class:`~repro.plan.cache.PlanCache`
            when the server wired one in (its hit/miss/invalidation
            counters join :meth:`snapshot`); ``None`` reports zeros.
        delta_postings / compactions: Per mutable index (see
            :mod:`repro.stream`), the latest observed delta-posting gauge
            and lifetime compaction count — how much un-compacted write
            pressure each streamed index carries.
        drift: :class:`~repro.obs.drift.DriftTracker` of per-batch
            predicted-vs-observed cost relative error; ``snapshot()``
            reports its rolling ``cost_drift_p50`` / ``cost_drift_p90``.
        registry: The :class:`~repro.obs.registry.MetricsRegistry`
            holding the typed primitives behind the scalar attributes.
    """

    submitted = _counter_property("submitted")
    completed = _counter_property("completed")
    rejected = _counter_property("rejected")
    failed = _counter_property("failed")
    cache_hits = _counter_property("cache_hits")
    cache_misses = _counter_property("cache_misses")
    batches = _counter_property("batches")
    swap_ins = _counter_property("swap_ins")
    evictions = _counter_property("evictions")
    busy_seconds = _counter_property("busy_seconds")
    sharded_batches = _counter_property("sharded_batches")
    routed_batches = _counter_property("routed_batches")
    replica_failovers = _counter_property("replica_failovers")
    replica_rebalances = _counter_property("replica_rebalances")
    replica_re_replications = _counter_property("replica_re_replications")

    def __init__(self, rolling_shard_window: int = ROLLING_SHARD_WINDOW):
        registry = MetricsRegistry()
        for name in (
            "submitted", "completed", "rejected", "failed",
            "cache_hits", "cache_misses", "batches",
            "swap_ins", "evictions", "sharded_batches", "routed_batches",
            "replica_failovers", "replica_rebalances", "replica_re_replications",
        ):
            registry.counter(name)
        registry.counter("busy_seconds").value = 0.0
        self._registry = registry
        self._batch_hist = registry.histogram("batch_sizes", max_bins=BATCH_SIZE_BINS)
        self.rejected_by_reason: dict[str, int] = {}
        self.shard_busy_seconds: dict[int, float] = {}
        # Per-batch shard-seconds vectors over a bounded recent window;
        # the rolling shard-imbalance rebalancing decisions consult.
        self._rolling_shards: deque = deque(maxlen=int(rolling_shard_window))
        self._scanned_pairs = 0
        self._pruned_pairs = 0
        self.first_arrival: float | None = None
        self.last_completion: float | None = None
        self._latencies: list[float] = []
        self._queue_times: list[float] = []
        self.plan_cache = None
        self.delta_postings: dict[str, int] = {}
        self.compactions: dict[str, int] = {}
        self.drift = DriftTracker()

    @property
    def registry(self) -> MetricsRegistry:
        """The typed-primitive registry behind the scalar attributes."""
        return self._registry

    @property
    def batch_sizes(self) -> dict:
        """Live ``{batch_size: count}`` bins of the bounded histogram."""
        return self._batch_hist.bins

    @property
    def batch_size_histogram(self) -> Histogram:
        """The bounded :class:`~repro.obs.registry.Histogram` itself."""
        return self._batch_hist

    # ------------------------------------------------------------------
    # recording

    def record_arrival(self, now: float) -> None:
        """Note an admitted request at simulated time ``now``."""
        self.submitted += 1
        if self.first_arrival is None:
            self.first_arrival = now

    def record_completion(self, latency: float, queue_time: float, completed_at: float) -> None:
        """Note one answered request with its latency components."""
        self.completed += 1
        self._latencies.append(float(latency))
        self._queue_times.append(float(queue_time))
        if self.last_completion is None or completed_at > self.last_completion:
            self.last_completion = completed_at

    def record_rejection(self, reason: str) -> None:
        """Note one refused admission under its reason.

        Reasons: ``"queue_full"`` (backpressure; also counted in
        ``rejected``), ``"closed"`` (server or session shut down), and
        ``"bad_directive"`` (invalid ``k``/``route``/``plan``/options or
        a malformed query failing at the door).
        """
        self.rejected_by_reason[reason] = self.rejected_by_reason.get(reason, 0) + 1

    def record_batch(
        self,
        size: int,
        service_seconds: float,
        swap_ins: int,
        evictions: int,
        shard_seconds: list[float] | None = None,
        routing=None,
        predicted_cost: float | None = None,
        observed_seconds: float | None = None,
    ) -> None:
        """Note one dispatched batch and its residency side effects.

        Args:
            size: Requests coalesced into the batch.
            service_seconds: The batch's simulated service time (for a
                sharded index: the concurrent critical path).
            swap_ins / evictions: Residency events the batch caused.
            shard_seconds: Per-shard device seconds when the batch ran on
                a sharded index, in shard order.
            routing: The batch plan's
                :class:`~repro.plan.nodes.RoutingSummary` when it ran on
                a sharded index (``None`` otherwise) — feeds the
                routed-vs-broadcast counters.
            predicted_cost: The planner's predicted seconds over the
                costed stages, when the plan was priced.
            observed_seconds: The observed seconds over those same
                stages; with ``predicted_cost`` it feeds the rolling
                cost-drift gauges.
        """
        self.batches += 1
        self._batch_hist.observe(int(size))
        self.busy_seconds += float(service_seconds)
        self.swap_ins += int(swap_ins)
        self.evictions += int(evictions)
        if shard_seconds is not None:
            self.sharded_batches += 1
            self._rolling_shards.append(tuple(float(s) for s in shard_seconds))
            for shard, seconds in enumerate(shard_seconds):
                self.shard_busy_seconds[shard] = (
                    self.shard_busy_seconds.get(shard, 0.0) + float(seconds)
                )
        if routing is not None:
            self._scanned_pairs += int(routing.scanned_pairs)
            self._pruned_pairs += int(routing.pruned_pairs)
            if not routing.broadcast:
                self.routed_batches += 1
        if predicted_cost is not None:
            self.drift.record(predicted_cost, observed_seconds)

    def record_stream(self, index: str, delta_postings: int, compactions: int) -> None:
        """Note a mutable index's stream gauges after a dispatched batch.

        ``delta_postings`` is a gauge (latest wins — compaction drives it
        back to zero); ``compactions`` is the manifest's lifetime counter.
        """
        self.delta_postings[index] = int(delta_postings)
        self.compactions[index] = int(compactions)

    # ------------------------------------------------------------------
    # derived views

    @property
    def elapsed_seconds(self) -> float:
        """Simulated seconds from first admitted arrival to last completion."""
        if self.first_arrival is None or self.last_completion is None:
            return 0.0
        return self.last_completion - self.first_arrival

    @property
    def throughput(self) -> float:
        """Completed requests per simulated second over the elapsed window.

        A zero-length window — a single request, or a run answered
        entirely from cache at one instant — reports ``0.0`` instead of
        dividing by zero.
        """
        elapsed = self.elapsed_seconds
        return self.completed / elapsed if elapsed > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Average requests per dispatched batch.

        Computed from the histogram's exact raw accumulators, so bin
        clamping never moves the mean.
        """
        return self._batch_hist.total / self.batches if self.batches else 0.0

    @property
    def shard_imbalance(self) -> float:
        """``max / mean`` of per-shard busy seconds (1.0 = balanced).

        The load-imbalance figure of merit for sharded serving (Fig. 12's
        skew story at the cluster level): how much longer the hottest
        shard worked than the average shard. ``0.0`` when no sharded
        batch has been dispatched.
        """
        if not self.shard_busy_seconds:
            return 0.0
        busy = list(self.shard_busy_seconds.values())
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 0.0

    def rolling_shard_seconds(self) -> list[float]:
        """Per-shard busy seconds summed over the rolling window.

        Positions a batch did not report (an index with fewer shards)
        contribute zero to the missing tail. ``[]`` when no sharded
        batch is in the window.
        """
        width = max((len(vec) for vec in self._rolling_shards), default=0)
        sums = [0.0] * width
        for vec in self._rolling_shards:
            for shard, seconds in enumerate(vec):
                sums[shard] += seconds
        return sums

    @property
    def rolling_window_batches(self) -> int:
        """Sharded batches currently inside the rolling window."""
        return len(self._rolling_shards)

    @property
    def rolling_shard_imbalance(self) -> float:
        """``max / mean`` of per-shard busy seconds over the rolling window.

        The *when-to-rebalance* signal: unlike the lifetime
        :attr:`shard_imbalance` gauge — which a long balanced history
        pins near 1.0 no matter how skewed traffic just became, and
        which a rebalance can never pull back down — this reflects only
        the last window of sharded batches, so it rises when skew
        appears and falls once a rebalance (or traffic shift) fixes it.
        ``0.0`` with an empty window.
        """
        busy = self.rolling_shard_seconds()
        if not busy:
            return 0.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 0.0

    def reset_rolling_shards(self) -> None:
        """Drop the rolling window (after a rebalance: old cuts, old skew)."""
        self._rolling_shards.clear()

    @property
    def pruned_shard_fraction(self) -> float:
        """Fraction of per-shard query scans that shard routing avoided.

        One ``(query, shard)`` pair is one per-shard query scan; broadcast
        execution scans all of them. ``0.0`` when no sharded batch has
        been dispatched (or every one broadcast).
        """
        total = self._scanned_pairs + self._pruned_pairs
        return self._pruned_pairs / total if total else 0.0

    def latency(self, p: float) -> float:
        """Nearest-rank latency percentile over completed requests."""
        return percentile_nearest_rank(self._latencies, p)

    def queue_time(self, p: float) -> float:
        """Nearest-rank queue-time percentile over completed requests."""
        return percentile_nearest_rank(self._queue_times, p)

    def snapshot(self) -> dict:
        """The whole metrics surface as one flat dict.

        Keys are stable and values deterministic for a seeded workload;
        tests compare snapshots of repeated runs for equality. Every key
        that existed before the registry refactor is still exported with
        an identical value (enforced by the back-compat test); the
        additions are ``rejected_by_reason`` and the ``cost_drift_*``
        gauges.
        """
        snap = {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_histogram": self._batch_hist.as_dict(),
            "swap_ins": self.swap_ins,
            "evictions": self.evictions,
            "busy_seconds": self.busy_seconds,
            "sharded_batches": self.sharded_batches,
            "routed_batches": self.routed_batches,
            "pruned_shard_fraction": self.pruned_shard_fraction,
            "shard_busy_seconds": dict(sorted(self.shard_busy_seconds.items())),
            "shard_imbalance": self.shard_imbalance,
            "rolling_shard_imbalance": self.rolling_shard_imbalance,
            "rolling_window_batches": self.rolling_window_batches,
            "replica_failovers": self.replica_failovers,
            "replica_rebalances": self.replica_rebalances,
            "replica_re_replications": self.replica_re_replications,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_qps": self.throughput,
            "plan_cache_hits": self.plan_cache.hits if self.plan_cache is not None else 0,
            "plan_cache_misses": (
                self.plan_cache.misses if self.plan_cache is not None else 0
            ),
            "plan_cache_invalidations": (
                self.plan_cache.invalidations if self.plan_cache is not None else 0
            ),
            "plan_cache_size": len(self.plan_cache) if self.plan_cache is not None else 0,
            "delta_postings": sum(self.delta_postings.values()),
            "compactions": sum(self.compactions.values()),
            "rejected_by_reason": dict(sorted(self.rejected_by_reason.items())),
            "cost_drift_p50": self.drift.p50,
            "cost_drift_p90": self.drift.p90,
            "cost_drift_samples": self.drift.samples,
        }
        for p in REPORTED_PERCENTILES:
            snap[f"latency_p{p:g}"] = self.latency(p)
        for p in REPORTED_PERCENTILES:
            snap[f"queue_time_p{p:g}"] = self.queue_time(p)
        return snap
