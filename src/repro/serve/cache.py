"""Exact-match query-result cache for the serving layer.

Online traffic repeats itself (hot queries, retries, fan-out duplicates);
GENIE's match kernel is deterministic for a fixed index, so an exact
repeat can be answered without a device trip at all. The cache is a plain
LRU keyed on the *encoded* query — ``(index, encoded items, k, options)``
— so two raw queries that encode identically share an entry. Models
whose ``finalize`` hook reads the raw query (``finalize_uses_raw``, e.g.
sequence search verifying edit distance against the raw string) add the
raw query to the key, because their encoding is not injective; when such
a raw query is unhashable the server skips caching that request rather
than risk serving another query's payload.

Invalidation is event-driven, not TTL-driven: the session fires an
invalidation hook whenever an index is refit or dropped
(:meth:`repro.api.session.GenieSession.add_invalidation_hook`), and the
server forwards it to :meth:`QueryResultCache.invalidate`, which removes
exactly that index's entries. Cached results are therefore always
bit-identical to what a direct search would return.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.core.types import Query
from repro.errors import ConfigError


def make_cache_key(index: str, query: Query, k: int, opts_key: tuple, raw=None) -> tuple:
    """The exact-match cache key for one encoded request.

    Args:
        index: Index name the request targets.
        query: The *encoded* query (its items define the match).
        k: Results requested.
        opts_key: Canonicalized search options, e.g.
            ``(("n_candidates", 48),)`` — produced with
            ``tuple(sorted(opts.items()))``.
        raw: The raw query, included (and required hashable) when the
            model's ``finalize`` reads it (``finalize_uses_raw``):
            encoding is not injective — e.g. the n-gram encoder drops
            unseen grams — so two raw queries with equal encodings could
            otherwise be served each other's verified payload.
    """
    items = tuple(tuple(int(kw) for kw in item) for item in query.items)
    return (index, items, int(k), opts_key, raw)


class QueryResultCache:
    """A bounded LRU of per-query search results with hit/miss counters.

    Args:
        capacity: Maximum cached entries; the least recently used entry is
            evicted beyond it.
    """

    def __init__(self, capacity: int = 1024):
        if int(capacity) < 1:
            raise ConfigError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple):
        """The cached value for ``key`` (bumped to MRU), or ``None``.

        Counts a hit or a miss; probe with ``key in cache`` to peek
        without touching the counters.
        """
        try:
            value = self._entries.pop(key)
        except KeyError:
            self.misses += 1
            return None
        self._entries[key] = value  # re-insert == MRU bump
        self.hits += 1
        return value

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def put(self, key: tuple, value) -> None:
        """Insert/refresh an entry, evicting LRU entries beyond capacity."""
        self._entries.pop(key, None)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, index: str) -> int:
        """Drop every entry of ``index`` (fired on ``fit()``/``drop()``).

        Returns the number of entries removed.
        """
        stale = [key for key in self._entries if key[0] == index]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self.invalidations += len(self._entries)
        self._entries.clear()

    def stats(self) -> dict:
        """Counters snapshot (deterministic key order)."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
