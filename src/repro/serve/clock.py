"""The virtual clock driving the serving subsystem.

Everything in ``repro.serve`` is timed in *simulated seconds* on an
injectable monotonic clock, never wall time: arrivals are stamped with
``clock.now()``, batching deadlines and completions are computed from
simulated service profiles, and the clock only moves when a driver
advances it. Repeated runs of the same seeded workload therefore produce
bit-identical latency percentiles — in CI as on any laptop.
"""

from __future__ import annotations

from repro.errors import ConfigError


class VirtualClock:
    """A monotonic simulated clock (seconds as floats).

    Args:
        start: Initial time.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move forward by ``seconds`` (must be non-negative); returns now."""
        seconds = float(seconds)
        if seconds < 0:
            raise ConfigError(f"cannot advance the clock by {seconds} s")
        self._now += seconds
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to ``t``; times in the past are a no-op (monotonic)."""
        if t > self._now:
            self._now = float(t)
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now:.6g})"
