"""`GenieServer`: the online front end over a `GenieSession`.

The server is the layer between an online request stream and the batch
kernel: requests are admitted one at a time (``submit``), encoded once at
the door, answered from the exact-match cache when possible, and
otherwise queued for the micro-batching scheduler, which drains them into
coalesced :meth:`~repro.api.session.IndexHandle.search_encoded` calls.

Three serving guarantees:

* **Backpressure, never silent drops** — the queue is bounded
  (``max_queue_depth``); an admission beyond it raises
  :class:`~repro.errors.AdmissionError` and counts in the metrics.
* **Deterministic time** — arrivals, batching deadlines and completions
  live on an injectable :class:`~repro.serve.clock.VirtualClock`; the
  device executes batches serially, so a request's completion is
  ``max(dispatch, device_free) + service`` in simulated seconds. Repeated
  seeded runs produce identical latency percentiles.
* **Observable requests** — every future carries
  :class:`RequestMetadata`: queue time, the batch size it rode in, the
  batch's stage-profile slice, and whether the cache answered it.

Execution is synchronous under the hood (the simulated device needs no
threads): ``submit()`` dispatches any batch its arrival makes ready,
``advance()``/``advance_to()`` move virtual time and fire ``max_wait``
deadlines in order, and ``drain()``/``close()`` flush everything queued.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.api.models import resolve_shortlist_k
from repro.api.session import GenieSession
from repro.errors import AdmissionError, ConfigError, QueryError, ReproError
from repro.gpu.stats import StageTimings
from repro.obs.trace import Span, Tracer
from repro.plan.cost import PREDICTED_STAGES
from repro.plan.planner import validate_plan_args
from repro.serve.cache import QueryResultCache, make_cache_key
from repro.serve.clock import VirtualClock
from repro.serve.metrics import ServeMetrics
from repro.serve.scheduler import BatchPolicy, MicroBatchScheduler

logger = logging.getLogger("repro.serve")


@dataclass
class RequestMetadata:
    """Per-request serving observability, in simulated seconds.

    Attributes:
        index: Index the request targeted.
        k: Results requested.
        seq: Global admission sequence number.
        arrival: Submit time.
        dispatched: When the scheduler drained the request from its queue
            (equals ``arrival`` for cache hits).
        started: When the device began serving its batch (dispatch may
            wait behind an earlier batch on the serial device).
        completed: When its batch finished (== ``arrival`` for cache hits).
        batch_size: Requests in the coalesced batch it rode in (0 for a
            cache hit — no device trip happened).
        cache_hit: Whether the exact-match cache answered it.
        profile: The *batch's* per-stage profile (shared by all requests
            of the batch); ``None`` for cache hits.
        trace: The request's span tree (:class:`~repro.obs.trace.Span`)
            when the server's tracer sampled it: admit → cache lookup →
            queue wait → batch ride → plan/scan/merge execution spans,
            all on the virtual clock. ``None`` for unsampled requests
            (which allocate no spans at all).
    """

    index: str
    k: int
    seq: int
    arrival: float
    dispatched: float | None = None
    started: float | None = None
    completed: float | None = None
    batch_size: int = 0
    cache_hit: bool = False
    profile: StageTimings | None = None
    trace: Span | None = None

    @property
    def queue_time(self) -> float | None:
        """Seconds spent queued before dispatch."""
        if self.dispatched is None:
            return None
        return self.dispatched - self.arrival

    @property
    def service_time(self) -> float | None:
        """Seconds the device spent on the batch it rode in."""
        if self.completed is None or self.started is None:
            return None
        return self.completed - self.started

    @property
    def latency(self) -> float | None:
        """End-to-end seconds from submit to completion."""
        if self.completed is None:
            return None
        return self.completed - self.arrival

    def profile_share(self) -> StageTimings | None:
        """This request's 1/batch_size slice of the batch profile."""
        if self.profile is None or self.batch_size < 1:
            return None
        share = StageTimings()
        for stage, seconds in self.profile.seconds.items():
            share.add(stage, seconds / self.batch_size)
        return share


class RequestFuture:
    """Handle to one submitted request; resolved when its batch runs.

    Attributes:
        metadata: The request's :class:`RequestMetadata` (timestamps fill
            in as the request progresses).
        payload: The model-specific per-query payload slice (e.g. the
            verified :class:`~repro.sa.sequence.SequenceSearchResult`),
            ``None`` until done or for payload-less models.
    """

    def __init__(self, metadata: RequestMetadata):
        self.metadata = metadata
        self.payload = None
        self._result = None
        self._error: BaseException | None = None
        self._done = False

    def done(self) -> bool:
        """Whether the request has been answered (or failed)."""
        return self._done

    def result(self):
        """The request's :class:`~repro.core.types.TopKResult`.

        Raises:
            QueryError: If the request is still queued (advance or drain
                the server first).
            ReproError: Whatever error failed the request's batch.
        """
        if not self._done:
            raise QueryError(
                "request is not completed yet; advance(), drain() or close() the server"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def _resolve(self, result, payload) -> None:
        self._result = result
        self.payload = payload
        self._done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True


class _ServeRequest:
    """Internal queued request: what the scheduler and dispatcher see."""

    __slots__ = ("seq", "index", "raw", "query", "lane", "arrival", "future",
                 "cache_key", "trace")

    def __init__(self, seq, index, raw, query, lane, arrival, future, cache_key,
                 trace=None):
        self.seq = seq
        self.index = index
        self.raw = raw
        self.query = query
        # (k, opts_key, route, plan): only lane-mates may share a batch,
        # so a coalesced search has one k, one option set, one plan.
        self.lane = lane
        self.arrival = arrival
        self.future = future
        self.cache_key = cache_key
        self.trace = trace


class GenieServer:
    """Online serving front end over a :class:`GenieSession`.

    Args:
        session: The session whose indexes are served.
        policy: Batching policy (:meth:`BatchPolicy.micro` default;
            :meth:`BatchPolicy.fifo` is the single-request baseline).
        clock: Virtual clock; a fresh one starting at 0 when omitted.
        max_queue_depth: Bound on queued (not yet dispatched) requests;
            admission beyond it raises :class:`AdmissionError`.
        cache_size: Entries in the exact-match result cache; ``0`` or
            ``None`` disables caching.
        route: Server-wide default for the planner's routing escape hatch
            (``"auto"`` / ``"pruned"`` / ``"broadcast"``); per-request
            ``submit(..., route=...)`` overrides it.
        plan: Server-wide default merge strategy (``"auto"`` /
            ``"one-round"`` / ``"two-round"``); per-request override as
            above. Requests only coalesce with lane-mates sharing both
            directives, so one batch always executes one strategy. Both
            defaults are shard strategies and apply to sharded indexes
            only; requests to serial indexes ignore them (an explicit
            per-request directive is still validated strictly).
        trace_sample: Trace one request in this many through a
            :class:`~repro.obs.trace.Tracer` (``1`` traces everything;
            the choice is deterministic from the admission sequence
            number). ``None`` disables tracing entirely — untraced
            serving allocates no spans.
        rebalance: A :class:`~repro.replica.rebalance.RebalancePolicy`
            consulted after every dispatched sharded batch; past its
            rolling-imbalance threshold the server recuts the batch's
            index online (:meth:`ShardedIndexHandle.rebalance
            <repro.cluster.executor.ShardedIndexHandle.rebalance>`).
            ``None`` (default) never rebalances.
    """

    def __init__(
        self,
        session: GenieSession,
        policy: BatchPolicy | None = None,
        clock: VirtualClock | None = None,
        max_queue_depth: int = 256,
        cache_size: int | None = 1024,
        route: str | None = None,
        plan: str | None = None,
        trace_sample: int | None = None,
        rebalance=None,
    ):
        if int(max_queue_depth) < 1:
            raise ConfigError("max_queue_depth must be >= 1")
        self.session = session
        self.clock = clock if clock is not None else VirtualClock()
        self.scheduler = MicroBatchScheduler(policy)
        self.max_queue_depth = int(max_queue_depth)
        # Fail a misconfigured server default here, not on the first
        # innocent request to a sharded index (and not silently-never on
        # a serial-only server, where the defaults are simply unused).
        # Constructor misconfiguration is ConfigError, like every other
        # constructor in the repo; QueryError stays per-request.
        try:
            validate_plan_args(route, plan, sharded=True)
        except QueryError as error:
            raise ConfigError(f"bad server default: {error}") from None
        self.route = route
        self.plan = plan
        self.cache = QueryResultCache(cache_size) if cache_size else None
        if self.cache is not None:
            session.add_invalidation_hook(self.cache.invalidate)
        self.metrics = ServeMetrics()
        # Surface the session's plan-cache counters in snapshot(): warm
        # lanes skipping compilation is a serving property worth watching.
        self.metrics.plan_cache = session.plan_cache
        self.tracer = None
        if trace_sample is not None:
            self.tracer = Tracer(sample_every=trace_sample, clock=self.clock)
            # Background session work (stream compaction) records its
            # standalone spans through the same tracer and clock.
            session.tracer = self.tracer
        self.rebalance_policy = rebalance
        if session.faults is not None and session.faults.clock is None:
            # Fault plans are virtual-clock schedules; wire the server's
            # clock in so injected outages start and recover on the same
            # timeline the metrics and traces use.
            session.faults.clock = self.clock
        self._seq = 0
        self._device_free = 0.0
        self._closed = False

    # ------------------------------------------------------------------
    # admission

    def submit(
        self,
        index: str,
        raw_query,
        k: int | None = None,
        route: str | None = None,
        plan: str | None = None,
        **opts,
    ) -> RequestFuture:
        """Admit one request; returns a future resolved when its batch runs.

        The query is encoded immediately (malformed queries fail *here*,
        not inside someone else's batch), and the planner directives are
        validated immediately too (a bad ``route=`` fails the submitting
        request, never a coalesced batch). A cache hit is answered at
        once — even when the queue is full, a hit needs no queue slot. A
        miss must find room in the bounded queue or admission fails.

        Args:
            index: Target index name.
            raw_query: One query in the model's raw format.
            k: Results requested (index default when omitted).
            route: Planner routing directive (``"auto"``/``"pruned"``/
                ``"broadcast"``); server default when omitted. Only
                requests with matching directives share a batch.
            plan: Planner merge directive (``"auto"``/``"one-round"``/
                ``"two-round"``); server default when omitted.
            opts: Model-specific search options.

        Raises:
            ConfigError: Closed server or session, or unknown index.
            QueryError: Malformed query, bad ``k``, bad options, or a
                shard-only ``route``/``plan`` on a serial index.
            AdmissionError: Queue full (explicit backpressure).
        """
        try:
            self._check_open()
            self.session._check_open()
        except ConfigError:
            self.metrics.record_rejection("closed")
            logger.debug("admission reject reason=closed index=%s", index)
            raise
        try:
            handle = self.session.index(index)
            k = int(k if k is not None else handle.config.k)
            if k < 1:
                raise QueryError("k must be >= 1")
            # The normalized forms go into the lane so equivalent directives
            # (None vs the explicit "auto") coalesce into one batch.
            route, plan = self._resolve_directives(handle, route, plan)
            opts_key = tuple(sorted(opts.items()))
            resolve_shortlist_k(handle.model, k, opts)  # validates the options eagerly
            query = handle.encode_queries([raw_query])[0]
        except (ConfigError, QueryError) as error:
            self.metrics.record_rejection("bad_directive")
            logger.debug(
                "admission reject reason=bad_directive index=%s error=%s", index, error
            )
            raise

        now = self.clock.now()
        tracer = self.tracer
        sampled = tracer is not None and tracer.sampled(self._seq)
        cache_key = None
        if self.cache is not None:
            cache_key = self._cache_key(handle, index, raw_query, query, k, opts_key)
        if cache_key is not None:
            cached = self.cache.get(cache_key)
            if cached is not None:
                self.metrics.cache_hits += 1
                future = self._answer_from_cache(index, k, cached, now)
                if sampled:
                    root = Span("request", start=now, seq=future.metadata.seq,
                                index=index, k=k, cache_hit=True)
                    root.child("admit", start=now)
                    root.child("cache_lookup", start=now, hit=True)
                    future.metadata.trace = root
                    tracer.record(root)
                return future
            self.metrics.cache_misses += 1

        if self.scheduler.depth + 1 > self.max_queue_depth:
            self.metrics.rejected += 1
            self.metrics.record_rejection("queue_full")
            logger.debug(
                "admission reject reason=queue_full index=%s depth=%d limit=%d",
                index, self.scheduler.depth, self.max_queue_depth,
            )
            raise AdmissionError(self.scheduler.depth, self.max_queue_depth)

        trace_span = None
        if sampled:
            trace_span = Span("request", start=now, seq=self._seq, index=index, k=k)
            trace_span.child("admit", start=now)
            if cache_key is not None:
                trace_span.child("cache_lookup", start=now, hit=False)
        future = RequestFuture(RequestMetadata(index=index, k=k, seq=self._seq, arrival=now))
        request = _ServeRequest(
            self._seq, index, raw_query, query, (k, opts_key, route, plan),
            now, future, cache_key, trace=trace_span,
        )
        self._seq += 1
        self.metrics.record_arrival(now)
        self.scheduler.enqueue(index, request)
        self.pump()
        return future

    def submit_many(
        self,
        index: str,
        raw_queries,
        k: int | None = None,
        route: str | None = None,
        plan: str | None = None,
        **opts,
    ) -> list[RequestFuture]:
        """Admit a burst of requests for one index, all-or-nothing.

        Admission is checked for the whole burst up front (assuming every
        request misses the cache), so a burst either fits or raises
        :class:`AdmissionError` without enqueuing a partial prefix.
        """
        self._check_open()
        raw_queries = list(raw_queries)
        if self.scheduler.depth + len(raw_queries) > self.max_queue_depth:
            self.metrics.rejected += len(raw_queries)
            for _ in raw_queries:
                self.metrics.record_rejection("queue_full")
            logger.debug(
                "admission reject reason=queue_full index=%s burst=%d depth=%d limit=%d",
                index, len(raw_queries), self.scheduler.depth, self.max_queue_depth,
            )
            raise AdmissionError(self.scheduler.depth, self.max_queue_depth)
        return [
            self.submit(index, raw, k=k, route=route, plan=plan, **opts)
            for raw in raw_queries
        ]

    def _resolve_directives(self, handle, route, plan) -> tuple[str, str]:
        """Resolve per-request ``route``/``plan`` against server defaults.

        Server-wide defaults are shard strategies; a serial index on a
        mixed-index server must stay servable, so it ignores them (an
        explicit per-request directive is still validated strictly).
        Shared by :meth:`submit` and :meth:`explain`, so an explained
        plan always reflects what a submit with the same arguments would
        execute.
        """
        sharded = getattr(handle, "n_shards", None) is not None
        if route is None:
            route = self.route if sharded else None
        if plan is None:
            plan = self.plan if sharded else None
        return validate_plan_args(route, plan, sharded=sharded)

    def explain(
        self,
        index: str,
        raw_query,
        k: int | None = None,
        route: str | None = None,
        plan: str | None = None,
        **opts,
    ):
        """The plan a :meth:`submit` with these arguments would execute.

        Directive resolution is shared with :meth:`submit` — server-wide
        ``route``/``plan`` defaults apply to sharded indexes and
        per-request overrides win — then delegates to
        :meth:`IndexHandle.explain <repro.api.session.IndexHandle.explain>`.
        Nothing is admitted, executed, or charged.
        """
        self._check_open()
        self.session._check_open()
        handle = self.session.index(index)
        route, plan = self._resolve_directives(handle, route, plan)
        return handle.explain([raw_query], k=k, route=route, plan=plan, **opts)

    @staticmethod
    def _cache_key(handle, index, raw_query, query, k, opts_key):
        """The request's cache key, or ``None`` when caching is unsafe.

        Models whose ``finalize`` reads the raw query (sequence search)
        get the raw query added to the key — their encoding is not
        injective, so the encoded items alone could conflate two raw
        queries with different verified payloads. An unhashable raw query
        then disables caching for the request instead of guessing.

        The planner directives (``route``/``plan``) are deliberately
        *not* part of the key: every strategy returns bit-identical
        results, so a cached answer is valid for all of them.
        """
        raw_part = None
        if getattr(handle.model, "finalize_uses_raw", False):
            try:
                hash(raw_query)
            except TypeError:
                return None
            raw_part = raw_query
        return make_cache_key(index, query, k, opts_key, raw=raw_part)

    def _answer_from_cache(self, index: str, k: int, cached, now: float) -> RequestFuture:
        result, payload = cached
        metadata = RequestMetadata(
            index=index, k=k, seq=self._seq, arrival=now,
            dispatched=now, started=now, completed=now,
            batch_size=0, cache_hit=True,
        )
        self._seq += 1
        future = RequestFuture(metadata)
        future._resolve(result, payload)
        self.metrics.record_arrival(now)
        self.metrics.record_completion(0.0, 0.0, now)
        return future

    # ------------------------------------------------------------------
    # time and dispatch

    def pump(self) -> int:
        """Dispatch every batch that is ready now; returns batches run."""
        batches = self.scheduler.pop_ready(self.clock.now())
        self._dispatch_all(batches)
        return len(batches)

    def _dispatch_all(self, batches) -> None:
        """Dispatch popped batches; never strand a popped request.

        The scheduler pops a whole pass of batches eagerly. If one batch
        raises a non-:class:`~repro.errors.ReproError` (which
        :meth:`_dispatch` re-raises after failing its own futures), the
        remaining popped batches can no longer be served by a retry —
        they are not queued anymore — so their futures are failed with
        the same error before it propagates.
        """
        for position, (index, requests) in enumerate(batches):
            try:
                self._dispatch(index, requests)
            except BaseException as error:
                now = self.clock.now()
                for _, remaining in batches[position + 1 :]:
                    self.metrics.failed += len(remaining)
                    for request in remaining:
                        request.future.metadata.dispatched = now
                        request.future._fail(error)
                raise

    def next_deadline(self) -> float | None:
        """Earliest queued ``max_wait`` deadline (drivers advance to it)."""
        return self.scheduler.next_deadline()

    def advance(self, seconds: float) -> None:
        """Advance virtual time by ``seconds``, firing deadlines in order."""
        self.advance_to(self.clock.now() + float(seconds))

    def advance_to(self, t: float) -> None:
        """Advance virtual time to ``t``, firing deadlines in order.

        Deadlines within ``(now, t]`` dispatch *at their deadline time*,
        not at ``t`` — queue-time metrics stay exact.
        """
        while True:
            deadline = self.scheduler.next_deadline()
            if deadline is None or deadline > t:
                break
            self.clock.advance_to(deadline)
            self.pump()
        self.clock.advance_to(t)
        self.pump()

    def drain(self) -> None:
        """Serve everything queued now, ignoring batching deadlines."""
        while self.scheduler.depth:
            self._dispatch_all(self.scheduler.pop_all(self.clock.now()))

    def close(self) -> None:
        """Graceful shutdown: refuse new requests, drain what is queued.

        Idempotent; the underlying session stays open (it belongs to the
        caller). Subsequent :meth:`submit` calls raise
        :class:`ConfigError`. The closed flag is set *before* the drain:
        if a queued batch raises a non-:class:`~repro.errors.ReproError`
        during the drain (those fail only their own futures), the error
        propagates but the server stays closed instead of silently
        continuing to admit requests.
        """
        if self._closed:
            return
        self._closed = True
        self.drain()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def depth(self) -> int:
        """Requests currently queued (admitted, not yet dispatched)."""
        return self.scheduler.depth

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigError("server is closed")

    def __enter__(self) -> "GenieServer":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # execution

    def _dispatch(self, index: str, requests: list[_ServeRequest]) -> None:
        now = self.clock.now()
        k, opts_key, route, plan = requests[0].lane
        raw = [r.raw for r in requests]
        queries = [r.query for r in requests]
        start = max(now, self._device_free)
        # One execution trace per batch, shared (copied) into every
        # sampled rider; a batch of unsampled requests records nothing.
        want_trace = self.tracer is not None and any(
            r.trace is not None for r in requests
        )
        try:
            # The lookup is inside the guard: the index may have been
            # dropped while these requests were queued, and that must fail
            # the futures, not escape drain()/close(). The batch lowers
            # through the query planner exactly like a direct search —
            # same plan rules, same bit-identical results.
            handle = self.session.index(index)
            result = handle.search_encoded(
                raw, queries, k=k, route=route, plan=plan, trace=want_trace,
                **dict(opts_key)
            )
        except ReproError as error:
            self.metrics.failed += len(requests)
            for request in requests:
                request.future.metadata.dispatched = now
                request.future._fail(error)
            return
        except BaseException as error:
            # Unexpected (non-Repro) errors propagate to the driver, but
            # the requests were already popped from the scheduler — their
            # futures must still resolve (with the error), never strand.
            self.metrics.failed += len(requests)
            for request in requests:
                request.future.metadata.dispatched = now
                request.future._fail(error)
            raise
        # For a sharded index the profile is already the concurrent
        # critical path (slowest shard + merge), so the shard scans of one
        # batch overlap in simulated time; per-shard work feeds the
        # imbalance counters.
        service = result.profile.query_total()
        completed = start + service
        self._device_free = completed
        shard_profiles = result.shard_profiles
        observed_cost = None
        if result.predicted_cost is not None:
            # Observed seconds over exactly the stages the model prices —
            # the same convention the calibration replay audits against.
            observed_cost = sum(
                result.profile.get(stage) for stage in PREDICTED_STAGES
            )
        self.metrics.record_batch(
            len(requests), service, result.swapped_in, len(result.evicted),
            shard_seconds=[p.query_total() for p in shard_profiles]
            if shard_profiles
            else None,
            routing=result.routing,
            predicted_cost=result.predicted_cost,
            observed_seconds=observed_cost,
        )
        manifest = getattr(handle, "manifest", None)
        if manifest is not None:
            self.metrics.record_stream(
                handle.name, manifest.delta_postings, manifest.compactions
            )
        if result.failovers:
            self._heal_after_failover(handle, result.failovers)
        if self.rebalance_policy is not None and shard_profiles:
            self._maybe_rebalance(handle)
        payload_list = result.payload if isinstance(result.payload, list) else None
        for i, request in enumerate(requests):
            payload_i = payload_list[i] if payload_list is not None else None
            metadata = request.future.metadata
            metadata.dispatched = now
            metadata.started = start
            metadata.completed = completed
            metadata.batch_size = len(requests)
            metadata.profile = result.profile
            if request.trace is not None:
                root = request.trace
                root.child("queue_wait", start=request.arrival,
                           duration=now - request.arrival)
                batch_span = root.child("batch", start=start, duration=service,
                                        batch_size=len(requests))
                if result.trace is not None:
                    # The execution subtree is on the search's own 0-based
                    # timeline and shared by every rider: shift a copy
                    # onto absolute time under this request's batch span.
                    batch_span.children.append(result.trace.copy().shift(start))
                root.duration = completed - root.start
                metadata.trace = root
                self.tracer.record(root)
            request.future._resolve(result.results[i], payload_i)
            self.metrics.record_completion(completed - request.arrival, now - request.arrival, completed)
            if self.cache is not None and request.cache_key is not None:
                self.cache.put(request.cache_key, (result.results[i], payload_i))

    # ------------------------------------------------------------------
    # self-healing (repro.replica)

    def _heal_after_failover(self, handle, failovers) -> None:
        """Count a batch's failovers; re-replicate after permanent loss.

        Transient outages only feed the ``replica_failovers`` counter —
        the device will come back. A *permanent* failure leaves every
        group that used the device under-replicated, so the handle
        re-places those copies on live devices immediately (the copy is
        an ``index_transfer``, charged on the simulated timeline).
        """
        self.metrics.replica_failovers += len(failovers)
        re_replicate = getattr(handle, "re_replicate", None)
        if re_replicate is None or not any(ev.permanent for ev in failovers):
            return
        placed = re_replicate()
        if placed:
            self.metrics.replica_re_replications += placed
            logger.debug(
                "re-replicate index=%s placed=%d", handle.name, placed
            )
            if self.tracer is not None:
                self.tracer.record(
                    Span(
                        "re_replicate", start=self.clock.now(),
                        index=handle.name, placed=placed,
                    )
                )

    def _maybe_rebalance(self, handle) -> None:
        """Fire the rebalance policy when rolling imbalance crosses it."""
        if not self.rebalance_policy.should_rebalance(self.metrics):
            return
        rebalance = getattr(handle, "rebalance", None)
        if rebalance is None:
            return
        imbalance = self.metrics.rolling_shard_imbalance
        moved = rebalance(self.metrics.rolling_shard_seconds())
        self.rebalance_policy.note_fired(self.metrics)
        if not moved:
            return
        self.metrics.replica_rebalances += 1
        # The window measured the *old* cuts; post-move skew must be
        # re-observed from scratch, and so must per-device load.
        self.metrics.reset_rolling_shards()
        self.session.device_load.reset()
        logger.debug(
            "rebalance index=%s rolling_imbalance=%.3f", handle.name, imbalance
        )
        if self.tracer is not None:
            self.tracer.record(
                Span(
                    "rebalance", start=self.clock.now(),
                    index=handle.name, rolling_imbalance=round(imbalance, 4),
                )
            )

    # ------------------------------------------------------------------
    # observability

    def snapshot(self) -> dict:
        """Metrics + queue/cache/device state as one deterministic dict."""
        snap = self.metrics.snapshot()
        snap["queue_depth"] = self.scheduler.depth
        snap["queue_depths"] = self.scheduler.depths()
        snap["policy"] = self.scheduler.policy.kind
        snap["device_busy_until"] = self._device_free
        snap["closed"] = self._closed
        snap["cache"] = self.cache.stats() if self.cache is not None else None
        snap["traces"] = self.tracer.total_traces if self.tracer is not None else 0
        return snap
