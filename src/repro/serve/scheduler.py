"""Dynamic micro-batching: drain request queues into coalesced batches.

GENIE's match kernel amortizes beautifully over large query batches
(Fig. 9 / Fig. 11; PR 1's vectorized pipeline) — but an online request
stream arrives one query at a time. The scheduler is the layer that turns
the stream back into batches:

* ``fifo`` — the baseline: every request is its own batch, served in
  global arrival order. One kernel launch per request; the per-launch
  overhead the paper's batching amortizes is paid in full.
* ``micro`` — dynamic micro-batching: per-index queues drain into
  coalesced :meth:`~repro.api.session.IndexHandle.search` calls when a
  queue reaches ``max_batch`` requests or its oldest request has waited
  ``max_wait`` simulated seconds, whichever is first. Draining is fair
  round-robin across indexes, so one hot index cannot starve a session's
  other residents.

Requests in one index's queue only coalesce when they share a *lane* —
the ``(k, options, route, plan)`` signature a single ``search()`` call
can serve, where ``route``/``plan`` are the query-planner directives
(:mod:`repro.plan`): a coalesced batch compiles to exactly one plan, so
requests forcing different strategies never ride together. The drain
takes the head request's lane and gathers up to ``max_batch`` compatible
requests from the queue, preserving arrival order within the lane and
leaving other lanes queued.

The scheduler never looks at a wall clock: readiness is evaluated against
the caller-supplied virtual ``now`` (see :mod:`repro.serve.clock`), which
keeps every batching decision deterministic.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigError

logger = logging.getLogger("repro.serve")

#: Policy kinds understood by the scheduler.
POLICY_KINDS = ("fifo", "micro")


@dataclass(frozen=True)
class BatchPolicy:
    """How queued requests become batches.

    Attributes:
        kind: ``"fifo"`` (single-request batches, global arrival order) or
            ``"micro"`` (dynamic micro-batching).
        max_batch: Largest coalesced batch (``micro`` only).
        max_wait: Longest simulated time a request may sit queued before
            its batch is dispatched anyway (``micro`` only).
    """

    kind: str = "micro"
    max_batch: int = 32
    max_wait: float = 1e-3

    def __post_init__(self):
        if self.kind not in POLICY_KINDS:
            raise ConfigError(f"unknown policy kind {self.kind!r}; expected {POLICY_KINDS}")
        if int(self.max_batch) < 1:
            raise ConfigError("max_batch must be >= 1")
        if float(self.max_wait) < 0:
            raise ConfigError("max_wait must be >= 0")

    @classmethod
    def fifo(cls) -> "BatchPolicy":
        """The single-request baseline policy."""
        return cls(kind="fifo", max_batch=1, max_wait=0.0)

    @classmethod
    def micro(cls, max_batch: int = 32, max_wait: float = 1e-3) -> "BatchPolicy":
        """Dynamic micro-batching under a size/wait envelope."""
        return cls(kind="micro", max_batch=max_batch, max_wait=max_wait)


class MicroBatchScheduler:
    """Per-index request queues drained under a :class:`BatchPolicy`.

    Queued items are duck-typed: the scheduler needs ``item.arrival``
    (simulated submit time), ``item.seq`` (global admission order, the
    deterministic tie-break) and ``item.lane`` (hashable coalescing
    signature — requests only share a batch when lanes match).
    """

    def __init__(self, policy: BatchPolicy | None = None):
        self.policy = policy if policy is not None else BatchPolicy()
        self._queues: dict[str, deque] = {}
        self._rotation: deque[str] = deque()

    # ------------------------------------------------------------------
    # queue state

    @property
    def depth(self) -> int:
        """Total queued requests across all indexes."""
        return sum(len(q) for q in self._queues.values())

    def depths(self) -> dict[str, int]:
        """Queued requests per index (nonempty queues only)."""
        return {name: len(q) for name, q in self._queues.items() if q}

    def enqueue(self, index: str, request) -> None:
        """Queue one request for ``index``."""
        queue = self._queues.get(index)
        if queue is None:
            queue = self._queues[index] = deque()
        if index not in self._rotation:
            self._rotation.append(index)
        queue.append(request)

    def next_deadline(self) -> float | None:
        """Earliest time a queued request *must* be dispatched, or ``None``.

        Under ``micro`` this is the oldest head's ``arrival + max_wait``;
        under ``fifo`` a queued request is already due, so its arrival is
        returned. Drivers advance the virtual clock to this time to fire
        wait-triggered batches in order.
        """
        deadlines = []
        for queue in self._queues.values():
            if not queue:
                continue
            head = queue[0]
            if self.policy.kind == "fifo":
                deadlines.append(head.arrival)
            else:
                deadlines.append(head.arrival + self.policy.max_wait)
        return min(deadlines) if deadlines else None

    # ------------------------------------------------------------------
    # draining

    def pop_ready(self, now: float) -> list[tuple[str, list]]:
        """Drain every batch that is ready at simulated time ``now``.

        Returns ``(index, requests)`` pairs in dispatch order: strict
        global arrival order for ``fifo``; fair round-robin across indexes
        for ``micro`` (one batch per ready index per sweep, sweeping until
        nothing is ready).
        """
        if self.policy.kind == "fifo":
            return self._pop_fifo(drain=False)
        return self._pop_micro(now, drain=False)

    def pop_all(self, now: float = 0.0) -> list[tuple[str, list]]:
        """Drain everything queued, ignoring readiness (graceful shutdown).

        Batches still respect ``max_batch`` and lane compatibility; the
        dispatch order matches :meth:`pop_ready`'s fairness rules.
        """
        if self.policy.kind == "fifo":
            return self._pop_fifo(drain=True)
        return self._pop_micro(now, drain=True)

    def _pop_fifo(self, drain: bool) -> list[tuple[str, list]]:
        # fifo requests are always due; ``drain`` changes nothing beyond
        # making the symmetry with the micro path explicit.
        del drain
        batches: list[tuple[str, list]] = []
        while True:
            best_name = None
            best_key = None
            for name, queue in self._queues.items():
                if not queue:
                    continue
                key = (queue[0].arrival, queue[0].seq)
                if best_key is None or key < best_key:
                    best_key = key
                    best_name = name
            if best_name is None:
                return batches
            batches.append((best_name, [self._queues[best_name].popleft()]))
            logger.debug("dispatch index=%s batch=1 trigger=fifo", best_name)

    def _pop_micro(self, now: float, drain: bool) -> list[tuple[str, list]]:
        batches: list[tuple[str, list]] = []
        progressed = True
        while progressed:
            progressed = False
            for _ in range(len(self._rotation)):
                name = self._rotation[0]
                self._rotation.rotate(-1)
                queue = self._queues.get(name)
                if not queue:
                    continue
                if not (drain or self._ready(queue, now)):
                    continue
                if drain:
                    trigger = "drain"
                elif len(queue) >= self.policy.max_batch:
                    trigger = "size"
                else:
                    trigger = "wait"
                batch = self._gather(queue)
                batches.append((name, batch))
                progressed = True
                logger.debug(
                    "dispatch index=%s batch=%d trigger=%s queued=%d",
                    name, len(batch), trigger, len(queue),
                )
        return batches

    def _ready(self, queue: deque, now: float) -> bool:
        # The wait test must be the same float expression next_deadline()
        # reports (``arrival + max_wait``), or a driver advancing exactly
        # to the deadline could find the queue not ready and spin.
        return (
            len(queue) >= self.policy.max_batch
            or now >= queue[0].arrival + self.policy.max_wait
        )

    def _gather(self, queue: deque) -> list:
        """Take the head's lane-compatible prefix, up to ``max_batch``.

        Requests in other lanes keep their positions (and their arrival
        order within each lane); they form later batches.
        """
        lane = queue[0].lane
        batch = []
        kept = []
        while queue and len(batch) < self.policy.max_batch:
            request = queue.popleft()
            if request.lane == lane:
                batch.append(request)
            else:
                kept.append(request)
        for request in reversed(kept):
            queue.appendleft(request)
        return batch
