"""LSM-style mutable index segments over the static GENIE base.

Online ``insert``/``delete``/``update`` on an
:class:`~repro.api.session.IndexHandle` land in small mutable
:class:`DeltaSegment` runs instead of refitting; searches compose the
CSR base with the deltas exactly (plan: ``Scan(base) + DeltaScan`` under
one merge, tombstones filtered before top-k), and a threshold-driven
:meth:`~repro.stream.state.StreamState.compact` rewrites everything back
into a fresh base. See :mod:`repro.stream.state` for the orchestration
and :mod:`repro.stream.manifest` for the versioning contract.
"""

from repro.stream.delta import DeltaSegment, StreamConfig
from repro.stream.manifest import SegmentManifest
from repro.stream.state import StreamState

__all__ = ["DeltaSegment", "SegmentManifest", "StreamConfig", "StreamState"]
