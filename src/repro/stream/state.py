"""Per-handle stream state: mutations in, scan-ready delta parts out.

:class:`StreamState` is what an :class:`~repro.api.session.IndexHandle`
lazily attaches on its first mutation. It owns the
:class:`~repro.stream.manifest.SegmentManifest`, applies
``insert``/``delete``/``update`` under the placement invariant (every
live id in exactly one scan source), materializes each delta segment as
a device-swappable ``_IndexPart`` (small inverted index + engine, cached
per segment version so untouched sealed segments never rebuild), and
runs threshold-driven compaction back into a fresh CSR base.

Cost accounting mirrors the batch path: building a segment's scan index
charges the host's ``index_build`` stage, delta parts attach through the
session's residency machinery (they pay ``index_transfer`` and count
against the memory budget like any base part), and the executor charges
the tombstone filter as host binary-search work.
"""

from __future__ import annotations

import logging

import numpy as np

from repro.core.inverted_index import InvertedIndex
from repro.core.types import ID_DTYPE, Corpus
from repro.errors import QueryError
from repro.gpu.stats import timings_delta
from repro.obs.trace import Span
from repro.stream.delta import DeltaSegment, StreamConfig
from repro.stream.manifest import SegmentManifest

logger = logging.getLogger("repro.stream")


class StreamState:
    """Mutable-segment machinery for one fitted index handle.

    Args:
        handle: The owning (already fitted) session index handle.
        config: Seal/compaction thresholds; defaults when omitted.
    """

    def __init__(self, handle, config: StreamConfig | None = None):
        self.handle = handle
        self.config = config if config is not None else StreamConfig()
        base_objects = sum(len(part.corpus) for part in handle._parts)
        self.manifest = SegmentManifest(base_objects)
        # id(segment) -> (version, _IndexPart): sealed segments keep their
        # scan index across mutations elsewhere; only edited segments
        # rebuild (and re-pay index_build) on the next search.
        self._part_cache: dict[int, tuple[int, object]] = {}
        # id(segment) -> (version, keyword_array, posting_counts): the
        # cost model's per-segment features, no index build needed.
        self._feature_cache: dict[int, tuple[int, np.ndarray, np.ndarray]] = {}
        self._tombstone_array: np.ndarray | None = None

    # ------------------------------------------------------------------
    # introspection

    @property
    def dirty(self) -> bool:
        """Whether searches must run the base+delta composition."""
        return self.manifest.dirty

    # ------------------------------------------------------------------
    # mutations

    def _encode(self, objects) -> Corpus:
        corpus = self.handle.model.encode_increment(objects)
        if not isinstance(corpus, Corpus):
            corpus = Corpus(corpus)
        return corpus

    def _active_segment(self) -> DeltaSegment:
        segments = self.manifest.segments
        if not segments or segments[-1].sealed:
            segments.append(DeltaSegment())
        return segments[-1]

    def insert(self, objects) -> np.ndarray:
        """Append new objects; returns their assigned global ids."""
        objects = list(objects)
        if not objects:
            raise QueryError("empty insert batch")
        corpus = self._encode(objects)
        manifest = self.manifest
        gids = np.arange(
            manifest.next_gid, manifest.next_gid + len(corpus), dtype=ID_DTYPE
        )
        for gid, keywords in zip(gids, corpus.keyword_arrays):
            segment = self._active_segment()
            segment.add(int(gid), keywords)
            if len(segment) >= self.config.seal_objects:
                segment.sealed = True
        manifest.next_gid += len(corpus)
        self._mutated()
        return gids

    def delete(self, ids) -> None:
        """Remove live objects by global id (all-or-nothing validation)."""
        ids = [int(i) for i in np.atleast_1d(np.asarray(ids, dtype=ID_DTYPE))]
        if not ids:
            raise QueryError("empty delete batch")
        for gid in ids:
            if not self._is_live(gid):
                raise QueryError(f"cannot delete id {gid}: not a live object")
        if len(set(ids)) != len(ids):
            raise QueryError("duplicate ids in delete batch")
        manifest = self.manifest
        for gid in ids:
            for segment in manifest.segments:
                if segment.remove(gid):
                    break
            else:
                manifest.tombstones.add(gid)
        self._mutated()

    def update(self, gid: int, obj) -> None:
        """Replace one live object's keywords, keeping its global id."""
        gid = int(gid)
        if not self._is_live(gid):
            raise QueryError(f"cannot update id {gid}: not a live object")
        keywords = self._encode([obj]).keyword_arrays[0]
        manifest = self.manifest
        for segment in manifest.segments:
            if gid in segment:
                segment.replace(gid, keywords)
                break
        else:
            # A base object cannot change in place: tombstone the base
            # copy and insert the replacement — same id — as a delta.
            manifest.tombstones.add(gid)
            segment = self._active_segment()
            segment.add(gid, keywords)
            if len(segment) >= self.config.seal_objects:
                segment.sealed = True
        self._mutated()

    def _is_live(self, gid: int) -> bool:
        manifest = self.manifest
        if any(gid in segment for segment in manifest.segments):
            return True
        return 0 <= gid < manifest.base_objects and gid not in manifest.tombstones

    def _mutated(self) -> None:
        manifest = self.manifest
        manifest.mutation_epoch += 1
        manifest.segments = [s for s in manifest.segments if len(s)]
        self._tombstone_array = None
        # A mutation stales this index's cached results *and* plans (the
        # plan must grow/update its DeltaScan); other indexes' caches are
        # untouched — that is the whole point of per-index hooks.
        self.handle.session._notify_invalidated(self.handle.name)
        if self.config.auto_compact:
            self.maybe_compact()

    # ------------------------------------------------------------------
    # scan-time materialization

    def tombstone_array(self) -> np.ndarray:
        """Sorted tombstoned base ids (the executor's filter probe table)."""
        if self._tombstone_array is None:
            self._tombstone_array = np.asarray(
                sorted(self.manifest.tombstones), dtype=ID_DTYPE
            )
        return self._tombstone_array

    def delta_parts(self) -> list:
        """One ``_IndexPart`` per live segment, cache-fresh.

        Segments edited since their last build are re-indexed here (the
        host pays ``index_build`` for exactly the rebuilt segments);
        stale cached parts are evicted before being dropped so the
        session's residency accounting never leaks device bytes.
        """
        from repro.api.session import _IndexPart
        from repro.core.engine import GenieEngine

        handle = self.handle
        session = handle.session
        parts = []
        live = set()
        base_positions = len(handle._parts)
        for i, segment in enumerate(self.manifest.segments):
            live.add(id(segment))
            cached = self._part_cache.get(id(segment))
            if cached is not None and cached[0] == segment.version:
                parts.append(cached[1])
                continue
            if cached is not None:
                self._evict(cached[1])
            gids = np.asarray(segment.ids(), dtype=ID_DTYPE)
            corpus = Corpus([segment.keywords(int(g)) for g in gids])
            index = InvertedIndex.build(corpus, load_balance=handle.config.load_balance)
            session.host.charge_ops(index.build_ops, stage="index_build")
            engine = GenieEngine(
                device=session.device, host=session.host, config=handle.config
            )
            part = _IndexPart(
                handle, base_positions + i, engine, corpus, index,
                offset=0, global_ids=gids,
            )
            self._part_cache[id(segment)] = (segment.version, part)
            parts.append(part)
        self._prune(self._part_cache, live, evict=True)
        return parts

    def delta_features(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per live segment, ``(sorted keywords, posting counts)``.

        The planner prices the DeltaScan from these without building any
        index — ``explain()`` stays free of ``index_build`` charges.
        """
        features = []
        live = set()
        for segment in self.manifest.segments:
            live.add(id(segment))
            cached = self._feature_cache.get(id(segment))
            if cached is None or cached[0] != segment.version:
                arrays = [segment.keywords(gid) for gid in segment.ids()]
                flat = (
                    np.concatenate(arrays)
                    if arrays
                    else np.empty(0, dtype=ID_DTYPE)
                )
                keywords, counts = np.unique(flat, return_counts=True)
                cached = (segment.version, keywords, counts.astype(np.float64))
                self._feature_cache[id(segment)] = cached
            features.append((cached[1], cached[2]))
        self._prune(self._feature_cache, live, evict=False)
        return features

    def attached_parts(self) -> list:
        """Every cached delta part (for eviction / byte accounting)."""
        return [part for _, part in self._part_cache.values()]

    def _evict(self, part) -> None:
        if part.resident:
            self.handle.session._evict_part(part)

    def _prune(self, cache: dict, live: set, evict: bool) -> None:
        for key in [k for k in cache if k not in live]:
            if evict:
                self._evict(cache[key][1])
            del cache[key]

    def release(self) -> None:
        """Evict and forget every cached delta part and feature table."""
        for part in self.attached_parts():
            self._evict(part)
        self._part_cache.clear()
        self._feature_cache.clear()

    # ------------------------------------------------------------------
    # compaction

    def full_corpus(self) -> Corpus:
        """The logical corpus a from-scratch refit would index now.

        One slot per assigned global id (``0 .. next_gid - 1``); dead
        slots — tombstoned base ids without a live delta replacement,
        and deleted delta inserts — hold empty keyword sets. Empty
        objects never match (zero counts never enter a top-k), so
        indexing them changes no result while keeping every surviving id
        stable across compactions.
        """
        manifest = self.manifest
        slots: list = [None] * manifest.next_gid
        for part in self.handle._parts:
            arrays = part.corpus.keyword_arrays
            if part.global_ids is not None:
                for local, gid in enumerate(part.global_ids):
                    slots[int(gid)] = arrays[local]
            else:
                for local, keywords in enumerate(arrays):
                    slots[part.offset + local] = keywords
        empty = np.empty(0, dtype=ID_DTYPE)
        for gid in manifest.tombstones:
            slots[gid] = empty
        for segment in manifest.segments:
            for gid in segment.ids():
                slots[gid] = segment.keywords(gid)
        for gid in range(manifest.base_objects, manifest.next_gid):
            if slots[gid] is None:
                slots[gid] = empty  # deleted delta insert: dead slot
        return Corpus(slots)

    def maybe_compact(self) -> bool:
        """Compact when delta pressure crosses the configured ratio."""
        manifest = self.manifest
        if not manifest.segments and not manifest.tombstones:
            return False
        base_entries = sum(
            int(part.corpus.total_entries) for part in self.handle._parts
        )
        ratio = self.config.compact_ratio
        if (
            manifest.delta_postings > ratio * max(1, base_entries)
            or len(manifest.tombstones) > ratio * max(1, manifest.base_objects)
        ):
            return self.compact()
        return False

    def compact(self) -> bool:
        """Rewrite base + deltas + tombstones into a fresh CSR base.

        The new base is built host-side first, then swapped in under the
        session's residency budget (old parts and delta parts evicted,
        new parts attached — atomic from any observer's point of view:
        no search runs mid-swap in the synchronous session). Results are
        unchanged by construction, so cached query *results* stay valid;
        the plan cache alone is invalidated (the shard keyword tables
        the planner routes against did change).

        Returns:
            Whether anything was compacted (``False`` on a clean index).
        """
        if not self.dirty:
            return False
        session = self.handle.session
        manifest = self.manifest
        folded_segments = len(manifest.segments)
        folded_postings = int(manifest.delta_postings)
        folded_tombstones = len(manifest.tombstones)
        host_before = session.host.timings.copy()
        corpus = self.full_corpus()
        self.release()
        self.handle._rebuild_base(corpus)
        manifest.segments = []
        manifest.tombstones = set()
        manifest.base_objects = manifest.next_gid
        manifest.base_epoch += 1
        manifest.compactions += 1
        self._tombstone_array = None
        cache = session.plan_cache
        if cache is not None:
            cache.invalidate(self.handle.name)
        spent = timings_delta(host_before, session.host.timings).total
        logger.debug(
            "compact index=%s segments=%d postings=%d tombstones=%d "
            "base_epoch=%d seconds=%.6g",
            self.handle.name, folded_segments, folded_postings,
            folded_tombstones, manifest.base_epoch, spent,
        )
        tracer = getattr(session, "tracer", None)
        if tracer is not None:
            start = tracer.clock.now() if tracer.clock is not None else 0.0
            tracer.record(Span(
                "compaction", start=start, duration=spent,
                index=self.handle.name, segments=folded_segments,
                postings=folded_postings, tombstones=folded_tombstones,
                base_epoch=manifest.base_epoch,
            ))
        return True
