"""Mutable delta segments: the LSM-style write path for GENIE indexes.

GENIE's inverted index is fit-once — the CSR List Array is immutable by
construction (Section III). Production corpora are not. This module adds
the smallest structure that absorbs online mutations without refitting:

* a :class:`DeltaSegment` — an append-friendly per-object posting store.
  Inserts land in the *active* (unsealed) segment; once it holds
  ``seal_objects`` objects it seals and a fresh segment opens, exactly
  like an LSM memtable rotating into an immutable run. Deletes and
  updates of a segment-resident object edit the segment *in place*
  (sealing only gates where new inserts go — a sealed segment is small
  enough that rewriting its scan-time index stays cheap).
* a :class:`StreamConfig` — the seal and compaction thresholds.

The base index's own objects cannot be edited in place; deleting one
adds its global id to the manifest's *tombstone* set instead (see
:mod:`repro.stream.manifest`), and updating one tombstones the base copy
and inserts the live replacement — under the **same** global id — into
the active segment. Query-time composition (base scan + delta scans +
tombstone filter, merged exactly) lives in :mod:`repro.plan.executor`;
rewriting everything back into a fresh CSR base is
:meth:`repro.stream.state.StreamState.compact`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class StreamConfig:
    """Tuning knobs for one handle's mutable-segment machinery.

    Attributes:
        seal_objects: Objects after which the active segment seals and a
            fresh one opens. Smaller segments keep per-mutation index
            rebuilds cheap; larger ones keep the query-time merge fan-in
            low.
        compact_ratio: Compaction triggers when the delta postings exceed
            this fraction of the base index's postings, or the tombstones
            this fraction of the base objects. The classic LSM trade: a
            low ratio keeps scans near base-only speed but compacts (and
            pays a full rebuild) often.
        auto_compact: Run the threshold check after every mutation.
            ``False`` leaves compaction entirely to explicit
            :meth:`~repro.api.session.IndexHandle.compact` calls.
    """

    seal_objects: int = 512
    compact_ratio: float = 0.25
    auto_compact: bool = True

    def __post_init__(self):
        if int(self.seal_objects) < 1:
            raise ConfigError("seal_objects must be >= 1")
        if not float(self.compact_ratio) > 0.0:
            raise ConfigError("compact_ratio must be positive")


class DeltaSegment:
    """One mutable run of objects: global id -> keyword array.

    The segment is the unit of scan-time indexing (one small inverted
    index per segment) and of feature extraction (one keyword/postings
    table for the cost model), so both caches key on :attr:`version` —
    every in-place edit bumps it.

    Attributes:
        sealed: Whether new inserts may still land here. Sealing is
            advisory for inserts only; removes/replaces stay legal.
        version: Monotonic edit counter for downstream caches.
    """

    __slots__ = ("_objects", "_postings", "sealed", "version")

    def __init__(self):
        self._objects: dict[int, np.ndarray] = {}
        self._postings = 0
        self.sealed = False
        self.version = 0

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, gid: int) -> bool:
        return int(gid) in self._objects

    @property
    def postings(self) -> int:
        """Total (object, keyword) pairs held — the segment's index size."""
        return self._postings

    def ids(self) -> list[int]:
        """Live global ids, ascending (the segment's gather map order)."""
        return sorted(self._objects)

    def keywords(self, gid: int) -> np.ndarray:
        """The stored keyword array of ``gid`` (must be present)."""
        return self._objects[int(gid)]

    def add(self, gid: int, keywords: np.ndarray) -> None:
        """Insert a new object; the id must not already live here."""
        gid = int(gid)
        if gid in self._objects:
            raise ConfigError(f"segment already holds object {gid}")
        self._objects[gid] = keywords
        self._postings += int(keywords.size)
        self.version += 1

    def remove(self, gid: int) -> bool:
        """Drop ``gid`` if present; returns whether it was here."""
        keywords = self._objects.pop(int(gid), None)
        if keywords is None:
            return False
        self._postings -= int(keywords.size)
        self.version += 1
        return True

    def replace(self, gid: int, keywords: np.ndarray) -> None:
        """Swap the keywords of a resident object in place."""
        gid = int(gid)
        old = self._objects[gid]
        self._objects[gid] = keywords
        self._postings += int(keywords.size) - int(old.size)
        self.version += 1
