"""The segment manifest: one handle's mutable-index version vector.

A :class:`SegmentManifest` describes everything a search over a mutated
index must compose: the (immutable) CSR base, the live delta segments,
and the tombstoned base ids — plus the epochs that version them.
``mutation_epoch`` is deliberately separate from the handle's
``fit_epoch``: a refit replaces the *model* state (encoders, vocabulary)
and must flush every downstream cache, while a mutation only changes
*which objects* answer — the serve layer drops that index's stale
results and plans, nothing else. ``base_epoch`` counts compactions,
which rewrite the base without changing any result.

Placement invariant (enforced by :class:`~repro.stream.state.StreamState`):
every live global id lives in exactly one scan source — the base (when
not tombstoned) or one delta segment. The only id that appears twice is
an *updated base object*: its base copy is tombstoned (dead) and its
live replacement sits in a segment under the same id, which is why the
executor filters tombstones against base scan results only.
"""

from __future__ import annotations

from repro.stream.delta import DeltaSegment


class SegmentManifest:
    """Versioned (base, deltas, tombstones) state of one mutable index.

    Attributes:
        base_objects: Object slots covered by the current CSR base
            (global ids ``0 .. base_objects - 1``). Grows to
            ``next_gid`` at each compaction; deleted slots stay in the
            id space forever as empty objects, keeping every assigned id
            stable.
        next_gid: The next global id an insert will take; also the
            logical corpus size (``ids < next_gid``).
        segments: Live delta segments, oldest first; the last unsealed
            one (if any) is the active insert target.
        tombstones: Base global ids whose base copy is dead.
        mutation_epoch: Bumped by every insert/delete/update — the
            serve-layer invalidation version.
        base_epoch: Bumped by every compaction (the plan cache keys on
            it: a compaction changes the shard keyword tables).
        compactions: Lifetime compaction count (a counter, not a
            version: surfaces in ``ServeMetrics.snapshot()``).
    """

    def __init__(self, base_objects: int):
        self.base_objects = int(base_objects)
        self.next_gid = int(base_objects)
        self.segments: list[DeltaSegment] = []
        self.tombstones: set[int] = set()
        self.mutation_epoch = 0
        self.base_epoch = 0
        self.compactions = 0

    @property
    def delta_objects(self) -> int:
        """Live objects held in delta segments."""
        return sum(len(segment) for segment in self.segments)

    @property
    def delta_postings(self) -> int:
        """Total (object, keyword) pairs across the delta segments.

        The compaction trigger's pressure gauge, and a serve-layer
        counter: this is how much extra scan work every query pays until
        the next compaction folds it into the base.
        """
        return sum(segment.postings for segment in self.segments)

    @property
    def dirty(self) -> bool:
        """Whether a search must compose base + deltas + tombstones.

        True whenever the base alone cannot answer: live delta objects,
        tombstoned base ids, or dead id slots past the base (an inserted
        object that was deleted again still occupies its slot — a
        from-scratch refit of the final corpus would index the empty
        slot, so thresholds must be computed over ``next_gid`` objects).
        """
        return (
            bool(self.segments)
            or bool(self.tombstones)
            or self.next_gid != self.base_objects
        )

    def describe(self) -> dict:
        """Deterministic summary dict (tests and ``snapshot()`` surfaces)."""
        return {
            "base_objects": self.base_objects,
            "next_gid": self.next_gid,
            "segments": len(self.segments),
            "delta_objects": self.delta_objects,
            "delta_postings": self.delta_postings,
            "tombstones": len(self.tombstones),
            "mutation_epoch": self.mutation_epoch,
            "base_epoch": self.base_epoch,
            "compactions": self.compactions,
        }

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.describe().items())
        return f"SegmentManifest({inner})"
