"""GENIE reproduction: generic inverted-index similarity search on a simulated GPU.

Reproduces "A Generic Inverted Index Framework for Similarity Search on the
GPU" (ICDE 2018). Subpackages:

* :mod:`repro.api` — the unified session layer (match models, multi-index
  device residency, one search surface per modality),
* :mod:`repro.serve` — online serving (micro-batching, admission control,
  caching, metrics) over a session,
* :mod:`repro.cluster` — sharded execution across N simulated devices
  (range/hash partitioning, concurrent shard scans, exact merge),
* :mod:`repro.plan` — the query planner every search lowers through
  (explainable plan IR, shard pruning, two-round TPUT merge, elision),
* :mod:`repro.obs` — observability (deterministic request traces on the
  virtual clock, typed metric primitives, cost-drift tracking),
* :mod:`repro.gpu` — the simulated GPU/CPU substrate,
* :mod:`repro.core` — match-count model, inverted index, c-PQ, engine,
* :mod:`repro.lsh` — LSH families, re-hashing, tau-ANN search,
* :mod:`repro.sa` — shotgun-and-assembly front-ends (sequences, documents,
  relational tables),
* :mod:`repro.baselines` — the paper's competitor systems,
* :mod:`repro.datasets` — synthetic stand-ins for the paper's datasets,
* :mod:`repro.experiments` — the figure/table reproduction harness.
"""

__version__ = "1.2.0"

import logging as _logging

# Library logging convention: everything logs under the "repro" root
# logger, silent by default. Applications opt in with e.g.
# ``logging.getLogger("repro").setLevel(logging.DEBUG)`` plus a handler.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.api import GenieSession, IndexHandle, MatchModel, SearchResult
from repro.core import Corpus, GenieConfig, GenieEngine, MultiLoadGenie, Query, TopKResult
from repro.gpu import Device, HostCpu

__all__ = [
    "Corpus",
    "Query",
    "TopKResult",
    "GenieEngine",
    "GenieConfig",
    "GenieSession",
    "IndexHandle",
    "SearchResult",
    "MatchModel",
    "MultiLoadGenie",
    "Device",
    "HostCpu",
    "__version__",
]
