"""Exception hierarchy for the GENIE reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch one base class. Subclasses mirror the major subsystems:
the simulated GPU device, index construction, and query execution.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GpuError(ReproError):
    """Base class for simulated-GPU failures."""


class GpuOutOfMemoryError(GpuError):
    """Raised when an allocation would exceed the device's global memory."""

    def __init__(self, requested, used, capacity):
        self.requested = int(requested)
        self.used = int(used)
        self.capacity = int(capacity)
        super().__init__(
            f"cannot allocate {self.requested} bytes: "
            f"{self.used}/{self.capacity} bytes already in use"
        )


class GpuAllocationError(GpuError):
    """Raised on invalid allocation handling (double free, stale handle)."""


class IndexError_(ReproError):
    """Raised when an inverted index is built from or queried with bad input."""


class QueryError(ReproError):
    """Raised when a query is malformed for the index it is issued against."""


class ConfigError(ReproError):
    """Raised when an engine or structure is configured inconsistently."""


class InvariantError(ReproError):
    """Raised when a structure's internal invariant is found violated.

    Unlike ``assert`` (stripped under ``python -O``), this check always
    runs, and unlike a generic crash it is catchable as a
    :class:`ReproError` — a caller probing a structure's health gets a
    taxonomy error, not an interpreter artifact.
    """


class AvailabilityError(ReproError):
    """Raised when every replica of a shard's group is unavailable.

    A shard scan that hits a failed device fails over to a surviving
    replica (see :mod:`repro.replica`); only when the *whole* replica
    group is down does the search fail — with this error, never a hang
    or a silently partial result. Carries the index name, the shard
    position, and the pool positions of the devices that were tried.
    """

    def __init__(self, index, shard, devices):
        self.index = str(index)
        self.shard = int(shard)
        self.devices = tuple(int(d) for d in devices)
        super().__init__(
            f"shard {self.shard} of index {self.index!r} has no live replica "
            f"(pool devices {list(self.devices)} are down)"
        )


class AdmissionError(ReproError):
    """Raised when a serving queue refuses a request (explicit backpressure).

    The online server never drops requests silently: when the bounded
    request queue is full, submission fails with this error so the caller
    can retry, shed load, or slow down.
    """

    def __init__(self, depth, limit):
        self.depth = int(depth)
        self.limit = int(limit)
        super().__init__(
            f"request queue is full ({self.depth}/{self.limit} pending); "
            f"retry later or raise max_queue_depth"
        )
