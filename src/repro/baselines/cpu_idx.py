"""CPU-Idx: a single-threaded CPU inverted index baseline (Section VI-A2).

Same inverted index as GENIE, but queries run sequentially on the host: an
array records each object's match count while postings are scanned, then a
partial quick-selection (the paper uses C++ STL ``partial_sort``-style
selection, Θ(n + k log n)) extracts the top-k.
"""

from __future__ import annotations

import numpy as np

from repro.core.inverted_index import InvertedIndex
from repro.core.selection import topk_from_counts
from repro.core.types import Corpus, Query, TopKResult
from repro.errors import QueryError
from repro.gpu.host import HostCpu
from repro.gpu.stats import StageTimings, timings_delta


class CpuIdx:
    """Sequential CPU inverted-index search.

    Args:
        host: Simulated host CPU to charge.
    """

    def __init__(self, host: HostCpu | None = None):
        self.host = host if host is not None else HostCpu()
        self.corpus: Corpus | None = None
        self.index: InvertedIndex | None = None
        self.last_profile: StageTimings | None = None

    def fit(self, corpus: Corpus) -> "CpuIdx":
        """Build the in-memory inverted index."""
        if not isinstance(corpus, Corpus):
            corpus = Corpus(corpus)
        self.corpus = corpus
        self.index = InvertedIndex.build(corpus)
        self.host.charge_ops(self.index.build_ops, stage="index_build")
        return self

    def query(self, queries: list[Query], k: int) -> list[TopKResult]:
        """Process queries one after another on one core."""
        if self.index is None:
            raise QueryError("CpuIdx must be fitted before querying")
        before = self.host.timings.copy()
        results = []
        n = len(self.corpus)
        for query in queries:
            spans = [s for item in query.items for s in self.index.spans_for_keywords(item)]
            ids = self.index.gather(spans)
            counts = np.bincount(ids, minlength=n).astype(np.int64)
            results.append(topk_from_counts(counts, k))
            # Postings scan + count array reset + partial selection.
            scan_ops = float(ids.size) * 3.0
            select_ops = float(n) + float(k) * np.log2(max(n, 2))
            self.host.charge_ops(scan_ops + select_ops, stage="match")
            self.host.charge_bytes(float(ids.size + n) * 4.0, stage="match")
        self.last_profile = timings_delta(before, self.host.timings)
        return results

