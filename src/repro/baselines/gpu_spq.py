"""GPU-SPQ: full-scan match-count + bucket k-selection (Section VI-A2).

The paper's strawman GPU competitor: compute match-count values between the
queries and *all* points by scanning the whole dataset into a per-query
count array, then extract the top-k with the SPQ bucket selection of
Appendix A. Two costs separate it from GENIE: every query pays a full
dataset scan, and selection is a multi-pass algorithm over ``n`` counts.
Its per-query memory (full Count Table + selection workspace) also caps the
batch size well below GENIE's.
"""

from __future__ import annotations

import numpy as np

from repro.core.count_table import count_table_batch_bytes
from repro.core.inverted_index import InvertedIndex
from repro.core.spq_select import spq_topk
from repro.core.types import Corpus, Query, TopKResult
from repro.errors import QueryError
from repro.gpu.device import Device
from repro.gpu.kernel import KernelLaunch, uniform_launch
from repro.gpu.stats import StageTimings, timings_delta

#: Objects assigned to one block of the full-scan kernel.
_OBJECTS_PER_BLOCK = 4096


class GpuSpq:
    """Full-scan GPU baseline with SPQ top-k selection.

    Args:
        device: Simulated GPU (shared with other systems under test).
        threads_per_block: Scan-kernel launch configuration.
    """

    def __init__(self, device: Device | None = None, threads_per_block: int = 256):
        self.device = device if device is not None else Device()
        self.threads_per_block = int(threads_per_block)
        self.corpus: Corpus | None = None
        self._index: InvertedIndex | None = None
        self._data_darray = None
        self.last_profile: StageTimings | None = None

    def fit(self, corpus: Corpus) -> "GpuSpq":
        """Load the raw dataset (signatures/keywords) into device memory."""
        if not isinstance(corpus, Corpus):
            corpus = Corpus(corpus)
        self.corpus = corpus
        # The functional counts reuse an inverted index (identical results);
        # the *charged* cost below is the full scan the real system performs.
        self._index = InvertedIndex.build(corpus)
        if self._data_darray is not None and self._data_darray.is_live:
            self._data_darray.free()
        flat = np.concatenate([arr for arr in corpus.keyword_arrays if arr.size]) if len(corpus) else np.empty(0)
        self._data_darray = self.device.to_device(
            flat.astype(np.int32), label="gpu_spq_data", stage="index_transfer"
        )
        return self

    def query(self, queries: list[Query], k: int) -> list[TopKResult]:
        """Scan-everything search; raises on unfitted state or OOM batches."""
        if self.corpus is None or self._index is None:
            raise QueryError("GpuSpq must be fitted before querying")
        queries = list(queries)
        if not queries:
            raise QueryError("empty query batch")

        before = self.device.timings.copy()
        batch_bytes = count_table_batch_bytes(len(self.corpus), len(queries))
        batch_alloc = self.device.memory.alloc(batch_bytes, label="spq_count_tables")
        try:
            results = self._run(queries, k)
        finally:
            self.device.memory.release(batch_alloc)
        self.last_profile = timings_delta(before, self.device.timings)
        return results

    def _run(self, queries: list[Query], k: int) -> list[TopKResult]:
        total_entries = self.corpus.total_entries
        results = []
        scan_items = 0
        select_scanned = 0
        for query in queries:
            spans = [s for item in query.items for s in self._index.spans_for_keywords(item)]
            ids = self._index.gather(spans)
            counts = np.bincount(ids, minlength=len(self.corpus)).astype(np.int64)
            result, trace = spq_topk(counts, k)
            results.append(result)
            scan_items += total_entries  # every query scans the whole dataset
            select_scanned += trace.elements_scanned

        scan_launch = uniform_launch(
            "spq_full_scan",
            scan_items,
            _OBJECTS_PER_BLOCK,
            threads_per_block=self.threads_per_block,
            cycles_per_item=2.0,
            bytes_read=float(scan_items) * 4.0,
            bytes_written=float(len(queries) * len(self.corpus)) * 4.0,
            atomic_ops=float(scan_items),
        )
        self.device.launch(scan_launch, stage="match")

        select_launch = KernelLaunch(
            name="spq_select",
            block_items=np.asarray([max(select_scanned // max(len(queries), 1), 1)] * len(queries)),
            threads_per_block=self.threads_per_block,
            cycles_per_item=3.0,
            bytes_read=float(select_scanned) * 8.0,
            bytes_written=float(select_scanned) * 8.0,
            atomic_ops=float(select_scanned),
        )
        self.device.launch(select_launch, stage="select")
        return results

