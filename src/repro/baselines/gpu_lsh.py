"""GPU-LSH: a bi-level LSH ANN baseline (Pan & Manocha), simulated.

The competitor the paper benchmarks against for high-dimensional ANN. Key
modeled properties, each of which the paper's experiments surface:

* *one thread per query* — running time is roughly flat in the number of
  queries until the device's thread capacity is reached (Fig. 9/11),
* *sort-based short-list selection* — each thread sorts its candidate
  union, the "k-selection bottleneck" c-PQ avoids (Section VI-B5),
* *constant-memory random vectors* — caps the number of hash functions on
  high-dimensional data (8 on OCR in the paper),
* *hash tables resident in global memory* — caps the dataset size
  (GPU-LSH could not index more than 1M OCR / 12M SIFT points).
"""

from __future__ import annotations

import numpy as np

from repro.core.types import TopKResult
from repro.errors import ConfigError, QueryError
from repro.gpu.device import Device
from repro.gpu.kernel import KernelLaunch
from repro.gpu.stats import StageTimings, timings_delta
from repro.lsh.e2lsh import E2Lsh

#: Device bytes per stored (bucket key, point id) table entry.
_TABLE_ENTRY_BYTES = 8

#: Unhidden memory-latency cycles per scattered candidate-vector element
#: (one thread per query leaves little warp-level latency hiding).
_SCATTER_STALL_CYCLES = 7.0


class GpuLsh:
    """Bi-level LSH k-NN search on the simulated GPU.

    Args:
        num_tables: Hash tables ``L`` (the paper tunes 700 on SIFT, 100 on
            OCR, to match GENIE's result quality).
        functions_per_table: Concatenated functions per table key ``j``
            (32 in the paper; constant memory caps it on high-dim data).
        width: E2LSH bucket width.
        p: lp norm (1 or 2).
        device: Simulated GPU.
        seed: RNG seed.
        early_stop_factor: A thread stops gathering candidates once it has
            ``early_stop_factor * k`` of them (the early-stop condition the
            paper blames for GPU-LSH's poor approximation ratio at small k,
            Fig. 14). ``None`` disables early stopping.
    """

    def __init__(
        self,
        num_tables: int,
        functions_per_table: int,
        width: float,
        p: int = 2,
        device: Device | None = None,
        seed: int = 0,
        early_stop_factor: int | None = 10,
    ):
        if num_tables < 1 or functions_per_table < 1:
            raise ConfigError("num_tables and functions_per_table must be >= 1")
        self.num_tables = int(num_tables)
        self.functions_per_table = int(functions_per_table)
        self.width = float(width)
        self.p = int(p)
        self.device = device if device is not None else Device()
        self.seed = int(seed)
        self.early_stop_factor = early_stop_factor
        self._families: list[E2Lsh] = []
        self._tables: list[dict] = []
        self._points: np.ndarray | None = None
        self._table_darray = None
        self.last_profile: StageTimings | None = None

    def fit(self, points: np.ndarray) -> "GpuLsh":
        """Hash all points into ``L`` tables and store them on the device.

        Raises:
            ConfigError: If the random vectors exceed constant memory.
            GpuOutOfMemoryError: If the tables exceed global memory.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        dim = points.shape[1]
        vector_bytes = self.functions_per_table * dim * 4
        if vector_bytes > self.device.spec.constant_mem_bytes:
            raise ConfigError(
                f"{self.functions_per_table} functions x {dim} dims need {vector_bytes} B "
                f"of constant memory (limit {self.device.spec.constant_mem_bytes} B)"
            )
        self._points = points
        self._families = [
            E2Lsh(self.functions_per_table, dim, self.width, p=self.p, seed=self.seed + t)
            for t in range(self.num_tables)
        ]
        self._tables = []
        for family in self._families:
            signatures = family.hash_points(points)
            table: dict[tuple, np.ndarray] = {}
            keys = list(map(tuple, signatures))
            buckets: dict[tuple, list[int]] = {}
            for i, key in enumerate(keys):
                buckets.setdefault(key, []).append(i)
            for key, ids in buckets.items():
                table[key] = np.asarray(ids, dtype=np.int64)
            self._tables.append(table)

        if self._table_darray is not None and self._table_darray.is_live:
            self._table_darray.free()
        table_bytes = self.num_tables * points.shape[0] * _TABLE_ENTRY_BYTES
        placeholder = np.zeros(table_bytes // 8, dtype=np.int64)
        self._table_darray = self.device.to_device(placeholder, label="gpu_lsh_tables", stage="index_transfer")
        return self

    def candidates_for(self, query_point: np.ndarray, k: int | None = None) -> np.ndarray:
        """Union of the query's buckets over all tables (with duplicates).

        With early stopping enabled and ``k`` given, tables stop being
        probed once ``early_stop_factor * k`` candidates are gathered.
        """
        budget = None
        if k is not None and self.early_stop_factor is not None:
            budget = self.early_stop_factor * int(k)
        gathered = []
        total = 0
        for family, table in zip(self._families, self._tables):
            key = tuple(family.hash_points(query_point[None, :])[0])
            bucket = table.get(key)
            if bucket is not None:
                gathered.append(bucket)
                total += bucket.size
            if budget is not None and total >= budget:
                break
        if not gathered:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(gathered)

    def query(self, query_points: np.ndarray, k: int) -> list[TopKResult]:
        """k-NN by candidate-union + per-thread sort.

        Returns ``TopKResult`` records whose ``counts`` field holds the
        number of tables that produced each returned candidate.
        """
        if self._points is None:
            raise QueryError("GpuLsh must be fitted before querying")
        query_points = np.atleast_2d(np.asarray(query_points, dtype=np.float64))
        before = self.device.timings.copy()

        results = []
        per_query_cycles = []
        scattered_bytes = 0.0
        for qp in query_points:
            raw = self.candidates_for(qp, k=k)
            # Early stop truncates in arrival order: the thread never sees
            # candidates beyond its budget, whatever their quality. This is
            # what degrades GPU-LSH's ratio at small k (Fig. 14).
            if k is not None and self.early_stop_factor is not None:
                raw = raw[: self.early_stop_factor * int(k)]
            table_hits = np.bincount(raw) if raw.size else np.empty(0, dtype=np.int64)
            unique = np.nonzero(table_hits)[0]
            if unique.size:
                distances = np.linalg.norm(self._points[unique] - qp[None, :], ord=self.p, axis=1)
                order = np.argsort(distances, kind="stable")[:k]
                ids = unique[order]
                counts = table_hits[ids]
            else:
                ids = np.empty(0, dtype=np.int64)
                counts = np.empty(0, dtype=np.int64)
            results.append(TopKResult(ids=ids, counts=counts))

            # Per-thread serial work: L lookups + hashing, a scattered
            # point fetch + distance per candidate, and an O(c log c)
            # short-list sort. At one thread per query the scattered fetches
            # are latency-bound (little warp-level hiding), which is the
            # short-list bottleneck the paper describes.
            c = max(int(raw.size), 1)
            dim = self._points.shape[1]
            cycles = (
                self.num_tables * self.functions_per_table * dim  # query hashing
                + c * dim * (1.0 + _SCATTER_STALL_CYCLES)  # fetch + distance
                + 8.0 * c * np.log2(c + 1)  # per-thread sort
            )
            per_query_cycles.append(cycles)
            scattered_bytes += c * 4.0

        launch = _one_thread_per_query_launch(
            per_query_cycles, self.device, scattered_bytes
        )
        self.device.launch(launch, stage="match")
        self.last_profile = timings_delta(before, self.device.timings)
        return results


def _one_thread_per_query_launch(per_query_cycles, device, scattered_bytes) -> KernelLaunch:
    """Model a one-thread-per-query kernel.

    Queries fill warps; a warp's time is its slowest thread's (full SIMD
    divergence across irregular per-query work). Block cost is expressed
    directly in cycles (``threads_per_block=1`` makes ``block_cycles`` a
    pass-through), one synthetic block per warp-batch on each SM.
    """
    cycles = np.asarray(per_query_cycles, dtype=np.float64)
    warp = device.spec.warp_size
    n_warps = int(np.ceil(cycles.size / warp))
    warp_cycles = [
        float(cycles[w * warp : (w + 1) * warp].max()) for w in range(n_warps)
    ]
    # Each SM runs `cores_per_sm / warp` warps concurrently; fold that
    # concurrency in by dividing each warp's cost across available lanes.
    concurrent = max(1, device.spec.cores_per_sm // warp)
    block_items = np.asarray([max(1, int(c / concurrent)) for c in warp_cycles], dtype=np.int64)
    return KernelLaunch(
        name="gpu_lsh_query",
        block_items=block_items,
        threads_per_block=1,
        cycles_per_item=1.0,
        bytes_read=0.0,
        uncoalesced_bytes=float(scattered_bytes),
        divergent_warps=float(n_warps),
    )

