"""CPU-LSH: collision-counting LSH on the CPU (C2LSH, Gan et al.).

The paper's CPU competitor for high-dimensional ANN. C2LSH counts, per
data point, the number of individual LSH functions on which it collides
with the query; points whose collision count passes a threshold become
candidates and are verified with true distances. The collision-counting
core is the same idea as GENIE's match-count model (the paper notes C2LSH
"corroborates" its ANN scheme), but it runs sequentially on one core and
pays a verification pass per candidate.
"""

from __future__ import annotations

import numpy as np

from repro.core.inverted_index import InvertedIndex
from repro.core.types import Corpus, Query, TopKResult
from repro.errors import QueryError
from repro.gpu.host import HostCpu
from repro.gpu.stats import StageTimings, timings_delta
from repro.lsh.e2lsh import E2Lsh
from repro.lsh.rehash import ReHasher


class CpuLsh:
    """Collision-counting LSH k-NN on the simulated CPU.

    Args:
        num_functions: Number of LSH functions ``m``.
        width: E2LSH bucket width.
        p: lp norm (1 or 2).
        collision_fraction: Candidates must collide on at least this
            fraction of the functions (C2LSH's alpha threshold).
        domain: Bucket domain for the signature re-hash.
        host: Simulated host CPU to charge.
        seed: RNG seed.
    """

    def __init__(
        self,
        num_functions: int,
        width: float,
        p: int = 2,
        collision_fraction: float = 0.3,
        domain: int = 4096,
        host: HostCpu | None = None,
        seed: int = 0,
    ):
        if not 0 < collision_fraction <= 1:
            raise ValueError("collision_fraction must lie in (0, 1]")
        self.num_functions = int(num_functions)
        self.width = float(width)
        self.p = int(p)
        self.collision_fraction = float(collision_fraction)
        self.domain = int(domain)
        self.host = host if host is not None else HostCpu()
        self.seed = int(seed)
        self._family: E2Lsh | None = None
        self._rehasher: ReHasher | None = None
        self._index: InvertedIndex | None = None
        self._points: np.ndarray | None = None
        self.last_profile: StageTimings | None = None

    def fit(self, points: np.ndarray) -> "CpuLsh":
        """Hash the points and build the collision-count index on the host."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        self._points = points
        self._family = E2Lsh(self.num_functions, points.shape[1], self.width, p=self.p, seed=self.seed)
        self._rehasher = ReHasher(self.num_functions, self.domain, seed=self.seed + 1)
        keywords = self._rehasher.keywords(self._family.hash_points(points))
        corpus = Corpus(list(keywords))
        self._index = InvertedIndex.build(corpus)
        self.host.charge_ops(self._index.build_ops, stage="index_build")
        return self

    def query(self, query_points: np.ndarray, k: int) -> list[TopKResult]:
        """Sequential collision counting + candidate verification.

        Returns ``TopKResult`` records ordered by true lp distance;
        ``counts`` holds the collision counts of the returned points.
        """
        if self._index is None or self._points is None:
            raise QueryError("CpuLsh must be fitted before querying")
        query_points = np.atleast_2d(np.asarray(query_points, dtype=np.float64))
        before = self.host.timings.copy()
        n, dim = self._points.shape
        threshold = max(1, int(np.ceil(self.collision_fraction * self.num_functions)))

        results = []
        query_keywords = self._rehasher.keywords(self._family.hash_points(query_points))
        for row, qp in zip(query_keywords, query_points):
            query = Query.from_keywords(row)
            spans = [s for item in query.items for s in self._index.spans_for_keywords(item)]
            ids = self._index.gather(spans)
            counts = np.bincount(ids, minlength=n).astype(np.int64)
            candidates = np.nonzero(counts >= threshold)[0]
            if candidates.size < k:
                # C2LSH relaxes the threshold until enough candidates exist.
                order_all = np.argsort(-counts, kind="stable")
                candidates = order_all[: max(k, candidates.size)]
            distances = np.linalg.norm(self._points[candidates] - qp[None, :], ord=self.p, axis=1)
            order = np.argsort(distances, kind="stable")[:k]
            chosen = candidates[order]
            results.append(TopKResult(ids=chosen, counts=counts[chosen]))

            scan_ops = float(ids.size) * 3.0 + float(n)
            verify_ops = float(candidates.size) * float(dim) * 3.0
            self.host.charge_ops(scan_ops, stage="match")
            self.host.charge_ops(verify_ops, stage="verify")
            self.host.charge_bytes(float(candidates.size * dim) * 8.0, stage="verify")
        self.last_profile = timings_delta(before, self.host.timings)
        return results

