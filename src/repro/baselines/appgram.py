"""AppGram: CPU filter-and-verify sequence kNN under edit distance.

Stand-in for the paper's state-of-the-art CPU competitor (Wang et al.,
"Efficient and effective kNN sequence search with approximate n-grams").
Like the original it is exact: an n-gram count filter (Theorem 5.1) orders
candidates, and edit-distance verification continues until the count bound
proves no unseen sequence can enter the top-k. Unlike GENIE's single-round
search it never stops early, which is why the paper finds it orders of
magnitude slower at similar accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.core.inverted_index import InvertedIndex
from repro.core.types import Corpus, Query
from repro.errors import QueryError
from repro.gpu.host import HostCpu
from repro.gpu.stats import StageTimings, timings_delta
from repro.sa.edit_distance import edit_distance, edit_distance_ops
from repro.sa.ngram import NgramVocabulary
from repro.sa.sequence import SequenceMatch


class AppGram:
    """Exact CPU sequence kNN with an n-gram count filter.

    Args:
        n: n-gram length.
        host: Simulated host CPU to charge.
    """

    def __init__(self, n: int = 3, host: HostCpu | None = None):
        self.n = int(n)
        self.host = host if host is not None else HostCpu()
        self.vocabulary = NgramVocabulary(self.n)
        self.sequences: list[str] = []
        self._index: InvertedIndex | None = None
        self.last_profile: StageTimings | None = None

    def fit(self, sequences: list[str]) -> "AppGram":
        """Shred and index the data sequences on the host."""
        self.sequences = list(sequences)
        corpus = Corpus([self.vocabulary.encode(s, grow=True) for s in self.sequences])
        self._index = InvertedIndex.build(corpus)
        self.host.charge_ops(self._index.build_ops, stage="index_build")
        return self

    def search(self, query: str, k: int = 1) -> list[SequenceMatch]:
        """Exact top-k most similar sequences under edit distance.

        Candidates are visited in descending common-gram-count order;
        verification stops once Theorem 5.1 guarantees that every unseen
        sequence is farther than the current k-th best.
        """
        if self._index is None:
            raise QueryError("AppGram must be fitted before searching")
        genie_query = Query.from_keywords(self.vocabulary.encode(query, grow=False))
        n_seq = len(self.sequences)
        spans = [s for item in genie_query.items for s in self._index.spans_for_keywords(item)]
        ids = self._index.gather(spans)
        counts = np.bincount(ids, minlength=n_seq).astype(np.int64)
        self.host.charge_ops(float(ids.size) * 3.0 + n_seq, stage="match")

        order = np.lexsort((np.arange(n_seq), -counts))
        matches: list[SequenceMatch] = []
        for sid in order:
            count = int(counts[sid])
            if len(matches) >= k:
                tau_k = matches[k - 1].distance
                # Theorem 5.1: count >= |Q| - n + 1 - tau*n whenever
                # ed <= tau; so if the bound for tau_k - 1 exceeds this
                # candidate's count, no remaining candidate can improve.
                if count < len(query) - self.n + 1 - tau_k * self.n:
                    break
            candidate = self.sequences[int(sid)]
            if len(matches) >= k and abs(len(query) - len(candidate)) > matches[k - 1].distance:
                continue
            distance = edit_distance(query, candidate)
            self.host.charge_ops(edit_distance_ops(len(query), len(candidate)), stage="verify")
            matches.append(SequenceMatch(sequence_id=int(sid), distance=distance, count=count))
            matches.sort(key=lambda match: (match.distance, match.sequence_id))
            del matches[k:]
        return matches

    def search_batch(self, queries: list[str], k: int = 1) -> list[list[SequenceMatch]]:
        """Sequential batch search with per-call profiling."""
        before = self.host.timings.copy()
        results = [self.search(q, k=k) for q in queries]
        self.last_profile = timings_delta(before, self.host.timings)
        return results

