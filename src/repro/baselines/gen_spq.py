"""GEN-SPQ: GENIE's inverted index with SPQ selection instead of c-PQ.

The paper's ablation variant (Section VI-A2): the same GPU inverted index,
but counts go into a plain per-query Count Table and top-k extraction uses
the SPQ bucket selection. Comparing it with GENIE isolates c-PQ's
contribution (Fig. 13, Table IV).
"""

from __future__ import annotations

from repro.core.engine import GenieConfig, GenieEngine
from repro.gpu.device import Device
from repro.gpu.host import HostCpu


def make_gen_spq(
    device: Device | None = None,
    host: HostCpu | None = None,
    config: GenieConfig | None = None,
) -> GenieEngine:
    """A :class:`GenieEngine` configured as the GEN-SPQ variant.

    Args:
        device: Simulated GPU.
        host: Simulated host CPU.
        config: Base configuration; ``use_cpq`` is forced off.

    Returns:
        The configured engine (same ``fit`` / ``query`` API as GENIE).
    """
    base = config if config is not None else GenieConfig()
    return GenieEngine(device=device, host=host, config=base.with_(use_cpq=False))
