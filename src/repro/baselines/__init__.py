"""The paper's competitor systems (Section VI-A2), on the same simulated clock.

* :class:`~repro.baselines.gpu_spq.GpuSpq` — full-scan GPU + SPQ selection,
* :func:`~repro.baselines.gen_spq.make_gen_spq` — GENIE index, SPQ selection,
* :class:`~repro.baselines.gpu_lsh.GpuLsh` — bi-level LSH (Pan & Manocha),
* :class:`~repro.baselines.cpu_idx.CpuIdx` — CPU inverted index,
* :class:`~repro.baselines.cpu_lsh.CpuLsh` — C2LSH collision counting,
* :class:`~repro.baselines.appgram.AppGram` — exact CPU sequence kNN.

The SPQ bucket k-selection itself lives in :mod:`repro.core.spq_select`
(GEN-SPQ shares it) and is re-exported here.
"""

from repro.baselines.appgram import AppGram
from repro.baselines.cpu_idx import CpuIdx
from repro.baselines.cpu_lsh import CpuLsh
from repro.baselines.gen_spq import make_gen_spq
from repro.baselines.gpu_lsh import GpuLsh
from repro.baselines.gpu_spq import GpuSpq
from repro.core.spq_select import SpqTrace, spq_topk

__all__ = [
    "GpuSpq",
    "GpuLsh",
    "CpuIdx",
    "CpuLsh",
    "AppGram",
    "make_gen_spq",
    "spq_topk",
    "SpqTrace",
]
