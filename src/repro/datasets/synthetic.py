"""Synthetic high-dimensional point datasets (OCR- and SIFT-like).

The paper's OCR (3.5M x 1156-d, labeled) and SIFT (4.5M x 128-d) datasets
are replaced by seeded generators producing the same *structure* at laptop
scale: clustered points whose nearest-neighbour geometry is non-trivial,
plus class labels for the OCR 1-NN classification experiment (Table V).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PointDataset:
    """A labeled point dataset with a held-out query set.

    Attributes:
        data: ``(n, d)`` float64 data points.
        queries: ``(q, d)`` float64 query points (held out of ``data``).
        labels: Class labels of ``data`` (or ``None``).
        query_labels: Class labels of ``queries`` (or ``None``).
    """

    data: np.ndarray
    queries: np.ndarray
    labels: np.ndarray | None = None
    query_labels: np.ndarray | None = None

    @property
    def dim(self) -> int:
        """Point dimensionality."""
        return int(self.data.shape[1])

    def __len__(self) -> int:
        return int(self.data.shape[0])


def make_sift_like(
    n: int = 20_000,
    n_queries: int = 100,
    dim: int = 128,
    n_clusters: int = 64,
    cluster_std: float = 0.35,
    seed: int = 0,
) -> PointDataset:
    """A SIFT-like mixture of Gaussians.

    Real SIFT features concentrate on cluster-like manifolds; a Gaussian
    mixture reproduces the property that matters for ANN evaluation —
    queries have close true neighbours and plenty of near-misses.

    Args:
        n: Data points.
        n_queries: Held-out query points (drawn from the same mixture).
        dim: Dimensionality (128, as SIFT).
        n_clusters: Mixture components.
        cluster_std: Within-cluster standard deviation.
        seed: RNG seed.
    """
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((n_clusters, dim))
    total = n + n_queries
    assignment = rng.integers(0, n_clusters, size=total)
    points = centers[assignment] + cluster_std * rng.standard_normal((total, dim))
    return PointDataset(data=points[:n], queries=points[n:])


def make_ocr_like(
    n: int = 10_000,
    n_queries: int = 500,
    dim: int = 96,
    n_classes: int = 26,
    cluster_std: float = 1.0,
    seed: int = 0,
) -> PointDataset:
    """An OCR-like labeled dataset for the 1-NN prediction experiment.

    Each class is a cluster with a couple of sub-modes (characters have
    writing variants), values shifted non-negative like pixel intensities.

    Args:
        n: Data points.
        n_queries: Held-out test points.
        dim: Dimensionality (scaled down from the paper's 1156).
        n_classes: Number of character classes.
        cluster_std: Within-class spread; larger values make 1-NN harder.
        seed: RNG seed.
    """
    rng = np.random.default_rng(seed)
    modes_per_class = 2
    centers = 2.0 * rng.standard_normal((n_classes, modes_per_class, dim))
    total = n + n_queries
    labels = rng.integers(0, n_classes, size=total)
    modes = rng.integers(0, modes_per_class, size=total)
    points = centers[labels, modes] + cluster_std * rng.standard_normal((total, dim))
    points = np.abs(points)  # intensity-like, non-negative
    return PointDataset(
        data=points[:n],
        queries=points[n:],
        labels=labels[:n],
        query_labels=labels[n:],
    )


def true_knn(
    data: np.ndarray, queries: np.ndarray, k: int, p: int = 2, block: int = 256
) -> tuple[np.ndarray, np.ndarray]:
    """Exact k-NN by blocked brute force (ground truth for evaluations).

    Args:
        data: ``(n, d)`` data points.
        queries: ``(q, d)`` query points.
        k: Neighbours per query.
        p: lp norm (1 or 2).
        block: Queries per distance-matrix block (memory control).

    Returns:
        ``(ids, distances)`` of shape ``(q, k)``, ascending by distance.
    """
    data = np.asarray(data, dtype=np.float64)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    all_ids = []
    all_d = []
    for start in range(0, queries.shape[0], block):
        chunk = queries[start : start + block]
        if p == 2:
            d2 = (
                np.sum(chunk**2, axis=1)[:, None]
                - 2.0 * chunk @ data.T
                + np.sum(data**2, axis=1)[None, :]
            )
            distances = np.sqrt(np.maximum(d2, 0.0))
        else:
            distances = np.abs(chunk[:, None, :] - data[None, :, :]).sum(axis=2)
        idx = np.argpartition(distances, min(k, data.shape[0] - 1), axis=1)[:, :k]
        row_d = np.take_along_axis(distances, idx, axis=1)
        order = np.argsort(row_d, axis=1, kind="stable")
        all_ids.append(np.take_along_axis(idx, order, axis=1))
        all_d.append(np.take_along_axis(row_d, order, axis=1))
    return np.vstack(all_ids), np.vstack(all_d)
