"""Named dataset registry mapping the paper's datasets to scaled generators.

Experiments refer to datasets by the paper's names (``ocr``, ``sift``,
``sift_large``, ``dblp``, ``tweets``, ``adult``); the registry owns the
default laptop-scale sizes and the seed discipline so every figure/table is
generated from the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets.documents import make_tweets_like
from repro.datasets.relational import make_adult_like
from repro.datasets.sequences import make_dblp_like
from repro.datasets.synthetic import make_ocr_like, make_sift_like


@dataclass(frozen=True)
class DatasetInfo:
    """Registry entry.

    Attributes:
        name: Paper dataset name.
        kind: ``points`` / ``sequences`` / ``documents`` / ``relational``.
        paper_size: The paper's dataset cardinality (for documentation).
        default_n: Scaled default cardinality used by experiments here.
        loader: Generator callable accepting ``n`` and ``seed``.
    """

    name: str
    kind: str
    paper_size: str
    default_n: int
    loader: Callable


REGISTRY: dict[str, DatasetInfo] = {
    "ocr": DatasetInfo(
        name="ocr",
        kind="points",
        paper_size="3.5M x 1156-d",
        default_n=8_000,
        loader=lambda n, seed=0: make_ocr_like(n=n, seed=seed),
    ),
    "sift": DatasetInfo(
        name="sift",
        kind="points",
        paper_size="4.5M x 128-d",
        default_n=8_000,
        loader=lambda n, seed=0: make_sift_like(n=n, seed=seed),
    ),
    "sift_large": DatasetInfo(
        name="sift_large",
        kind="points",
        paper_size="36M x 128-d",
        default_n=48_000,
        loader=lambda n, seed=0: make_sift_like(n=n, seed=seed),
    ),
    "dblp": DatasetInfo(
        name="dblp",
        kind="sequences",
        paper_size="5.0M titles",
        default_n=4_000,
        loader=lambda n, seed=0: make_dblp_like(n=n, seed=seed),
    ),
    "tweets": DatasetInfo(
        name="tweets",
        kind="documents",
        paper_size="6.8M tweets",
        default_n=8_000,
        loader=lambda n, seed=0: make_tweets_like(n=n, seed=seed),
    ),
    "adult": DatasetInfo(
        name="adult",
        kind="relational",
        paper_size="0.98M x 14",
        default_n=16_000,
        loader=lambda n, seed=0: make_adult_like(n=n, seed=seed),
    ),
}


def dataset_names() -> list[str]:
    """All registered dataset names, in the paper's presentation order."""
    return list(REGISTRY.keys())


def load(name: str, n: int | None = None, seed: int = 0):
    """Generate a registered dataset.

    Args:
        name: Registry key (e.g. ``"sift"``).
        n: Cardinality override; the registry default when omitted.
        seed: RNG seed.

    Returns:
        Whatever the dataset's generator produces (see each generator).
    """
    info = REGISTRY.get(name)
    if info is None:
        raise KeyError(f"unknown dataset {name!r}; known: {dataset_names()}")
    return info.loader(n if n is not None else info.default_n, seed=seed)
