"""DBLP-like sequence data: generated titles + controlled corruption.

The paper builds its sequence queries by sampling DBLP article titles and
modifying 10-40% of their characters; the accuracy experiments (Tables VI
and VII) then check whether GENIE recovers the original title. The
generator below produces titles from a small Markov word model and
:func:`modify_sequence` applies the same corruption protocol.
"""

from __future__ import annotations

import numpy as np

_TOPICS = [
    "query", "index", "graph", "stream", "parallel", "approximate", "nearest",
    "neighbor", "search", "learning", "database", "distributed", "efficient",
    "scalable", "similarity", "hashing", "mining", "optimization", "join",
    "selection", "clustering", "embedding", "storage", "memory", "cache",
    "transaction", "recovery", "spatial", "temporal", "probabilistic",
]
_CONNECTORS = ["for", "with", "over", "on", "via", "using", "under", "in"]
_ALPHABET = "abcdefghijklmnopqrstuvwxyz "


def make_dblp_like(
    n: int = 5_000,
    min_words: int = 4,
    max_words: int = 9,
    seed: int = 0,
) -> list[str]:
    """Generate ``n`` distinct article-title-like sequences.

    Args:
        n: Number of titles.
        min_words: Minimum words per title.
        max_words: Maximum words per title.
        seed: RNG seed.

    Returns:
        A list of unique lowercase titles.
    """
    rng = np.random.default_rng(seed)
    titles: list[str] = []
    seen: set[str] = set()
    while len(titles) < n:
        length = int(rng.integers(min_words, max_words + 1))
        words = []
        for i in range(length):
            pool = _CONNECTORS if (i % 3 == 2 and i < length - 1) else _TOPICS
            words.append(pool[int(rng.integers(0, len(pool)))])
        title = " ".join(words)
        if title in seen:
            title = f"{title} {int(rng.integers(0, 1000))}"
        if title not in seen:
            seen.add(title)
            titles.append(title)
    return titles


def modify_sequence(sequence: str, fraction: float, rng: np.random.Generator) -> str:
    """Corrupt a fraction of a sequence's characters (the paper's protocol).

    Each selected position suffers a substitution, deletion, or insertion
    with equal probability.

    Args:
        sequence: The original sequence.
        fraction: Fraction of characters to modify (0.2 = 20%).
        rng: Source of randomness.

    Returns:
        The corrupted sequence.
    """
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must lie in [0, 1]")
    chars = list(sequence)
    n_mods = int(round(len(chars) * fraction))
    if n_mods == 0:
        return sequence
    positions = rng.choice(len(chars), size=min(n_mods, len(chars)), replace=False)
    # Apply from the right so earlier indices stay valid under edits.
    for pos in sorted(map(int, positions), reverse=True):
        op = int(rng.integers(0, 3))
        random_char = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
        if op == 0:  # substitution
            chars[pos] = random_char
        elif op == 1 and len(chars) > 1:  # deletion
            del chars[pos]
        else:  # insertion
            chars.insert(pos, random_char)
    return "".join(chars)


def make_query_set(
    titles: list[str],
    n_queries: int,
    fraction: float,
    seed: int = 0,
) -> tuple[list[str], list[int]]:
    """Sample titles and corrupt them, keeping the ground-truth ids.

    Args:
        titles: The indexed sequences.
        n_queries: Queries to sample.
        fraction: Character-modification fraction.
        seed: RNG seed.

    Returns:
        ``(queries, true_ids)`` — corrupted strings and the id of the title
        each was derived from.
    """
    rng = np.random.default_rng(seed)
    ids = rng.choice(len(titles), size=min(n_queries, len(titles)), replace=False)
    queries = [modify_sequence(titles[int(i)], fraction, rng) for i in ids]
    return queries, [int(i) for i in ids]
