"""Tweets-like short documents: Zipf-distributed word bags.

Stands in for the paper's 6.8M-tweet crawl: short documents over a skewed
vocabulary (a few hot topic words, a long tail), which is what shapes the
inverted index's postings-list length distribution.
"""

from __future__ import annotations

import numpy as np

_TOPIC_WORDS = ["singapore", "city", "food", "restaurant", "joint", "travel", "coffee"]


def make_vocabulary(size: int) -> list[str]:
    """A deterministic vocabulary: topic words first, then generated tokens."""
    if size < 1:
        raise ValueError("vocabulary size must be >= 1")
    vocab = list(_TOPIC_WORDS[:size])
    i = 0
    while len(vocab) < size:
        vocab.append(f"w{i:05d}")
        i += 1
    return vocab


def make_tweets_like(
    n: int = 10_000,
    vocab_size: int = 5_000,
    min_words: int = 4,
    max_words: int = 14,
    zipf_a: float = 1.3,
    seed: int = 0,
) -> list[str]:
    """Generate ``n`` short documents with Zipf-distributed words.

    Args:
        n: Number of documents.
        vocab_size: Vocabulary size.
        min_words: Minimum words per document.
        max_words: Maximum words per document.
        zipf_a: Zipf exponent (>1); larger = more skew.
        seed: RNG seed.
    """
    if zipf_a <= 1.0:
        raise ValueError("zipf_a must be > 1")
    rng = np.random.default_rng(seed)
    vocab = make_vocabulary(vocab_size)
    docs = []
    for _ in range(n):
        length = int(rng.integers(min_words, max_words + 1))
        ranks = np.minimum(rng.zipf(zipf_a, size=length) - 1, vocab_size - 1)
        docs.append(" ".join(vocab[int(r)] for r in ranks))
    return docs


def make_document_queries(
    documents: list[str], n_queries: int, drop_fraction: float = 0.3, seed: int = 0
) -> tuple[list[str], list[int]]:
    """Derive queries by dropping a fraction of words from sampled documents.

    Returns:
        ``(queries, source_ids)``; the source document should rank highly
        for its derived query under the inner-product measure.
    """
    rng = np.random.default_rng(seed)
    ids = rng.choice(len(documents), size=min(n_queries, len(documents)), replace=False)
    queries = []
    for i in ids:
        words = documents[int(i)].split()
        keep = max(1, int(round(len(words) * (1.0 - drop_fraction))))
        chosen = rng.choice(len(words), size=keep, replace=False)
        queries.append(" ".join(words[int(j)] for j in sorted(chosen)))
    return queries, [int(i) for i in ids]
