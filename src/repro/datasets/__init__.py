"""Synthetic stand-ins for the paper's datasets (see DESIGN.md substitutions)."""

from repro.datasets.documents import make_document_queries, make_tweets_like, make_vocabulary
from repro.datasets.registry import REGISTRY, DatasetInfo, dataset_names, load
from repro.datasets.relational import (
    ADULT_SCHEMA,
    adult_schema,
    make_adult_like,
    make_exact_match_queries,
    make_range_queries,
)
from repro.datasets.sequences import make_dblp_like, make_query_set, modify_sequence
from repro.datasets.synthetic import PointDataset, make_ocr_like, make_sift_like, true_knn

__all__ = [
    "PointDataset",
    "make_sift_like",
    "make_ocr_like",
    "true_knn",
    "make_dblp_like",
    "modify_sequence",
    "make_query_set",
    "make_tweets_like",
    "make_vocabulary",
    "make_document_queries",
    "make_adult_like",
    "adult_schema",
    "ADULT_SCHEMA",
    "make_exact_match_queries",
    "make_range_queries",
    "REGISTRY",
    "DatasetInfo",
    "dataset_names",
    "load",
]
