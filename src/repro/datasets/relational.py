"""Adult-census-like relational data: mixed, skewed columns.

Stands in for the UCI Adult table (49K x 14, duplicated x20 in the paper).
The load-balance experiment (Fig. 12) depends on *skewed low-cardinality
categorical columns* — e.g. ``sex`` with two values over a million rows
yields postings lists half the table long — so the generator makes that
skew explicit and tunable.
"""

from __future__ import annotations

import numpy as np

from repro.sa.relational import AttributeSpec

#: Schema used by the Adult-like generator: (name, kind, cardinality-or-bins).
ADULT_SCHEMA: tuple[tuple[str, str, int], ...] = (
    ("age", "numeric", 64),
    ("fnlwgt", "numeric", 64),
    ("education_num", "numeric", 16),
    ("capital_gain", "numeric", 64),
    ("capital_loss", "numeric", 64),
    ("hours_per_week", "numeric", 64),
    ("workclass", "categorical", 7),
    ("education", "categorical", 16),
    ("marital_status", "categorical", 7),
    ("occupation", "categorical", 14),
    ("relationship", "categorical", 6),
    ("race", "categorical", 5),
    ("sex", "categorical", 2),
    ("native_country", "categorical", 40),
)


def adult_schema(numeric_bins: int = 64) -> list[AttributeSpec]:
    """The :class:`AttributeSpec` schema matching :func:`make_adult_like`."""
    return [
        AttributeSpec(name, kind, bins=numeric_bins if kind == "numeric" else cardinality)
        for name, kind, cardinality in ADULT_SCHEMA
    ]


def make_adult_like(n: int = 20_000, seed: int = 0) -> dict[str, np.ndarray]:
    """Generate an Adult-like table as ``{column: values}``.

    Numeric columns are skewed (log-normal-ish) like census quantities;
    categorical columns draw from heavily skewed distributions so the most
    common category's postings list is a large fraction of the table.

    Args:
        n: Number of rows.
        seed: RNG seed.
    """
    rng = np.random.default_rng(seed)
    columns: dict[str, np.ndarray] = {}
    for name, kind, cardinality in ADULT_SCHEMA:
        if kind == "numeric":
            base = rng.lognormal(mean=3.0, sigma=0.5, size=n)
            columns[name] = base / base.max() * 100.0
        else:
            weights = 1.0 / np.arange(1, cardinality + 1) ** 1.5
            weights /= weights.sum()
            columns[name] = rng.choice(cardinality, size=n, p=weights).astype(np.int64)
    return columns


def make_exact_match_queries(
    columns: dict[str, np.ndarray], n_queries: int, seed: int = 0
) -> list[dict[str, tuple]]:
    """Exact-match queries over sampled rows (the Fig. 12 workload).

    Every attribute of a sampled row becomes a point range, which touches
    the skewed columns' long postings lists on every query.
    """
    rng = np.random.default_rng(seed)
    n = len(next(iter(columns.values())))
    rows = rng.choice(n, size=min(n_queries, n), replace=False)
    queries = []
    for row in rows:
        ranges = {name: (values[int(row)], values[int(row)]) for name, values in columns.items()}
        queries.append(ranges)
    return queries


def make_range_queries(
    columns: dict[str, np.ndarray],
    n_queries: int,
    numeric_halfwidth: float = 5.0,
    seed: int = 0,
) -> list[dict[str, tuple]]:
    """Range queries centered on sampled rows (the paper's +-50-bin protocol,
    scaled to the generator's 0-100 numeric range)."""
    rng = np.random.default_rng(seed)
    n = len(next(iter(columns.values())))
    rows = rng.choice(n, size=min(n_queries, n), replace=False)
    kinds = dict((name, kind) for name, kind, _ in ADULT_SCHEMA)
    queries = []
    for row in rows:
        ranges: dict[str, tuple] = {}
        for name, values in columns.items():
            v = values[int(row)]
            if kinds[name] == "numeric":
                ranges[name] = (v - numeric_halfwidth, v + numeric_halfwidth)
            else:
                ranges[name] = (v, v)
        queries.append(ranges)
    return queries
