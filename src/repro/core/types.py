"""Core data model: keywords, objects, corpora, queries and results.

GENIE's match-count model (Section II-A of the paper) is defined over a
universe of *elements*; this implementation encodes every element as a
non-negative integer **keyword**. Front-ends (LSH, SA, relational) own the
mapping from raw data to keywords:

* LSH: keyword = ``function_index * domain + bucket``,
* sequences: keyword = id of an ordered n-gram,
* relational: keyword = id of an ``(attribute, discretized value)`` pair.

An *object* is the set of keywords describing one data item. A *query* is a
list of *items*, each item being the set of keywords it matches (a range
item on a relational table expands to many keywords; an LSH item is a single
keyword).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import QueryError

#: Dtype used for keyword and object identifiers throughout the package.
ID_DTYPE = np.int64


def as_keyword_array(keywords) -> np.ndarray:
    """Normalize raw keyword input to a validated int64 array.

    Args:
        keywords: Any iterable of non-negative integers.

    Returns:
        A 1-D ``int64`` array.

    Raises:
        QueryError: If any keyword is negative.
    """
    arr = np.asarray(list(keywords) if not isinstance(keywords, np.ndarray) else keywords, dtype=ID_DTYPE)
    arr = arr.reshape(-1)
    if arr.size and arr.min() < 0:
        raise QueryError("keywords must be non-negative integers")
    return arr


class Corpus:
    """An ordered collection of objects, each a set of keywords.

    Args:
        objects: One iterable of keywords per object. Duplicate keywords
            within an object are dropped (an object is a *set* of elements).

    Attributes:
        keyword_arrays: Per-object sorted, de-duplicated keyword arrays.
    """

    def __init__(self, objects):
        self.keyword_arrays: list[np.ndarray] = []
        max_kw = -1
        total = 0
        max_size = 0
        for obj in objects:
            arr = np.unique(as_keyword_array(obj))
            self.keyword_arrays.append(arr)
            total += arr.size
            if arr.size:
                max_kw = max(max_kw, int(arr[-1]))
                max_size = max(max_size, arr.size)
        self._max_keyword = max_kw
        # Sizes are fixed at construction; the engine asks for them on every
        # batch (device-memory sizing), so they must not be O(n) generators.
        self._total_entries = total
        self._max_object_size = max_size

    def __len__(self) -> int:
        return len(self.keyword_arrays)

    def __getitem__(self, i: int) -> np.ndarray:
        return self.keyword_arrays[i]

    def __iter__(self):
        return iter(self.keyword_arrays)

    @property
    def max_keyword(self) -> int:
        """Largest keyword present (-1 for an empty corpus)."""
        return self._max_keyword

    @property
    def total_entries(self) -> int:
        """Total number of (object, keyword) pairs — the index size."""
        return self._total_entries

    def max_object_size(self) -> int:
        """Keywords in the largest object; a valid match-count bound."""
        return self._max_object_size


@dataclass
class Query:
    """A match-count query: a list of items, each a set of keywords.

    Attributes:
        items: One keyword array per query item.
    """

    items: list = field(default_factory=list)

    def __post_init__(self):
        # A query item is a *set* of elements (Definition 2.1): duplicates
        # within one item must not double-count an object. Single-keyword
        # int64 arrays (the LSH/SA shape, thousands per batch) are already
        # canonical — validate without the np.unique round-trip.
        items = []
        for item in self.items:
            if (
                isinstance(item, np.ndarray)
                and item.ndim == 1
                and item.size == 1
                and item.dtype == ID_DTYPE
            ):
                if item[0] < 0:
                    raise QueryError("keywords must be non-negative integers")
                items.append(item.copy())  # never alias caller-owned storage
            else:
                items.append(np.unique(as_keyword_array(item)))
        self.items = items
        self._count_bound: int | None = None

    @classmethod
    def from_keywords(cls, keywords) -> "Query":
        """Build a query with one single-keyword item per keyword.

        This is the shape LSH- and SA-transformed queries take: each hash
        signature / n-gram is its own item.
        """
        return cls(items=list(as_keyword_array(keywords).reshape(-1, 1)))

    @property
    def num_items(self) -> int:
        """Number of query items."""
        return len(self.items)

    @property
    def num_keywords(self) -> int:
        """Total keywords across all items (with repeats across items)."""
        return sum(item.size for item in self.items)

    def all_keywords(self) -> np.ndarray:
        """Concatenation of all items' keywords (with repeats across items)."""
        if not self.items:
            return np.empty(0, dtype=ID_DTYPE)
        return np.concatenate(self.items)

    def count_bound(self) -> int:
        """An upper bound on any object's match count for this query.

        Each item can contribute at most the item's own keyword-set size,
        but never more than the object's size; the number of items is the
        bound the paper uses for LSH/SA data (one keyword per item). The
        value is cached: items are fixed after construction and the engine
        asks once per batch.
        """
        if self._count_bound is None:
            self._count_bound = (
                int(sum(min(1, item.size) for item in self.items))
                if all(item.size == 1 for item in self.items)
                else int(sum(item.size for item in self.items))
            )
        return self._count_bound


@dataclass
class TopKResult:
    """Top-k answer for one query, sorted by descending match count.

    Attributes:
        ids: Object identifiers.
        counts: Match counts aligned with ``ids``.
        threshold: The value ``AT - 1`` from c-PQ — by Theorem 3.1 this is
            exactly the match count of the k-th object.
    """

    ids: np.ndarray
    counts: np.ndarray
    threshold: int = 0

    def __post_init__(self):
        self.ids = np.asarray(self.ids, dtype=ID_DTYPE)
        self.counts = np.asarray(self.counts, dtype=ID_DTYPE)
        if self.ids.shape != self.counts.shape:
            raise ValueError("ids and counts must align")

    def __len__(self) -> int:
        return int(self.ids.size)

    def as_pairs(self) -> list[tuple[int, int]]:
        """``(object_id, count)`` pairs in rank order."""
        return [(int(i), int(c)) for i, c in zip(self.ids, self.counts)]
