"""The GENIE inverted index: List Array + Position Map (Section III-B).

The index stores all postings lists in one flat array destined for GPU
global memory, and a host-side *position map* from keyword to the address
range(s) of its list. With load balancing enabled a keyword maps to several
sublist spans (the one-to-many map of Fig. 4).

The position map is held in CSR form — three dense arrays instead of a
``dict`` of span lists — so the batch scanner
(:mod:`repro.core.batch_scan`) can resolve an arbitrary array of keywords to
spans with fancy indexing instead of a Python loop:

* ``span_starts`` / ``span_ends``: the half-open List-Array range of every
  (sub-)postings list, in List-Array order,
* ``kw_span_offsets``: keyword row ``i`` owns spans
  ``kw_span_offsets[i]:kw_span_offsets[i + 1]``,
* a keyword → row lookup built once at construction (a dense table when the
  keyword universe is compact, binary search over the sorted keyword array
  otherwise).

The original dict-shaped API (``spans_for_keyword`` and friends) remains as
a thin compatibility layer on top of the CSR arrays.
"""

from __future__ import annotations

from types import MappingProxyType

import numpy as np

from repro.core.load_balance import LoadBalanceConfig
from repro.core.posting import FlatPostings, build_postings
from repro.core.types import ID_DTYPE, Corpus
from repro.errors import IndexError_

#: Bytes the position map costs per span entry (keyword + start + end).
_POSITION_MAP_ENTRY_BYTES = 24

#: Build a dense keyword -> row table when the keyword universe is at most
#: this many times larger than the number of distinct keywords.
_DENSE_LOOKUP_OVERHEAD = 8


class InvertedIndex:
    """An inverted index over a keyword corpus.

    Build with :meth:`build`; query through
    :meth:`spans_for_keyword` / :meth:`spans_for_keywords` (scalar compat
    API) or :meth:`keyword_rows` + the CSR arrays (vectorized API), or hand
    the whole index to :class:`repro.core.engine.GenieEngine`.

    Attributes:
        list_array: All postings concatenated (object ids).
        keyword_array: Sorted distinct keywords (one row per keyword).
        kw_span_offsets: CSR offsets mapping keyword rows to span rows.
        span_starts: Per-span start position in ``list_array``.
        span_ends: Per-span end position in ``list_array``.
        n_objects: Number of objects indexed.
        load_balance: The splitting configuration used, or ``None``.
        build_ops: Abstract CPU cost of construction.
    """

    def __init__(
        self,
        list_array: np.ndarray,
        keyword_array: np.ndarray,
        kw_span_offsets: np.ndarray,
        span_starts: np.ndarray,
        span_ends: np.ndarray,
        n_objects: int,
        load_balance: LoadBalanceConfig | None,
        build_ops: float,
    ):
        self.list_array = np.asarray(list_array, dtype=ID_DTYPE)
        self.keyword_array = np.asarray(keyword_array, dtype=ID_DTYPE)
        self.kw_span_offsets = np.asarray(kw_span_offsets, dtype=ID_DTYPE)
        self.span_starts = np.asarray(span_starts, dtype=ID_DTYPE)
        self.span_ends = np.asarray(span_ends, dtype=ID_DTYPE)
        self.n_objects = int(n_objects)
        self.load_balance = load_balance
        self.build_ops = float(build_ops)
        self._kw_lookup = self._build_dense_lookup(self.keyword_array)
        self._position_map_cache: dict[int, tuple[tuple[int, int], ...]] | None = None
        self._list_array32: np.ndarray | None = None

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def build(cls, corpus: Corpus, load_balance: LoadBalanceConfig | None = None) -> "InvertedIndex":
        """Index a corpus, optionally splitting long lists.

        Args:
            corpus: Objects to index.
            load_balance: If given, lists longer than
                ``load_balance.max_sublist_len`` are split into sublists.

        Returns:
            The built index.
        """
        postings = build_postings(corpus)
        return cls.from_postings(postings, len(corpus), load_balance)

    @classmethod
    def from_postings(
        cls,
        postings: FlatPostings,
        n_objects: int,
        load_balance: LoadBalanceConfig | None = None,
    ) -> "InvertedIndex":
        """Wrap pre-built flat postings in an index (CSR position map)."""
        max_len = None if load_balance is None else load_balance.max_sublist_len
        kw_span_offsets, span_starts, span_ends = postings.span_csr(max_len)
        return cls(
            list_array=postings.list_array,
            keyword_array=postings.keywords,
            kw_span_offsets=kw_span_offsets,
            span_starts=span_starts,
            span_ends=span_ends,
            n_objects=n_objects,
            load_balance=load_balance,
            build_ops=postings.build_ops,
        )

    @staticmethod
    def _build_dense_lookup(keywords: np.ndarray) -> np.ndarray | None:
        """A keyword -> row table, when the keyword universe is compact."""
        if keywords.size == 0:
            return None
        max_kw = int(keywords[-1])
        if max_kw + 1 > _DENSE_LOOKUP_OVERHEAD * keywords.size + 1024:
            return None
        table = np.full(max_kw + 1, -1, dtype=ID_DTYPE)
        table[keywords] = np.arange(keywords.size, dtype=ID_DTYPE)
        return table

    # ------------------------------------------------------------------
    # vectorized lookups

    def keyword_rows(self, keywords: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Resolve an array of keywords to keyword rows, vectorized.

        Args:
            keywords: Any integer array (need not be sorted or present).

        Returns:
            ``(rows, found)``: per input keyword its row into
            ``kw_span_offsets`` and whether it is indexed at all. Rows of
            absent keywords are garbage and must be masked with ``found``.
        """
        kws = np.asarray(keywords, dtype=ID_DTYPE).reshape(-1)
        if self.keyword_array.size == 0:
            return np.zeros(kws.size, dtype=ID_DTYPE), np.zeros(kws.size, dtype=bool)
        if self._kw_lookup is not None:
            inside = (kws >= 0) & (kws < self._kw_lookup.size)
            rows = self._kw_lookup[np.where(inside, kws, 0)]
            return rows, inside & (rows >= 0)
        rows = np.searchsorted(self.keyword_array, kws)
        rows = np.minimum(rows, self.keyword_array.size - 1)
        return rows, self.keyword_array[rows] == kws

    def span_rows_for_keyword_rows(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Expand keyword rows to their span rows (CSR gather).

        Args:
            rows: Valid keyword rows (e.g. the masked output of
                :meth:`keyword_rows`).

        Returns:
            ``(span_rows, n_spans)``: the concatenated span rows of every
            input keyword, in input order, plus each keyword's span count
            (so callers can segment the flat result).
        """
        rows = np.asarray(rows, dtype=ID_DTYPE).reshape(-1)
        first = self.kw_span_offsets[rows]
        n_spans = self.kw_span_offsets[rows + 1] - first
        return ragged_slices(first, n_spans), n_spans

    def gather_span_rows(self, span_rows: np.ndarray) -> np.ndarray:
        """Concatenate the object ids of the given span rows, vectorized."""
        starts = self.span_starts[span_rows]
        lengths = self.span_ends[span_rows] - starts
        return self.list_array[ragged_slices(starts, lengths)]

    @property
    def list_array32(self) -> np.ndarray:
        """The List Array as 32-bit ids (the device's own layout).

        The batch scanner streams postings through this view: object ids
        always fit 32 bits (a 12 GB card cannot hold more objects), and the
        halved traffic matters on the host exactly as it does on the device.
        """
        if self._list_array32 is None:
            self._list_array32 = self.list_array.astype(np.int32)
        return self._list_array32

    # ------------------------------------------------------------------
    # compatibility lookups (dict-shaped API over the CSR arrays)

    @property
    def keywords(self) -> list[int]:
        """Keywords that have postings."""
        return self.keyword_array.tolist()

    @property
    def num_lists(self) -> int:
        """Number of (sub-)postings lists after any splitting."""
        return int(self.span_starts.size)

    @property
    def max_list_len(self) -> int:
        """Length of the longest (sub-)postings list."""
        if self.span_starts.size == 0:
            return 0
        return int((self.span_ends - self.span_starts).max())

    @property
    def _position_map(self):
        """A read-only dict view of the CSR position map, built on demand.

        Scalar per-keyword lookups (this compat API, the CPU baselines) are
        faster through a dict than through tiny numpy calls; the dict is
        derived from the CSR arrays the first time it is needed. The view
        is a :class:`types.MappingProxyType` over tuple-valued entries, so
        no caller can mutate the cache and desynchronize it from the CSR
        truth; :meth:`spans_for_keyword` hands out fresh lists for the
        same reason.
        """
        return MappingProxyType(self._position_map_dict())

    def _position_map_dict(self) -> dict[int, tuple[tuple[int, int], ...]]:
        if self._position_map_cache is None:
            offsets = self.kw_span_offsets.tolist()
            starts = self.span_starts.tolist()
            ends = self.span_ends.tolist()
            self._position_map_cache = {
                int(kw): tuple(zip(starts[offsets[i] : offsets[i + 1]], ends[offsets[i] : offsets[i + 1]]))
                for i, kw in enumerate(self.keyword_array.tolist())
            }
        return self._position_map_cache

    def spans_for_keyword(self, keyword: int) -> list[tuple[int, int]]:
        """Sublist spans for one keyword (empty if it has no postings).

        The list is a fresh copy on every call — mutating it cannot
        corrupt later lookups.
        """
        return list(self._position_map_dict().get(int(keyword), ()))

    def spans_for_keywords(self, keywords: np.ndarray) -> list[tuple[int, int]]:
        """Concatenated spans for an array of keywords (a fresh list)."""
        position_map = self._position_map_dict()
        spans: list[tuple[int, int]] = []
        for kw in np.asarray(keywords).reshape(-1).tolist():
            spans.extend(position_map.get(int(kw), ()))
        return spans

    def postings_for_keyword(self, keyword: int) -> np.ndarray:
        """The full (re-joined) postings list for a keyword."""
        spans = self.spans_for_keyword(keyword)
        if not spans:
            return np.empty(0, dtype=ID_DTYPE)
        return np.concatenate([self.list_array[s:e] for s, e in spans])

    def gather(self, spans: list[tuple[int, int]]) -> np.ndarray:
        """Concatenate the object ids covered by ``spans``."""
        if not spans:
            return np.empty(0, dtype=ID_DTYPE)
        return np.concatenate([self.list_array[s:e] for s, e in spans])

    # ------------------------------------------------------------------
    # sizes

    @property
    def total_entries(self) -> int:
        """Entries in the List Array."""
        return int(self.list_array.size)

    def device_bytes(self) -> int:
        """Bytes the index occupies in GPU global memory (the List Array)."""
        return int(self.list_array.nbytes)

    def host_bytes(self) -> int:
        """Approximate host-side position-map footprint."""
        return self.num_lists * _POSITION_MAP_ENTRY_BYTES

    def validate(self) -> None:
        """Check structural invariants; raises on corruption.

        Raises:
            IndexError_: If spans overlap, leave gaps, or point outside the
                List Array, or if the CSR keyword rows are malformed.
        """
        if self.kw_span_offsets.size != self.keyword_array.size + 1:
            raise IndexError_("kw_span_offsets does not cover the keyword rows")
        if self.span_starts.size != self.span_ends.size:
            raise IndexError_("span_starts and span_ends must align")
        if int(self.kw_span_offsets[-1]) != self.num_lists:
            raise IndexError_("kw_span_offsets does not cover the span rows")
        order = np.lexsort((self.span_ends, self.span_starts))
        starts = self.span_starts[order]
        ends = self.span_ends[order]
        cursor = 0
        for start, end in zip(starts, ends):
            if int(start) != cursor or end < start:
                raise IndexError_(f"span ({start},{end}) breaks coverage at {cursor}")
            cursor = int(end)
        if cursor != self.total_entries:
            raise IndexError_(f"spans cover {cursor} of {self.total_entries} entries")


def ragged_slices(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Indices of the concatenation ``[arange(s, s + l) for s, l in ...]``.

    The workhorse of the vectorized gather: expanding many variable-length
    slices into one flat fancy-index array without a Python loop.

    Args:
        starts: Start of each slice.
        lengths: Length of each slice (non-negative).

    Returns:
        A flat ``int64`` index array of ``lengths.sum()`` entries.
    """
    starts = np.asarray(starts, dtype=ID_DTYPE)
    lengths = np.asarray(lengths, dtype=ID_DTYPE)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=ID_DTYPE)
    # Each output position i belongs to segment s and should hold
    # starts[s] + (i - first_output_of_s); fold the correction into repeat.
    seg_offsets = np.zeros(lengths.size, dtype=ID_DTYPE)
    np.cumsum(lengths[:-1], out=seg_offsets[1:])
    return np.arange(total, dtype=ID_DTYPE) + np.repeat(starts - seg_offsets, lengths)
