"""The GENIE inverted index: List Array + Position Map (Section III-B).

The index stores all postings lists in one flat array destined for GPU
global memory, and a host-side *position map* from keyword to the address
range(s) of its list. With load balancing enabled a keyword maps to several
sublist spans (the one-to-many map of Fig. 4).
"""

from __future__ import annotations

import numpy as np

from repro.core.load_balance import LoadBalanceConfig, split_span
from repro.core.posting import FlatPostings, build_postings
from repro.core.types import ID_DTYPE, Corpus
from repro.errors import IndexError_

#: Bytes the position map costs per span entry (keyword + start + end).
_POSITION_MAP_ENTRY_BYTES = 24


class InvertedIndex:
    """An inverted index over a keyword corpus.

    Build with :meth:`build`; query through
    :meth:`spans_for_keyword` / :meth:`spans_for_keywords`, or hand the
    whole index to :class:`repro.core.engine.GenieEngine`.

    Attributes:
        list_array: All postings concatenated (object ids).
        n_objects: Number of objects indexed.
        load_balance: The splitting configuration used, or ``None``.
        build_ops: Abstract CPU cost of construction.
    """

    def __init__(
        self,
        list_array: np.ndarray,
        position_map: dict,
        n_objects: int,
        load_balance: LoadBalanceConfig | None,
        build_ops: float,
    ):
        self.list_array = np.asarray(list_array, dtype=ID_DTYPE)
        self._position_map = position_map
        self.n_objects = int(n_objects)
        self.load_balance = load_balance
        self.build_ops = float(build_ops)

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def build(cls, corpus: Corpus, load_balance: LoadBalanceConfig | None = None) -> "InvertedIndex":
        """Index a corpus, optionally splitting long lists.

        Args:
            corpus: Objects to index.
            load_balance: If given, lists longer than
                ``load_balance.max_sublist_len`` are split into sublists.

        Returns:
            The built index.
        """
        postings = build_postings(corpus)
        position_map = cls._make_position_map(postings, load_balance)
        return cls(
            list_array=postings.list_array,
            position_map=position_map,
            n_objects=len(corpus),
            load_balance=load_balance,
            build_ops=postings.build_ops,
        )

    @staticmethod
    def _make_position_map(postings: FlatPostings, load_balance: LoadBalanceConfig | None) -> dict:
        position_map: dict[int, list[tuple[int, int]]] = {}
        for i, keyword in enumerate(postings.keywords):
            start = int(postings.offsets[i])
            end = int(postings.offsets[i + 1])
            if load_balance is None:
                position_map[int(keyword)] = [(start, end)]
            else:
                position_map[int(keyword)] = split_span(start, end, load_balance.max_sublist_len)
        return position_map

    # ------------------------------------------------------------------
    # lookups

    @property
    def keywords(self) -> list[int]:
        """Keywords that have postings (unsorted view of the map's keys)."""
        return list(self._position_map.keys())

    @property
    def num_lists(self) -> int:
        """Number of (sub-)postings lists after any splitting."""
        return sum(len(spans) for spans in self._position_map.values())

    @property
    def max_list_len(self) -> int:
        """Length of the longest (sub-)postings list."""
        lengths = [end - start for spans in self._position_map.values() for start, end in spans]
        return max(lengths, default=0)

    def spans_for_keyword(self, keyword: int) -> list[tuple[int, int]]:
        """Sublist spans for one keyword (empty if it has no postings)."""
        return self._position_map.get(int(keyword), [])

    def spans_for_keywords(self, keywords: np.ndarray) -> list[tuple[int, int]]:
        """Concatenated spans for an array of keywords."""
        spans: list[tuple[int, int]] = []
        for kw in np.asarray(keywords).reshape(-1):
            spans.extend(self._position_map.get(int(kw), []))
        return spans

    def postings_for_keyword(self, keyword: int) -> np.ndarray:
        """The full (re-joined) postings list for a keyword."""
        spans = self.spans_for_keyword(keyword)
        if not spans:
            return np.empty(0, dtype=ID_DTYPE)
        return np.concatenate([self.list_array[s:e] for s, e in spans])

    def gather(self, spans: list[tuple[int, int]]) -> np.ndarray:
        """Concatenate the object ids covered by ``spans``."""
        if not spans:
            return np.empty(0, dtype=ID_DTYPE)
        return np.concatenate([self.list_array[s:e] for s, e in spans])

    # ------------------------------------------------------------------
    # sizes

    @property
    def total_entries(self) -> int:
        """Entries in the List Array."""
        return int(self.list_array.size)

    def device_bytes(self) -> int:
        """Bytes the index occupies in GPU global memory (the List Array)."""
        return int(self.list_array.nbytes)

    def host_bytes(self) -> int:
        """Approximate host-side position-map footprint."""
        return self.num_lists * _POSITION_MAP_ENTRY_BYTES

    def validate(self) -> None:
        """Check structural invariants; raises on corruption.

        Raises:
            IndexError_: If spans overlap, leave gaps, or point outside the
                List Array.
        """
        all_spans = sorted(
            (span for spans in self._position_map.values() for span in spans)
        )
        cursor = 0
        for start, end in all_spans:
            if start != cursor or end < start:
                raise IndexError_(f"span ({start},{end}) breaks coverage at {cursor}")
            cursor = end
        if cursor != self.total_entries:
            raise IndexError_(f"spans cover {cursor} of {self.total_entries} entries")
