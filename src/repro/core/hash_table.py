"""c-PQ's upper level: a Robin Hood hash table with expired-entry overwrite.

Standard Robin Hood hashing bounds probe sequences by letting a "poor"
incoming entry evict a "rich" resident (one with a smaller probe age). The
paper's modification (Section III-C2) exploits Theorem 3.1: any entry whose
value has fallen below ``AT - 1`` can never be a top-k candidate, so an
insert may simply overwrite it, which keeps probe sequences short as ``AT``
rises.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

_EMPTY = -1


def _mix(key: int) -> int:
    """A 64-bit finalizer (splitmix64-style) used as the table hash."""
    h = (key + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return h ^ (h >> 31)


def next_power_of_two(n: int) -> int:
    """Smallest power of two that is >= max(n, 1)."""
    return 1 << max(0, (max(n, 1) - 1)).bit_length()


class RobinHoodHashTable:
    """Open-addressing hash table with Robin Hood probing.

    Args:
        capacity: Slot count; rounded up to a power of two. Theorem 3.1
            sizes it as ``O(k * count_bound)``.
        expired_overwrite: Enable the paper's modification (overwrite
            entries whose value is below the expiry threshold). Disabling it
            is the ablation in ``benchmarks/test_ablation_robin_hood.py``.
    """

    def __init__(self, capacity: int, expired_overwrite: bool = True):
        if capacity < 1:
            raise ConfigError("capacity must be >= 1")
        self.capacity = next_power_of_two(capacity)
        self.expired_overwrite = bool(expired_overwrite)
        self._keys = np.full(self.capacity, _EMPTY, dtype=np.int64)
        self._values = np.zeros(self.capacity, dtype=np.int64)
        self._ages = np.zeros(self.capacity, dtype=np.int64)
        self.size = 0
        self.total_probes = 0
        self.evictions = 0
        self.expired_overwrites = 0

    @property
    def nbytes(self) -> int:
        """Device footprint of the table (keys + values + ages)."""
        return int(self._keys.nbytes + self._values.nbytes + self._ages.nbytes)

    def _slot(self, key: int) -> int:
        return _mix(int(key)) & (self.capacity - 1)

    def put(self, key: int, value: int, expire_below: int = 0) -> None:
        """Insert or update ``key`` with ``value``.

        Args:
            key: Object id (non-negative).
            value: Its current count; an existing entry is overwritten only
                by a larger value (counts are monotone).
            expire_below: Current ``AT - 1``; resident entries with a value
                strictly below it are dead and may be overwritten in place.

        Raises:
            ConfigError: If the table is full and nothing can be evicted —
                which Theorem 3.1's sizing is meant to preclude.
        """
        if key < 0:
            raise ConfigError("keys must be non-negative object ids")
        carry_key, carry_value, carry_age = int(key), int(value), 0
        slot = self._slot(carry_key)
        for _ in range(self.capacity):
            self.total_probes += 1
            resident = self._keys[slot]
            if resident == _EMPTY:
                self._place(slot, carry_key, carry_value, carry_age, new=True)
                return
            if resident == carry_key:
                if carry_value > self._values[slot]:
                    self._values[slot] = carry_value
                return
            if self.expired_overwrite and self._values[slot] < expire_below:
                self.expired_overwrites += 1
                self._place(slot, carry_key, carry_value, carry_age, new=False)
                return
            if self._ages[slot] < carry_age:
                # Robin Hood: the richer resident yields and continues probing.
                resident_value = int(self._values[slot])
                resident_age = int(self._ages[slot])
                self._place(slot, carry_key, carry_value, carry_age, new=False)
                carry_key, carry_value, carry_age = int(resident), resident_value, resident_age
                self.evictions += 1
            slot = (slot + 1) & (self.capacity - 1)
            carry_age += 1
        raise ConfigError("hash table overflow: capacity under-provisioned for k * count_bound")

    def _place(self, slot: int, key: int, value: int, age: int, new: bool) -> None:
        self._keys[slot] = key
        self._values[slot] = value
        self._ages[slot] = age
        if new:
            self.size += 1

    def get(self, key: int) -> int | None:
        """Value stored for ``key``, or ``None`` if absent."""
        slot = self._slot(int(key))
        for _ in range(self.capacity):
            resident = self._keys[slot]
            if resident == _EMPTY:
                return None
            if resident == key:
                return int(self._values[slot])
            slot = (slot + 1) & (self.capacity - 1)
        return None

    def scan(self, min_value: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """One pass over the table: live entries with value >= ``min_value``.

        This is the single homogeneous scan that replaces sorting in GENIE's
        top-k selection.

        Returns:
            ``(keys, values)`` arrays (unordered).
        """
        live = (self._keys != _EMPTY) & (self._values >= min_value)
        return self._keys[live].copy(), self._values[live].copy()

    def items(self) -> list[tuple[int, int]]:
        """All live ``(key, value)`` pairs (unordered)."""
        keys, values = self.scan()
        return [(int(k), int(v)) for k, v in zip(keys, values)]
