"""The plain Count Table — what c-PQ replaces.

A Count Table allocates one 32-bit counter per object per query. The paper
uses it (a) as the strawman whose memory blow-up motivates c-PQ (1k queries
on 10M points = 40 GB) and (b) inside the GEN-SPQ variant, where top-k
selection must then run over the full table.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

#: Bytes per counter in the plain table.
COUNT_TABLE_ENTRY_BYTES = 4

#: Extra per-object workspace SPQ selection needs (explicit ids + a scratch
#: copy of counts, 4 bytes each) — see Appendix A of the paper.
SPQ_WORKSPACE_BYTES = 8


class CountTable:
    """One query's full per-object count array.

    Args:
        n_objects: Number of objects (counters).
    """

    def __init__(self, n_objects: int):
        if n_objects < 0:
            raise ConfigError("n_objects must be non-negative")
        self.n_objects = int(n_objects)
        self.counts = np.zeros(self.n_objects, dtype=np.int32)

    @property
    def nbytes(self) -> int:
        """Device footprint of the table itself."""
        return int(self.counts.nbytes)

    def increment(self, obj_id: int) -> int:
        """Add one to an object's counter; returns the new value."""
        self.counts[obj_id] += 1
        return int(self.counts[obj_id])

    def increment_many(self, obj_ids: np.ndarray) -> None:
        """Vectorized increments (duplicate ids accumulate)."""
        np.add.at(self.counts, np.asarray(obj_ids, dtype=np.int64), 1)

    def to_array(self) -> np.ndarray:
        """The counts as ``int64``."""
        return self.counts.astype(np.int64)


def count_table_batch_bytes(n_objects: int, n_queries: int, with_spq_workspace: bool = True) -> int:
    """Device bytes a batch of plain Count Tables needs.

    This is the quantity that limits GEN-SPQ / GPU-SPQ batch sizes in
    Table IV and in Fig. 9's "cannot run more than 256 queries" remark.
    """
    per_query = COUNT_TABLE_ENTRY_BYTES + (SPQ_WORKSPACE_BYTES if with_spq_workspace else 0)
    return int(n_objects) * per_query * int(n_queries)
