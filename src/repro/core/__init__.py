"""GENIE core: the match-count model, inverted index, c-PQ and engine.

Typical use::

    from repro.core import Corpus, GenieConfig, GenieEngine, Query

    engine = GenieEngine(config=GenieConfig(k=10)).fit(Corpus(objects))
    results = engine.query([Query.from_keywords(sig) for sig in signatures])
"""

from repro.core.batch_scan import BatchScanPlan, plan_batch_scan
from repro.core.bitmap_counter import BitmapCounter, bits_for_bound
from repro.core.count_table import CountTable, count_table_batch_bytes
from repro.core.cpq import CountPriorityQueue, hash_table_capacity
from repro.core.engine import GenieConfig, GenieEngine, per_query_device_bytes
from repro.core.hash_table import RobinHoodHashTable
from repro.core.inverted_index import InvertedIndex
from repro.core.load_balance import LoadBalanceConfig
from repro.core.match_count import brute_force_topk, match_count, match_counts_all
from repro.core.multiload import MultiLoadGenie
from repro.core.selection import (
    audit_threshold_from_counts,
    audit_threshold_from_counts_batch,
    derive_cpq_cost,
    derive_cpq_cost_batch,
    topk_from_counts,
    topk_from_counts_batch,
)
from repro.core.spq_select import spq_topk
from repro.core.types import Corpus, Query, TopKResult
from repro.core.zipper import Gate

__all__ = [
    "Corpus",
    "Query",
    "TopKResult",
    "GenieEngine",
    "GenieConfig",
    "MultiLoadGenie",
    "InvertedIndex",
    "LoadBalanceConfig",
    "CountPriorityQueue",
    "BitmapCounter",
    "Gate",
    "RobinHoodHashTable",
    "CountTable",
    "match_count",
    "match_counts_all",
    "brute_force_topk",
    "topk_from_counts",
    "topk_from_counts_batch",
    "audit_threshold_from_counts",
    "audit_threshold_from_counts_batch",
    "derive_cpq_cost",
    "derive_cpq_cost_batch",
    "plan_batch_scan",
    "BatchScanPlan",
    "spq_topk",
    "bits_for_bound",
    "hash_table_capacity",
    "count_table_batch_bytes",
    "per_query_device_bytes",
]
