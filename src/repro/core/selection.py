"""Vectorized top-k selection and c-PQ state derivation.

The batched engine computes each query's final count vector with one
``bincount`` (functionally identical to scanning postings and incrementing
counters) and then needs two things:

* the same top-k answer the reference c-PQ would produce, and
* the c-PQ *state* (final AuditThreshold, Hash-Table population, Gate
  passes) so the device can be charged a faithful cost.

Both are pure functions of the final counts, because Theorem 3.1 pins the
final ``AT`` to the k-th count + 1 regardless of scan order.

Every helper has a batched 2-D counterpart (``*_batch``) operating on a
``(n_queries, n_objects)`` count matrix: one ``argpartition`` /
``partition`` along axis 1 serves the whole batch. The batched variants
return exactly what the per-query functions return row by row — including
the deterministic count-desc / id-asc tie-break — so the two paths are
interchangeable. They are the public matrix-level API and the oracle the
engine's hot path is tested against; the engine itself selects inside
:mod:`repro.core.batch_scan`'s tiled sweep, which implements the same
contract (``tests/core/test_batch_scan.py`` holds all three to it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import TopKResult


def topk_from_counts(counts: np.ndarray, k: int) -> TopKResult:
    """Exact top-k (count desc, id asc) from a final count vector.

    Only objects with positive counts are returned, matching the reference
    c-PQ (zero-count objects never enter the Hash Table).
    """
    counts = np.asarray(counts, dtype=np.int64)
    k = int(k)
    n = counts.size
    if n == 0 or k <= 0:
        return TopKResult(ids=np.empty(0, dtype=np.int64), counts=np.empty(0, dtype=np.int64))
    take = min(k, n)
    threshold = audit_threshold_from_counts(counts, k) - 1
    # Everything above the k-th count is in; boundary ties (== threshold)
    # fill the remaining slots by ascending id, deterministically.
    sure = np.nonzero(counts > threshold)[0]
    ties = np.nonzero(counts == threshold)[0][: take - sure.size]
    top_ids = np.concatenate([sure, ties])
    top_counts = counts[top_ids]
    order = np.lexsort((top_ids, -top_counts))
    top_ids, top_counts = top_ids[order], top_counts[order]
    positive = top_counts > 0
    return TopKResult(ids=top_ids[positive], counts=top_counts[positive], threshold=threshold)


def topk_from_counts_batch(count_matrix: np.ndarray, k: int) -> list[TopKResult]:
    """Batched :func:`topk_from_counts`: one selection for a whole batch.

    A single ``argpartition`` along axis 1 finds every query's top-k
    candidates at once. The count-desc / id-asc order (and the tie-break at
    the k-th count) is enforced by partitioning on the composite key
    ``count * n + (n - 1 - id)``, which orders exactly like
    ``lexsort((ids, -counts))``.

    Args:
        count_matrix: ``(n_queries, n_objects)`` final match counts.
        k: Result size.

    Returns:
        One :class:`TopKResult` per row, identical to calling
        :func:`topk_from_counts` on each row.
    """
    count_matrix = np.asarray(count_matrix, dtype=np.int64)
    if count_matrix.ndim != 2:
        raise ValueError("count_matrix must be 2-D (n_queries, n_objects)")
    n_queries, n = count_matrix.shape
    k = int(k)
    empty = np.empty(0, dtype=np.int64)
    if n == 0 or k <= 0:
        return [TopKResult(ids=empty, counts=empty) for _ in range(n_queries)]
    max_count = int(count_matrix.max()) if count_matrix.size else 0
    if max_count >= (2**62) // max(n, 1):
        # Composite keys would overflow int64; counts this large only occur
        # in adversarial inputs, where the per-query path is fine.
        return [topk_from_counts(row, k) for row in count_matrix]
    take = min(k, n)
    ids = np.arange(n, dtype=np.int64)
    keys = count_matrix * n + (n - 1 - ids)
    top_cols = np.argpartition(keys, n - take, axis=1)[:, n - take :]
    top_keys = np.take_along_axis(keys, top_cols, axis=1)
    order = np.argsort(-top_keys, axis=1)
    top_cols = np.take_along_axis(top_cols, order, axis=1)
    top_counts = np.take_along_axis(count_matrix, top_cols, axis=1)
    thresholds = top_counts[:, take - 1]
    results = []
    for qi in range(n_queries):
        positive = top_counts[qi] > 0
        results.append(
            TopKResult(
                ids=top_cols[qi, positive],
                counts=top_counts[qi, positive],
                threshold=int(thresholds[qi]),
            )
        )
    return results


def audit_threshold_from_counts(counts: np.ndarray, k: int) -> int:
    """The final AuditThreshold: ``MC_k + 1`` by Theorem 3.1.

    ``MC_k`` is the k-th largest count (0 if fewer than k objects exist).
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        return 1
    k = min(int(k), counts.size)
    kth = np.partition(counts, counts.size - k)[counts.size - k]
    return int(kth) + 1


def audit_threshold_from_counts_batch(count_matrix: np.ndarray, k: int) -> np.ndarray:
    """Batched :func:`audit_threshold_from_counts`: one ``partition`` per batch.

    Args:
        count_matrix: ``(n_queries, n_objects)`` final match counts.
        k: Result size.

    Returns:
        Per-row final AuditThreshold (``int64`` array of ``n_queries``).
    """
    count_matrix = np.asarray(count_matrix, dtype=np.int64)
    n_queries, n = count_matrix.shape
    if n == 0:
        return np.ones(n_queries, dtype=np.int64)
    k = min(int(k), n)
    kth = np.partition(count_matrix, n - k, axis=1)[:, n - k]
    return kth + 1


@dataclass
class CpqCostState:
    """Cost-relevant c-PQ statistics derived from a final count vector.

    Attributes:
        audit_threshold: Final ``AT``.
        ht_entries: Upper-bound estimate of Hash-Table population
            (``min(nonzero, k * AT)``, the Theorem 3.1 bound).
        gate_passes: Estimated Gate passes (Hash-Table write attempts).
        updates: Total Bitmap-Counter increments (= postings entries
            scanned for the query).
    """

    audit_threshold: int
    ht_entries: int
    gate_passes: float
    updates: int


def derive_cpq_cost(counts: np.ndarray, k: int) -> CpqCostState:
    """Derive c-PQ cost statistics from a query's final count vector.

    The Gate-pass estimate counts, for each count level ``c``, at most ``k``
    objects passing while ``AT == c`` plus all increments made by objects
    above the final threshold — a faithful stand-in for the scan-order-
    dependent exact number, and an upper bound of the same order.
    """
    counts = np.asarray(counts, dtype=np.int64)
    at = audit_threshold_from_counts(counts, k)
    nonzero = int(np.count_nonzero(counts))
    ht_entries = min(nonzero, int(k) * at)
    # Objects whose final count c >= AT-1 contributed ~ (c - AT + 2) passing
    # updates each; lower objects contributed at most k passes per level.
    high = counts[counts >= max(at - 1, 1)]
    passes_high = float(np.sum(high - max(at - 1, 1) + 1)) if high.size else 0.0
    passes_low = float(min(nonzero, k) * max(at - 1, 0))
    return CpqCostState(
        audit_threshold=at,
        ht_entries=ht_entries,
        gate_passes=passes_high + passes_low,
        updates=int(counts.sum()),
    )


def derive_cpq_cost_batch(count_matrix: np.ndarray, k: int) -> list[CpqCostState]:
    """Batched :func:`derive_cpq_cost`: segmented reductions over the matrix.

    All statistics are integer arithmetic, so the batched reductions return
    values identical to the per-row function.

    Args:
        count_matrix: ``(n_queries, n_objects)`` final match counts.
        k: Result size.

    Returns:
        One :class:`CpqCostState` per row.
    """
    count_matrix = np.asarray(count_matrix, dtype=np.int64)
    n_queries = count_matrix.shape[0]
    k = int(k)
    at = audit_threshold_from_counts_batch(count_matrix, k)
    nonzero = np.count_nonzero(count_matrix, axis=1)
    ht_entries = np.minimum(nonzero, k * at)
    lo = np.maximum(at - 1, 1)
    above = count_matrix >= lo[:, None]
    passes_high = np.sum((count_matrix - lo[:, None] + 1) * above, axis=1)
    passes_low = np.minimum(nonzero, k) * np.maximum(at - 1, 0)
    updates = count_matrix.sum(axis=1)
    return [
        CpqCostState(
            audit_threshold=int(at[qi]),
            ht_entries=int(ht_entries[qi]),
            gate_passes=float(passes_high[qi] + passes_low[qi]),
            updates=int(updates[qi]),
        )
        for qi in range(n_queries)
    ]
