"""Vectorized top-k selection and c-PQ state derivation.

The batched engine computes each query's final count vector with one
``bincount`` (functionally identical to scanning postings and incrementing
counters) and then needs two things:

* the same top-k answer the reference c-PQ would produce, and
* the c-PQ *state* (final AuditThreshold, Hash-Table population, Gate
  passes) so the device can be charged a faithful cost.

Both are pure functions of the final counts, because Theorem 3.1 pins the
final ``AT`` to the k-th count + 1 regardless of scan order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import TopKResult


def topk_from_counts(counts: np.ndarray, k: int) -> TopKResult:
    """Exact top-k (count desc, id asc) from a final count vector.

    Only objects with positive counts are returned, matching the reference
    c-PQ (zero-count objects never enter the Hash Table).
    """
    counts = np.asarray(counts, dtype=np.int64)
    k = int(k)
    n = counts.size
    if n == 0 or k <= 0:
        return TopKResult(ids=np.empty(0, dtype=np.int64), counts=np.empty(0, dtype=np.int64))
    take = min(k, n)
    threshold = audit_threshold_from_counts(counts, k) - 1
    # Everything above the k-th count is in; boundary ties (== threshold)
    # fill the remaining slots by ascending id, deterministically.
    sure = np.nonzero(counts > threshold)[0]
    ties = np.nonzero(counts == threshold)[0][: take - sure.size]
    top_ids = np.concatenate([sure, ties])
    top_counts = counts[top_ids]
    order = np.lexsort((top_ids, -top_counts))
    top_ids, top_counts = top_ids[order], top_counts[order]
    positive = top_counts > 0
    return TopKResult(ids=top_ids[positive], counts=top_counts[positive], threshold=threshold)


def audit_threshold_from_counts(counts: np.ndarray, k: int) -> int:
    """The final AuditThreshold: ``MC_k + 1`` by Theorem 3.1.

    ``MC_k`` is the k-th largest count (0 if fewer than k objects exist).
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        return 1
    k = min(int(k), counts.size)
    kth = np.partition(counts, counts.size - k)[counts.size - k]
    return int(kth) + 1


@dataclass
class CpqCostState:
    """Cost-relevant c-PQ statistics derived from a final count vector.

    Attributes:
        audit_threshold: Final ``AT``.
        ht_entries: Upper-bound estimate of Hash-Table population
            (``min(nonzero, k * AT)``, the Theorem 3.1 bound).
        gate_passes: Estimated Gate passes (Hash-Table write attempts).
        updates: Total Bitmap-Counter increments (= postings entries
            scanned for the query).
    """

    audit_threshold: int
    ht_entries: int
    gate_passes: float
    updates: int


def derive_cpq_cost(counts: np.ndarray, k: int) -> CpqCostState:
    """Derive c-PQ cost statistics from a query's final count vector.

    The Gate-pass estimate counts, for each count level ``c``, at most ``k``
    objects passing while ``AT == c`` plus all increments made by objects
    above the final threshold — a faithful stand-in for the scan-order-
    dependent exact number, and an upper bound of the same order.
    """
    counts = np.asarray(counts, dtype=np.int64)
    at = audit_threshold_from_counts(counts, k)
    nonzero = int(np.count_nonzero(counts))
    ht_entries = min(nonzero, int(k) * at)
    # Objects whose final count c >= AT-1 contributed ~ (c - AT + 2) passing
    # updates each; lower objects contributed at most k passes per level.
    high = counts[counts >= max(at - 1, 1)]
    passes_high = float(np.sum(high - max(at - 1, 1) + 1)) if high.size else 0.0
    passes_low = float(min(nonzero, k) * max(at - 1, 0))
    return CpqCostState(
        audit_threshold=at,
        ht_entries=ht_entries,
        gate_passes=passes_high + passes_low,
        updates=int(counts.sum()),
    )
