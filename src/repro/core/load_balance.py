"""Load balancing by splitting long postings lists (Section III-B1).

Some keywords (e.g. a categorical attribute with two values over millions of
rows) produce postings lists so long that the single block scanning them
dominates the kernel's makespan. GENIE's remedy is to split any list longer
than a limit into sublists and let the position map point one keyword at
many sublists; a block then takes at most a couple of sublists.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The sublist length limit the paper uses (4K entries).
PAPER_MAX_SUBLIST = 4096

#: The paper limits each block to at most two (sub-)postings lists.
PAPER_LISTS_PER_BLOCK = 2


@dataclass(frozen=True)
class LoadBalanceConfig:
    """Configuration of the list-splitting load balancer.

    Attributes:
        max_sublist_len: Lists longer than this are split into sublists of
            at most this length.
        max_lists_per_block: How many (sub-)lists one block may scan.
    """

    max_sublist_len: int = PAPER_MAX_SUBLIST
    max_lists_per_block: int = PAPER_LISTS_PER_BLOCK

    def __post_init__(self):
        if self.max_sublist_len < 1:
            raise ValueError("max_sublist_len must be >= 1")
        if self.max_lists_per_block < 1:
            raise ValueError("max_lists_per_block must be >= 1")


def split_span(start: int, end: int, max_len: int) -> list[tuple[int, int]]:
    """Split the half-open span ``[start, end)`` into chunks of ``max_len``.

    Returns:
        Sub-spans covering the input exactly, each at most ``max_len`` long.
        A span within the limit is returned unchanged (as a single chunk).
    """
    if end < start:
        raise ValueError("end must be >= start")
    if end - start <= max_len:
        return [(start, end)]
    return [(lo, min(lo + max_len, end)) for lo in range(start, end, max_len)]


def group_spans_into_blocks(spans: list[tuple[int, int]], lists_per_block: int) -> list[list[tuple[int, int]]]:
    """Group sublist spans into per-block work assignments.

    Args:
        spans: Sub-spans produced by :func:`split_span`.
        lists_per_block: Maximum spans any block may take.

    Returns:
        One list of spans per block.
    """
    if lists_per_block < 1:
        raise ValueError("lists_per_block must be >= 1")
    return [spans[i : i + lists_per_block] for i in range(0, len(spans), lists_per_block)]
