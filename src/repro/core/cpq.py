"""The Count Priority Queue (c-PQ), assembled (Section III-C).

c-PQ replaces the per-query Count Table with:

* a :class:`~repro.core.bitmap_counter.BitmapCounter` (all objects, a few
  bits each),
* a :class:`~repro.core.zipper.Gate` (ZipperArray + AuditThreshold), and
* a :class:`~repro.core.hash_table.RobinHoodHashTable` holding only the
  few objects that ever passed the Gate.

:meth:`CountPriorityQueue.update` is Algorithm 1 verbatim; after the scan,
Theorem 3.1 guarantees the top-k live in the hash table and that the k-th
match count equals ``AT - 1``, so :meth:`select_topk` needs a single table
scan and no sort over candidates.

This class is the *reference* (per-update) implementation used for
correctness; the batched engine reproduces its outcome vectorized (see
:mod:`repro.core.scan_kernel`) and its cost analytically.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitmap_counter import BitmapCounter
from repro.core.hash_table import RobinHoodHashTable
from repro.core.types import TopKResult
from repro.core.zipper import Gate
from repro.errors import ConfigError

#: Hash-table slots per expected entry (headroom over the k*AT bound).
_HT_SLACK = 4


def hash_table_capacity(k: int, count_bound: int) -> int:
    """Slot count for the c-PQ hash table, ``O(k * count_bound)`` as in the paper."""
    return max(16, _HT_SLACK * k * max(1, count_bound))


class CountPriorityQueue:
    """Per-query c-PQ instance.

    Args:
        n_objects: Objects in the (loaded part of the) dataset.
        k: Result size.
        count_bound: Maximum possible match count for the query (e.g. the
            number of LSH functions, or the number of query items).
        bits: Bitmap-Counter width override (for the bitmap-width ablation).
        expired_overwrite: Forwarded to the Robin Hood table.
    """

    def __init__(
        self,
        n_objects: int,
        k: int,
        count_bound: int,
        bits: int | None = None,
        expired_overwrite: bool = True,
    ):
        if k < 1:
            raise ConfigError("k must be >= 1")
        if count_bound < 1:
            raise ConfigError("count_bound must be >= 1")
        self.n_objects = int(n_objects)
        self.k = int(k)
        self.count_bound = int(count_bound)
        self.bc = BitmapCounter(n_objects, count_bound, bits=bits)
        self.gate = Gate(k, count_bound)
        self.ht = RobinHoodHashTable(
            hash_table_capacity(k, count_bound), expired_overwrite=expired_overwrite
        )
        self.updates = 0

    @property
    def audit_threshold(self) -> int:
        """Current AuditThreshold of the Gate."""
        return self.gate.audit_threshold

    def update(self, obj_id: int) -> None:
        """Algorithm 1: process one postings entry for this query.

        Increments the object's Bitmap Counter, offers the new value to the
        Gate, and on a pass inserts/updates the Hash-Table entry.
        """
        self.updates += 1
        new_count = self.bc.increment(obj_id)
        expire_below = self.gate.audit_threshold - 1
        if self.gate.offer(new_count):
            self.ht.put(obj_id, new_count, expire_below=expire_below)

    def update_many(self, obj_ids: np.ndarray) -> None:
        """Apply :meth:`update` to each id in order."""
        for obj_id in np.asarray(obj_ids).reshape(-1):
            self.update(int(obj_id))

    def select_topk(self) -> TopKResult:
        """Select the top-k by a single scan of the Hash Table (Theorem 3.1).

        All objects with count > ``AT - 1`` are in the result; remaining
        slots are filled from entries with count == ``AT - 1`` (ties broken
        by ascending id, for determinism). If fewer than k objects have a
        positive count the result is shorter than k.
        """
        threshold = self.gate.audit_threshold - 1
        keys, values = self.ht.scan(min_value=max(threshold, 1))
        order = np.lexsort((keys, -values))
        keys, values = keys[order], values[order]
        return TopKResult(ids=keys[: self.k], counts=values[: self.k], threshold=threshold)

    def memory_bytes(self) -> int:
        """Per-query device footprint: BC + Hash Table + Gate."""
        return self.bc.nbytes + self.ht.nbytes + int(self.gate._za.nbytes)
