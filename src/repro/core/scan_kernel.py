"""The GENIE match kernel: postings scan + counter updates (Section III-B).

One thread block scans the postings lists matched by one query item (with
load balancing, one block per couple of sublists); each thread takes one
postings entry and atomically bumps the object's counter. The functional
result of that scan is the per-query final count vector, which this module
computes with ``bincount``; the *cost* — coalesced list reads, atomic
contention on hot counters, Gate branch divergence, Hash-Table writes — is
assembled into a :class:`~repro.gpu.kernel.KernelLaunch`.

:func:`plan_query_scan` is the *per-query* planner. The engine's hot path
now plans whole batches at once through
:func:`repro.core.batch_scan.plan_batch_scan`, which produces value-
identical :class:`QueryScanPlan` records with array-native batch
computation; the per-query planner remains the readable specification and
the oracle the batch path is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.inverted_index import InvertedIndex
from repro.core.load_balance import group_spans_into_blocks
from repro.core.selection import CpqCostState, derive_cpq_cost
from repro.core.types import Query
from repro.gpu.atomics import conflicts_from_histogram
from repro.gpu.kernel import KernelLaunch
from repro.gpu.specs import DeviceSpec
from repro.gpu.warp import divergence_events

#: Bytes per postings entry as stored on the real device (32-bit object id).
POSTING_ENTRY_BYTES = 4

#: Bytes moved per Hash-Table insert (key + value + age, scattered).
HT_INSERT_BYTES = 16

#: Fraction of histogram-estimated atomic conflicts assumed temporally
#: coincident (counter hits are spread across the kernel's lifetime).
CONTENTION_DILUTION = 16.0


@dataclass
class QueryScanPlan:
    """Work layout of one query's scan.

    Attributes:
        query_index: Position of the query in the batch.
        block_sizes: Postings entries scanned by each block of this query.
        counts: Final per-object match counts (the functional result).
        cpq_cost: Derived c-PQ cost statistics for the query.
        hot_counts: The positive entries of ``counts`` in ascending-id
            order, when the planner already extracted them (the batch
            scanner does); ``None`` means derive from ``counts`` on demand.
    """

    query_index: int
    block_sizes: np.ndarray
    counts: np.ndarray
    cpq_cost: CpqCostState
    hot_counts: np.ndarray | None = None


def plan_query_scan(index: InvertedIndex, query: Query, query_index: int, k: int) -> QueryScanPlan:
    """Lay out the block structure and compute final counts for one query.

    Without load balancing each query item gets one block (the paper's
    baseline mapping); with load balancing, each item's sublists are grouped
    ``max_lists_per_block`` at a time.
    """
    block_sizes: list[int] = []
    gathered: list[np.ndarray] = []
    lb = index.load_balance
    for item in query.items:
        spans = index.spans_for_keywords(item)
        if not spans:
            continue
        if lb is None:
            block_sizes.append(sum(end - start for start, end in spans))
        else:
            for group in group_spans_into_blocks(spans, lb.max_lists_per_block):
                block_sizes.append(sum(end - start for start, end in group))
        gathered.append(index.gather(spans))

    if gathered:
        all_ids = np.concatenate(gathered)
        counts = np.bincount(all_ids, minlength=index.n_objects).astype(np.int64)
    else:
        counts = np.zeros(index.n_objects, dtype=np.int64)

    return QueryScanPlan(
        query_index=query_index,
        block_sizes=np.asarray(block_sizes or [0], dtype=np.int64),
        counts=counts,
        cpq_cost=derive_cpq_cost(counts, k),
    )


def build_match_launch(
    plans: list[QueryScanPlan],
    spec: DeviceSpec,
    threads_per_block: int,
    use_cpq: bool,
) -> KernelLaunch:
    """Assemble the batch's match kernel from per-query scan plans.

    Args:
        plans: One plan per query in the batch.
        spec: Target device (for warp-size-dependent estimates).
        threads_per_block: Launch configuration.
        use_cpq: Whether counters go through c-PQ (Gate branch + Hash-Table
            writes) or a plain Count Table (GEN-SPQ path).

    Returns:
        A single :class:`KernelLaunch` covering all queries' blocks — the
        fine-grained "m*s blocks in parallel" structure of the paper.
    """
    block_sizes = np.concatenate([plan.block_sizes for plan in plans])
    total_updates = float(sum(plan.cpq_cost.updates for plan in plans))

    atomic_conflicts = 0.0
    gate_passes = 0.0
    for plan in plans:
        hot = plan.hot_counts if plan.hot_counts is not None else plan.counts[plan.counts > 0]
        atomic_conflicts += conflicts_from_histogram(hot, spec.warp_size)
        gate_passes += plan.cpq_cost.gate_passes
    # An object's counter hits come from different postings lists scanned by
    # different blocks at different times; only a fraction of the histogram
    # conflicts are temporally coincident on real hardware.
    atomic_conflicts /= CONTENTION_DILUTION

    if use_cpq:
        # Per update: list read + BC atomic increment + Gate check. Atomics
        # execute inside the block's own timeline, so their base cost is
        # folded into the per-item cycles; only ZA/HT promotions (rare) are
        # charged as standalone contended atomics.
        atomic_ops = 2.0 * gate_passes
        taken = gate_passes / total_updates if total_updates else 0.0
        divergent = divergence_events(int(total_updates), taken, spec.warp_size)
        uncoalesced = gate_passes * HT_INSERT_BYTES
        cycles_per_item = 6.0
    else:
        # Plain Count Table: list read + one atomic per update, no Gate.
        atomic_ops = 0.0
        divergent = 0.0
        uncoalesced = 0.0
        cycles_per_item = 5.0

    return KernelLaunch(
        name="genie_match" if use_cpq else "genie_match_counttable",
        block_items=block_sizes,
        threads_per_block=threads_per_block,
        cycles_per_item=cycles_per_item,
        bytes_read=float(block_sizes.sum()) * POSTING_ENTRY_BYTES,
        bytes_written=0.0,
        uncoalesced_bytes=uncoalesced,
        atomic_ops=atomic_ops,
        atomic_conflicts=atomic_conflicts,
        divergent_warps=divergent,
    )


def build_select_launch(
    plans: list[QueryScanPlan],
    ht_capacity: int,
    k: int,
    threads_per_block: int,
) -> KernelLaunch:
    """The c-PQ selection kernel: one scan of each query's Hash Table.

    Each query contributes one block that reads its table once and keeps
    entries above ``AT - 1`` — the small, homogeneous selection step that
    replaces sorting (Theorem 3.1).
    """
    block_sizes = np.full(len(plans), int(ht_capacity), dtype=np.int64)
    return KernelLaunch(
        name="cpq_select",
        block_items=block_sizes,
        threads_per_block=threads_per_block,
        cycles_per_item=2.0,
        bytes_read=float(block_sizes.sum()) * HT_INSERT_BYTES,
        bytes_written=float(len(plans)) * k * 8.0,
    )
