"""Construction of postings lists from a corpus.

A postings list for keyword ``w`` is the ascending list of ids of objects
containing ``w``. All lists are flattened into one big *List Array* (the
layout GENIE keeps in GPU global memory, Fig. 3 of the paper) plus offset
metadata consumed by :class:`repro.core.inverted_index.InvertedIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import ID_DTYPE, Corpus


@dataclass
class FlatPostings:
    """Flattened postings lists.

    Attributes:
        keywords: Sorted unique keywords that have postings.
        offsets: ``offsets[i]:offsets[i+1]`` delimits keyword ``i``'s list
            inside ``list_array`` (length ``len(keywords) + 1``).
        list_array: All postings concatenated; each list is sorted by
            object id.
        build_ops: Abstract CPU operation count of the build, charged to the
            ``index_build`` stage by the engine.
    """

    keywords: np.ndarray
    offsets: np.ndarray
    list_array: np.ndarray
    build_ops: float

    @property
    def num_lists(self) -> int:
        """Number of postings lists."""
        return int(self.keywords.size)

    @property
    def total_entries(self) -> int:
        """Total postings entries across all lists."""
        return int(self.list_array.size)

    def list_for(self, index: int) -> np.ndarray:
        """The postings list at position ``index`` (a view)."""
        return self.list_array[self.offsets[index] : self.offsets[index + 1]]


def build_postings(corpus: Corpus) -> FlatPostings:
    """Build flattened postings lists for a corpus.

    The build sorts all ``(keyword, object)`` pairs by keyword (stable, so
    object ids stay ascending within a list) and computes list boundaries.

    Args:
        corpus: Objects to index.

    Returns:
        The flattened postings structure.
    """
    sizes = np.asarray([arr.size for arr in corpus.keyword_arrays], dtype=ID_DTYPE)
    total = int(sizes.sum())
    if total == 0:
        empty = np.empty(0, dtype=ID_DTYPE)
        return FlatPostings(
            keywords=empty, offsets=np.zeros(1, dtype=ID_DTYPE), list_array=empty, build_ops=1.0
        )

    all_keywords = np.concatenate([arr for arr in corpus.keyword_arrays if arr.size])
    all_objects = np.repeat(np.arange(len(corpus), dtype=ID_DTYPE), sizes)

    order = np.argsort(all_keywords, kind="stable")
    sorted_keywords = all_keywords[order]
    list_array = np.ascontiguousarray(all_objects[order])

    keywords, starts = np.unique(sorted_keywords, return_index=True)
    offsets = np.concatenate([starts, [total]]).astype(ID_DTYPE)

    # A sort-dominated build: ~ n log n comparisons plus the linear passes.
    build_ops = total * max(1.0, np.log2(total)) + 4.0 * total
    return FlatPostings(
        keywords=keywords.astype(ID_DTYPE),
        offsets=offsets,
        list_array=list_array,
        build_ops=float(build_ops),
    )
