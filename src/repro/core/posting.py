"""Construction of postings lists from a corpus.

A postings list for keyword ``w`` is the ascending list of ids of objects
containing ``w``. All lists are flattened into one big *List Array* (the
layout GENIE keeps in GPU global memory, Fig. 3 of the paper) plus offset
metadata consumed by :class:`repro.core.inverted_index.InvertedIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import ID_DTYPE, Corpus


@dataclass
class FlatPostings:
    """Flattened postings lists.

    Attributes:
        keywords: Sorted unique keywords that have postings.
        offsets: ``offsets[i]:offsets[i+1]`` delimits keyword ``i``'s list
            inside ``list_array`` (length ``len(keywords) + 1``).
        list_array: All postings concatenated; each list is sorted by
            object id.
        build_ops: Abstract CPU operation count of the build, charged to the
            ``index_build`` stage by the engine.
    """

    keywords: np.ndarray
    offsets: np.ndarray
    list_array: np.ndarray
    build_ops: float

    @property
    def num_lists(self) -> int:
        """Number of postings lists."""
        return int(self.keywords.size)

    @property
    def total_entries(self) -> int:
        """Total postings entries across all lists."""
        return int(self.list_array.size)

    def list_for(self, index: int) -> np.ndarray:
        """The postings list at position ``index`` (a view)."""
        return self.list_array[self.offsets[index] : self.offsets[index + 1]]

    def span_csr(self, max_sublist_len: int | None = None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Build the CSR span layout of the position map, vectorized.

        Every keyword's list is (optionally) split into sublists of at most
        ``max_sublist_len`` entries, exactly like
        :func:`repro.core.load_balance.split_span`, but for all keywords at
        once with array arithmetic.

        Args:
            max_sublist_len: Load-balancing split limit, or ``None`` for one
                span per keyword.

        Returns:
            ``(kw_span_offsets, span_starts, span_ends)`` where keyword row
            ``i`` owns spans ``kw_span_offsets[i]:kw_span_offsets[i + 1]``
            and span ``j`` covers ``list_array[span_starts[j]:span_ends[j]]``.
        """
        starts = self.offsets[:-1].astype(ID_DTYPE)
        ends = self.offsets[1:].astype(ID_DTYPE)
        if max_sublist_len is None:
            kw_span_offsets = np.arange(self.num_lists + 1, dtype=ID_DTYPE)
            return kw_span_offsets, starts.copy(), ends.copy()
        max_len = int(max_sublist_len)
        # ceil((end - start) / max_len); degenerate empty lists keep one span,
        # matching load_balance.split_span.
        n_spans = np.maximum(-((starts - ends) // max_len), 1)
        kw_span_offsets = np.zeros(self.num_lists + 1, dtype=ID_DTYPE)
        np.cumsum(n_spans, out=kw_span_offsets[1:])
        total = int(kw_span_offsets[-1])
        # Within-keyword span rank: 0, 1, ... for each keyword's chunk run.
        rank = np.arange(total, dtype=ID_DTYPE) - np.repeat(kw_span_offsets[:-1], n_spans)
        span_starts = np.repeat(starts, n_spans) + rank * max_len
        span_ends = np.minimum(span_starts + max_len, np.repeat(ends, n_spans))
        return kw_span_offsets, span_starts, span_ends


def build_postings(corpus: Corpus) -> FlatPostings:
    """Build flattened postings lists for a corpus.

    The build sorts all ``(keyword, object)`` pairs by keyword (stable, so
    object ids stay ascending within a list) and computes list boundaries.

    Args:
        corpus: Objects to index.

    Returns:
        The flattened postings structure.
    """
    sizes = np.asarray([arr.size for arr in corpus.keyword_arrays], dtype=ID_DTYPE)
    total = int(sizes.sum())
    if total == 0:
        empty = np.empty(0, dtype=ID_DTYPE)
        return FlatPostings(
            keywords=empty, offsets=np.zeros(1, dtype=ID_DTYPE), list_array=empty, build_ops=1.0
        )

    all_keywords = np.concatenate([arr for arr in corpus.keyword_arrays if arr.size])
    all_objects = np.repeat(np.arange(len(corpus), dtype=ID_DTYPE), sizes)

    order = np.argsort(all_keywords, kind="stable")
    sorted_keywords = all_keywords[order]
    list_array = np.ascontiguousarray(all_objects[order])

    keywords, starts = np.unique(sorted_keywords, return_index=True)
    offsets = np.concatenate([starts, [total]]).astype(ID_DTYPE)

    # A sort-dominated build: ~ n log n comparisons plus the linear passes.
    build_ops = total * max(1.0, np.log2(total)) + 4.0 * total
    return FlatPostings(
        keywords=keywords.astype(ID_DTYPE),
        offsets=offsets,
        list_array=list_array,
        build_ops=float(build_ops),
    )
