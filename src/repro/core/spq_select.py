"""SPQ: GPU bucket k-selection over a count array (paper Appendix A).

The paper's competitor selection method ("GPU fast k-selection from an
array as a priority queue", after Alabi et al.): repeatedly histogram the
candidate values into buckets, find the bucket containing the k-th element,
keep everything above it, and recurse into that bucket until exactly k
elements are isolated. Each iteration is a full pass over the surviving
candidates, which is precisely the multi-pass cost c-PQ avoids.

:func:`spq_topk` is functional (returns the exact top-k) and also reports
the pass structure so the simulator can charge the iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import TopKResult


@dataclass
class SpqTrace:
    """Cost-relevant trace of one bucket-selection run.

    Attributes:
        iterations: Bucket passes performed.
        elements_scanned: Total candidate elements touched across passes
            (first pass touches all ``n``).
    """

    iterations: int
    elements_scanned: int


def spq_topk(counts: np.ndarray, k: int, n_buckets: int = 256) -> tuple[TopKResult, SpqTrace]:
    """Select the top-k counts by iterative bucket partitioning.

    Args:
        counts: Final per-object counts.
        k: Result size.
        n_buckets: Histogram buckets per iteration.

    Returns:
        ``(result, trace)`` where ``result`` matches the exact top-k
        (count desc, id asc — same tie rule as c-PQ selection) and ``trace``
        records the pass structure for cost accounting.
    """
    counts = np.asarray(counts, dtype=np.int64)
    n = counts.size
    k = int(k)
    if n == 0 or k <= 0:
        empty = np.empty(0, dtype=np.int64)
        return TopKResult(ids=empty, counts=empty), SpqTrace(iterations=0, elements_scanned=0)

    ids = np.arange(n, dtype=np.int64)
    values = counts
    saved_ids: list[np.ndarray] = []
    remaining = min(k, n)
    scanned = 0
    iterations = 0

    while remaining > 0:
        iterations += 1
        scanned += int(values.size)
        lo, hi = int(values.min()), int(values.max())
        if lo == hi or values.size <= remaining:
            # Degenerate bucket: everything ties (or few enough remain);
            # take the needed number by ascending id for determinism.
            order = np.argsort(ids, kind="stable") if lo == hi else np.lexsort((ids, -values))
            saved_ids.append(ids[order[:remaining]])
            remaining = 0
            break
        # bucket 0 holds the max so "earlier bucket" == larger value.
        width = (hi - lo) / n_buckets
        bucket = np.minimum(((hi - values) / width).astype(np.int64), n_buckets - 1)
        counts_per_bucket = np.bincount(bucket, minlength=n_buckets)
        cumulative = np.cumsum(counts_per_bucket)
        pivot = int(np.searchsorted(cumulative, remaining))
        before = bucket < pivot
        saved_ids.append(ids[before])
        remaining -= int(before.sum())
        inside = bucket == pivot
        ids, values = ids[inside], values[inside]

    top_ids = np.concatenate(saved_ids) if saved_ids else np.empty(0, dtype=np.int64)
    top_counts = counts[top_ids]
    order = np.lexsort((top_ids, -top_counts))
    top_ids, top_counts = top_ids[order], top_counts[order]
    positive = top_counts > 0
    result = TopKResult(ids=top_ids[positive], counts=top_counts[positive])
    return result, SpqTrace(iterations=iterations, elements_scanned=scanned)
