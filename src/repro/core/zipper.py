"""The Gate: ZipperArray + AuditThreshold (Section III-C1).

The Gate decides which Bitmap-Counter updates are worth promoting to the
Hash Table. ``ZA[i]`` tracks (capped at ``k``) how many objects have reached
count ``i``; the AuditThreshold ``AT`` is the smallest index with
``ZA[AT] < k``. An update passes the Gate iff its new count is at least
``AT``. Lemma 3.1's invariant (``ZA[AT] < k`` and ``ZA[AT-1] >= k`` once
any object reaches ``AT-1``) is maintained by construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, InvariantError


class Gate:
    """ZipperArray + AuditThreshold for one query.

    Args:
        k: Result size the Gate is tuned for.
        count_bound: Maximum possible match count (sizes the ZipperArray).
    """

    def __init__(self, k: int, count_bound: int):
        if k < 1:
            raise ConfigError("k must be >= 1")
        if count_bound < 1:
            raise ConfigError("count_bound must be >= 1")
        self.k = int(k)
        self.count_bound = int(count_bound)
        # 1-based: za[i] corresponds to ZA[i] in the paper; index 0 unused.
        self._za = np.zeros(self.count_bound + 2, dtype=np.int64)
        self._at = 1
        self.passes = 0

    @property
    def audit_threshold(self) -> int:
        """The current AuditThreshold ``AT``."""
        return self._at

    def za(self, i: int) -> int:
        """``min(zc_i, k)`` — the ZipperArray entry for count value ``i``."""
        return int(min(self._za[i], self.k))

    def offer(self, new_count: int) -> bool:
        """Run lines 3–7 of Algorithm 1 for a counter that reached ``new_count``.

        Args:
            new_count: The value just produced by a Bitmap-Counter increment.

        Returns:
            ``True`` if the update passes the Gate (the caller must then
            insert/update the Hash-Table entry), else ``False``.
        """
        if new_count < 0 or new_count > self.count_bound:
            raise ConfigError(
                f"count {new_count} outside [0, {self.count_bound}]; count bound too small?"
            )
        if new_count < self._at:
            return False
        self.passes += 1
        self._za[new_count] += 1
        while self._at <= self.count_bound and self._za[self._at] >= self.k:
            self._at += 1
        return True

    def check_invariant(self) -> None:
        """Check Lemma 3.1: ``ZA[AT] < k``, and ``ZA[AT-1] >= k`` if AT > 1.

        Raises:
            InvariantError: If the invariant is violated. (Previously an
                ``assert``, which ``python -O`` would have stripped.)
        """
        if self._at <= self.count_bound and self._za[self._at] >= self.k:
            raise InvariantError(
                f"ZA[AT] must stay below k: ZA[{self._at}] = "
                f"{int(self._za[self._at])} >= {self.k}"
            )
        if self._at > 1 and self._za[self._at - 1] < self.k:
            raise InvariantError(
                f"ZA[AT-1] must have reached k: ZA[{self._at - 1}] = "
                f"{int(self._za[self._at - 1])} < {self.k}"
            )
