"""Multi-loading: querying datasets larger than device memory (Section III-D).

The corpus is partitioned; each part gets its own inverted index built on
the host. At query time the parts' indexes are swapped through device
memory in turn, the batch runs against each, and the per-part top-k results
are merged on the host (Fig. 6). Because parts partition the objects, an
object's count is computed entirely within its part and the merged result
is identical to a single-index run.

:class:`MultiLoadGenie` is the deprecated wrapper for this protocol; the
partitioning, swap-through-residency and merging now live in
:class:`repro.api.session.GenieSession` (``part_size=...`` /
``swap_parts=True``), which generalizes them to any number of resident
indexes of any modality.
"""

from __future__ import annotations

from repro.core.engine import GenieConfig
from repro.core.types import Corpus, Query, TopKResult
from repro.errors import ConfigError, QueryError
from repro.gpu.device import Device
from repro.gpu.host import HostCpu
from repro.gpu.stats import StageTimings


class MultiLoadGenie:
    """Deprecated wrapper: GENIE with the multiple-loading strategy.

    Thin shim over :class:`repro.api.session.GenieSession` with a
    ``"raw"`` model, ``part_size`` partitioning and the paper's
    swap-through protocol (each part is evicted right after its batch);
    results and stage timings are identical to the historical
    implementation. New code should call
    ``session.create_index(corpus, model="raw", part_size=...)``.

    Args:
        device: Shared simulated GPU.
        host: Shared simulated host CPU.
        config: Engine configuration applied to every part.
        part_size: Objects per part (the paper loads 6M-point parts on
            SIFT_LARGE).
    """

    def __init__(
        self,
        device: Device | None = None,
        host: HostCpu | None = None,
        config: GenieConfig | None = None,
        part_size: int = 100_000,
    ):
        from repro.api.session import GenieSession

        if part_size < 1:
            raise ConfigError("part_size must be >= 1")
        self.session = GenieSession(device=device, host=host, config=config)
        self.device = self.session.device
        self.host = self.session.host
        self.config = self.session.config
        self.part_size = int(part_size)
        self.handle = None
        self.last_profile: StageTimings | None = None

    @property
    def num_parts(self) -> int:
        """Number of corpus parts."""
        return self.handle.num_parts if self.handle is not None else 0

    def fit(self, corpus: Corpus) -> "MultiLoadGenie":
        """Partition the corpus and pre-build each part's index offline.

        Index construction happens here, on the host, once — at query time
        only the transfers are paid, matching the paper's protocol.
        """
        if self.handle is None:
            self.handle = self.session.create_index(
                corpus, model="raw", name="multiload",
                part_size=self.part_size, swap_parts=True,
            )
        else:
            self.handle.fit(corpus)  # refit replaces the parts in place
        return self

    def query(self, queries: list[Query], k: int | None = None) -> list[TopKResult]:
        """Run a batch against every part in turn and merge the results."""
        if self.handle is None or not self.handle.fitted:
            raise QueryError("multi-load engine must be fitted before querying")
        queries = list(queries)
        if not queries:
            raise QueryError("empty query batch")
        result = self.handle.search(queries, k=k)
        self.last_profile = result.profile
        return result.results
