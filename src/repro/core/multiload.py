"""Multi-loading: querying datasets larger than device memory (Section III-D).

The corpus is partitioned; each part gets its own inverted index built on
the host. At query time the parts' indexes are swapped through device
memory in turn, the batch runs against each, and the per-part top-k results
are merged on the host (Fig. 6). Because parts partition the objects, an
object's count is computed entirely within its part and the merged result
is identical to a single-index run.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import GenieConfig, GenieEngine
from repro.core.inverted_index import InvertedIndex
from repro.core.types import Corpus, Query, TopKResult
from repro.errors import ConfigError, QueryError
from repro.gpu.device import Device
from repro.gpu.host import HostCpu
from repro.gpu.stats import StageTimings


class MultiLoadGenie:
    """GENIE with the multiple-loading strategy.

    Args:
        device: Shared simulated GPU.
        host: Shared simulated host CPU.
        config: Engine configuration applied to every part.
        part_size: Objects per part (the paper loads 6M-point parts on
            SIFT_LARGE).
    """

    def __init__(
        self,
        device: Device | None = None,
        host: HostCpu | None = None,
        config: GenieConfig | None = None,
        part_size: int = 100_000,
    ):
        if part_size < 1:
            raise ConfigError("part_size must be >= 1")
        self.device = device if device is not None else Device()
        self.host = host if host is not None else HostCpu()
        self.config = config if config is not None else GenieConfig()
        self.part_size = int(part_size)
        self._parts: list[tuple[int, Corpus, InvertedIndex]] = []
        self.last_profile: StageTimings | None = None

    @property
    def num_parts(self) -> int:
        """Number of corpus parts."""
        return len(self._parts)

    def fit(self, corpus: Corpus) -> "MultiLoadGenie":
        """Partition the corpus and pre-build each part's index offline.

        Index construction happens here, on the host, once — at query time
        only the transfers are paid, matching the paper's protocol.
        """
        if not isinstance(corpus, Corpus):
            corpus = Corpus(corpus)
        self._parts = []
        for start in range(0, len(corpus), self.part_size):
            part = Corpus(corpus.keyword_arrays[start : start + self.part_size])
            index = InvertedIndex.build(part, load_balance=self.config.load_balance)
            self.host.charge_ops(index.build_ops, stage="index_build")
            self._parts.append((start, part, index))
        return self

    def query(self, queries: list[Query], k: int | None = None) -> list[TopKResult]:
        """Run a batch against every part in turn and merge the results."""
        if not self._parts:
            raise QueryError("multi-load engine must be fitted before querying")
        queries = list(queries)
        if not queries:
            raise QueryError("empty query batch")
        k = int(k if k is not None else self.config.k)

        profile = StageTimings()
        merged_ids = [[] for _ in queries]
        merged_counts = [[] for _ in queries]

        for offset, part, index in self._parts:
            engine = GenieEngine(device=self.device, host=self.host, config=self.config)
            transfer_before = self.device.timings.get("index_transfer")
            engine.attach_index(index, part)  # pays only the index_transfer stage
            try:
                part_results = engine.query(queries, k=k)
            finally:
                engine.release()
            profile.merge(engine.last_profile)
            profile.add("index_transfer", self.device.timings.get("index_transfer") - transfer_before)
            for qi, result in enumerate(part_results):
                merged_ids[qi].append(result.ids + offset)
                merged_counts[qi].append(result.counts)

        results = []
        merge_ops = 0.0
        for qi in range(len(queries)):
            ids = np.concatenate(merged_ids[qi]) if merged_ids[qi] else np.empty(0, dtype=np.int64)
            counts = (
                np.concatenate(merged_counts[qi]) if merged_counts[qi] else np.empty(0, dtype=np.int64)
            )
            order = np.lexsort((ids, -counts))[:k]
            results.append(TopKResult(ids=ids[order], counts=counts[order]))
            merge_ops += ids.size * max(1.0, np.log2(max(ids.size, 2)))
        self.host.charge_ops(merge_ops, stage="result_merge")
        profile.add("result_merge", merge_ops / self.host.spec.ops_per_second)

        self.last_profile = profile
        return results
