"""Reference implementation of the match-count model (Definition 2.1).

This module is the executable specification: slow, obviously-correct Python
used by tests to validate every accelerated path (inverted-index scan, c-PQ,
baselines). ``MC(Q, O)`` sums, over the query's items, the number of the
object's elements contained in each item.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import Corpus, Query


def item_count(item: np.ndarray, obj: np.ndarray) -> int:
    """``C(r_i, O)``: how many of the object's elements item ``r_i`` contains.

    Args:
        item: Keyword set of one query item.
        obj: Keyword set of one object.

    Returns:
        ``|obj ∩ item|``.
    """
    if item.size == 0 or obj.size == 0:
        return 0
    return int(np.intersect1d(item, obj, assume_unique=False).size)


def match_count(query: Query, obj: np.ndarray) -> int:
    """``MC(Q, O)``: the match-count model of Definition 2.1."""
    return sum(item_count(item, obj) for item in query.items)


def match_counts_all(query: Query, corpus: Corpus) -> np.ndarray:
    """Match counts of every object in a corpus against one query.

    Returns:
        An ``int64`` array of length ``len(corpus)``.
    """
    return np.asarray([match_count(query, obj) for obj in corpus], dtype=np.int64)


def brute_force_topk(query: Query, corpus: Corpus, k: int) -> list[tuple[int, int]]:
    """Exact top-k under the match-count model, by full scan.

    Ties at the k-th count are broken by ascending object id so the result
    is deterministic; accelerated paths are tested against the returned
    *count multiset*, not the id choice within a tie.

    Returns:
        ``(object_id, count)`` pairs sorted by count descending, id
        ascending.
    """
    counts = match_counts_all(query, corpus)
    order = np.lexsort((np.arange(len(counts)), -counts))
    top = order[: max(0, int(k))]
    return [(int(i), int(counts[i])) for i in top]
