"""Fused whole-batch match counting (the vectorized engine hot path).

GENIE's match-count model lets thousands of queries share one scan
infrastructure; this module is the host-side realization of that idea. Where
:func:`repro.core.scan_kernel.plan_query_scan` walks one query at a time
(dict lookups per keyword, one full-corpus ``bincount`` per query), the
batch scanner processes the *whole batch* as flat arrays:

1. every query item's keywords are resolved to CSR keyword rows with one
   fancy-indexed lookup (:meth:`InvertedIndex.keyword_rows`),
2. keyword rows expand to span rows and then to one flat object-id stream
   in ``(query, item, span)`` order — a single gather of all queries'
   postings,
3. the count matrix is computed tile-by-tile with a fused-key ``bincount``
   over ``query_row * n_objects + object_id``; tiles are sized so one
   tile's count rows stay cache-resident,
4. per-query ``block_sizes`` fall out of segmented reductions over the same
   span stream, and the c-PQ cost statistics, positive-count histograms and
   (optionally) the top-k selection are all computed per tile while the
   rows are still hot in cache.

The resulting :class:`~repro.core.scan_kernel.QueryScanPlan` objects are
value-identical to the per-query planner's (same block layout, same counts,
same cost state), so the simulated :class:`~repro.gpu.kernel.KernelLaunch`
costs are bit-for-bit unchanged — only the host wall-clock drops. The
optional integrated selection returns exactly what
:func:`repro.core.selection.topk_from_counts` returns row by row, including
the count-desc / id-asc tie-break (Theorem 3.1 pins the threshold to the
k-th count, so candidates are extracted by threshold instead of a full
``argpartition``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.inverted_index import InvertedIndex, ragged_slices
from repro.core.scan_kernel import QueryScanPlan
from repro.core.selection import CpqCostState
from repro.core.types import ID_DTYPE, Query, TopKResult

#: Cap on the fused bincount key domain (count-matrix cells per tile). Also
#: the pipeline's cache budget: 512k int64 cells = 4 MB, so a tile's count
#: rows stay resident while cost statistics and selection read them back.
DEFAULT_MAX_FUSED_CELLS = 512 * 1024

#: Average span length above which the postings stream is gathered by
#: concatenating List-Array views (pure memcpy) instead of materializing a
#: fancy-index array; short spans amortize better through the index array.
_CONCAT_MIN_AVG_SPAN = 32

#: Block-size array used for queries that scan nothing (matches
#: ``plan_query_scan``'s ``block_sizes or [0]``).
_EMPTY_BLOCKS = np.zeros(1, dtype=np.int64)
_EMPTY_BLOCKS.setflags(write=False)

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_IDS.setflags(write=False)


@dataclass
class BatchScanPlan:
    """Work layout (and optional results) of a whole batch's scan.

    Attributes:
        plans: One :class:`QueryScanPlan` per query, in batch order; each
            plan's ``counts`` is a row view into ``count_matrix``.
        count_matrix: ``(n_queries, n_objects)`` final match counts.
        results: Top-k results per query when the scan was planned with
            ``select=True``, else ``None``.
    """

    plans: list[QueryScanPlan]
    count_matrix: np.ndarray
    results: list[TopKResult] | None = None


def plan_batch_scan(
    index: InvertedIndex,
    queries: list[Query],
    k: int,
    max_fused_cells: int = DEFAULT_MAX_FUSED_CELLS,
    select: bool = False,
) -> BatchScanPlan:
    """Lay out block structure and compute final counts for a whole batch.

    Args:
        index: The fitted inverted index (CSR position map).
        queries: The batch.
        k: Result size (feeds the c-PQ cost derivation and selection).
        max_fused_cells: Upper bound on one tile's fused ``bincount``
            domain; also the tile size of the cache-resident pipeline.
        select: Also compute each query's top-k while tiles are cache-hot.

    Returns:
        The batch plan; ``plans[i]`` equals
        ``plan_query_scan(index, queries[i], i, k)`` value-for-value, and
        ``results[i]`` (when selected) equals
        ``topk_from_counts(count_matrix[i], k)``.
    """
    n_queries = len(queries)
    n_objects = index.n_objects

    span_rows, span_query, span_item = _resolve_spans(index, queries)
    span_lengths = index.span_ends[span_rows] - index.span_starts[span_rows]
    block_sizes = _segmented_block_sizes(index, span_lengths, span_query, span_item, n_queries)

    sweep = _tiled_sweep(
        index, span_rows, span_lengths, span_query, n_queries, int(k), max_fused_cells, select
    )

    plans = [
        QueryScanPlan(
            query_index=qi,
            block_sizes=block_sizes[qi],
            counts=sweep.count_matrix[qi],
            cpq_cost=sweep.cost_states[qi],
            hot_counts=sweep.hot_counts[qi],
        )
        for qi in range(n_queries)
    ]
    return BatchScanPlan(plans=plans, count_matrix=sweep.count_matrix, results=sweep.results)


# ----------------------------------------------------------------------
# span resolution and block layout


def _resolve_spans(
    index: InvertedIndex, queries: list[Query]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resolve every query item's keywords to one flat span stream.

    Returns:
        ``(span_rows, span_query, span_item)``: for each resolved span its
        row in the index's span table, owning query, and owning item (a
        batch-global item counter). The stream is ordered by query, then
        item, then the item's keyword order, then span order — the same
        order ``plan_query_scan`` visits spans.
    """
    keyword_chunks: list[np.ndarray] = []
    item_sizes: list[int] = []
    item_query: list[int] = []
    for qi, query in enumerate(queries):
        for item in query.items:
            keyword_chunks.append(item)
            item_sizes.append(item.size)
            item_query.append(qi)

    empty = np.empty(0, dtype=ID_DTYPE)
    if not keyword_chunks:
        return empty, empty, empty

    kw_flat = np.concatenate(keyword_chunks)
    kw_item = np.repeat(
        np.arange(len(item_sizes), dtype=ID_DTYPE), np.asarray(item_sizes, dtype=ID_DTYPE)
    )
    item_query_arr = np.asarray(item_query, dtype=ID_DTYPE)

    rows, found = index.keyword_rows(kw_flat)
    rows, kw_item = rows[found], kw_item[found]
    span_rows, n_spans = index.span_rows_for_keyword_rows(rows)
    span_item = np.repeat(kw_item, n_spans)
    span_query = item_query_arr[span_item] if span_item.size else empty
    return span_rows, span_query, span_item


def _segmented_block_sizes(
    index: InvertedIndex,
    span_lengths: np.ndarray,
    span_query: np.ndarray,
    span_item: np.ndarray,
    n_queries: int,
) -> list[np.ndarray]:
    """Per-query block sizes from segmented reductions over the span stream.

    Mirrors ``plan_query_scan``'s layout rule: without load balancing one
    block per item with postings; with load balancing the item's spans are
    grouped ``max_lists_per_block`` at a time, in stream order.
    """
    if span_item.size == 0:
        return [_EMPTY_BLOCKS] * n_queries

    is_new_item = np.empty(span_item.size, dtype=bool)
    is_new_item[0] = True
    np.not_equal(span_item[1:], span_item[:-1], out=is_new_item[1:])

    lb = index.load_balance
    if lb is None:
        block_starts = np.nonzero(is_new_item)[0]
    else:
        item_first = np.nonzero(is_new_item)[0]
        spans_per_item = np.diff(np.append(item_first, span_item.size))
        within_item = np.arange(span_item.size, dtype=ID_DTYPE) - np.repeat(
            item_first, spans_per_item
        )
        block_starts = np.nonzero(is_new_item | (within_item % lb.max_lists_per_block == 0))[0]

    all_block_sizes = np.add.reduceat(span_lengths, block_starts)
    block_query = span_query[block_starts]
    bounds = np.searchsorted(block_query, np.arange(n_queries + 1))
    return [
        all_block_sizes[bounds[qi] : bounds[qi + 1]] if bounds[qi] < bounds[qi + 1] else _EMPTY_BLOCKS
        for qi in range(n_queries)
    ]


# ----------------------------------------------------------------------
# the tiled count / cost / selection sweep


@dataclass
class _SweepResult:
    count_matrix: np.ndarray
    cost_states: list[CpqCostState]
    hot_counts: list[np.ndarray]
    results: list[TopKResult] | None


def _gather_stream(index: InvertedIndex, span_rows: np.ndarray, span_lengths: np.ndarray) -> np.ndarray:
    """The batch's flat object-id stream (32-bit), in span order."""
    list_array32 = index.list_array32
    starts = index.span_starts[span_rows]
    total = int(span_lengths.sum())
    if span_rows.size and total >= _CONCAT_MIN_AVG_SPAN * span_rows.size:
        ends = starts + span_lengths
        return np.concatenate(
            [list_array32[s:e] for s, e in zip(starts.tolist(), ends.tolist())]
        )
    return list_array32[ragged_slices(starts, span_lengths)]


def _tiled_sweep(
    index: InvertedIndex,
    span_rows: np.ndarray,
    span_lengths: np.ndarray,
    span_query: np.ndarray,
    n_queries: int,
    k: int,
    max_fused_cells: int,
    select: bool,
) -> _SweepResult:
    """Count, cost-derive and (optionally) select, one cache-sized tile at a time."""
    n_objects = index.n_objects
    if n_objects == 0 or span_rows.size == 0:
        count_matrix = np.zeros((n_queries, n_objects), dtype=np.int64)
        zero_cost = CpqCostState(audit_threshold=1, ht_entries=0, gate_passes=0.0, updates=0)
        return _SweepResult(
            count_matrix=count_matrix,
            cost_states=[zero_cost] * n_queries,
            hot_counts=[_EMPTY_IDS] * n_queries,
            results=[TopKResult(ids=_EMPTY_IDS, counts=_EMPTY_IDS)] * n_queries
            if select
            else None,
        )

    stream = _gather_stream(index, span_rows, span_lengths)
    # Per-query entry ranges of the stream (ordered by batch position).
    per_query_entries = np.bincount(
        span_query, weights=span_lengths.astype(np.float64), minlength=n_queries
    ).astype(np.int64)
    entry_bounds = np.zeros(n_queries + 1, dtype=np.int64)
    np.cumsum(per_query_entries, out=entry_bounds[1:])

    count_matrix = np.empty((n_queries, n_objects), dtype=np.int64)
    kk = min(k, n_objects)
    take = kk
    at_all = np.empty(n_queries, dtype=np.int64)
    ht_all = np.empty(n_queries, dtype=np.int64)
    gates_all = np.empty(n_queries, dtype=np.float64)
    hot_counts: list[np.ndarray] = [_EMPTY_IDS] * n_queries
    results: list[TopKResult] | None = [None] * n_queries if select else None  # type: ignore[list-item]

    span_base = span_query * n_objects
    rows_per_tile = max(1, int(max_fused_cells) // max(n_objects, 1))
    for lo in range(0, n_queries, rows_per_tile):
        hi = min(lo + rows_per_tile, n_queries)
        tile = count_matrix[lo:hi]
        # One sparse extraction of the positive counts serves everything
        # downstream: AuditThresholds, nonzero totals, Gate-pass sums,
        # Hash-Table histograms for the launch cost, and top-k candidates.
        hot_q, hot_ids, hot_vals = _count_tile(
            tile, stream, entry_bounds, span_base, span_query, span_lengths, lo, hi, n_objects
        )
        hot_bounds = np.searchsorted(hot_q, np.arange(hi - lo + 1))
        nonzero_tile = np.diff(hot_bounds)

        # AuditThreshold: the k-th largest count per row (Theorem 3.1),
        # via a per-row histogram of the (small, bounded) positive counts.
        at_tile = _kth_largest(hot_q, hot_vals, nonzero_tile, tile, kk) + 1
        at_all[lo:hi] = at_tile
        ht_all[lo:hi] = np.minimum(nonzero_tile, k * at_tile)

        lo_level = np.maximum(at_tile - 1, 1)
        passing = hot_vals >= lo_level[hot_q]
        passes_high = np.bincount(
            hot_q[passing],
            weights=(hot_vals[passing] - lo_level[hot_q[passing]] + 1).astype(np.float64),
            minlength=hi - lo,
        )
        passes_low = np.minimum(nonzero_tile, k) * np.maximum(at_tile - 1, 0)
        gates_all[lo:hi] = passes_high + passes_low

        for ti in range(hi - lo):
            a, b = hot_bounds[ti], hot_bounds[ti + 1]
            hot_counts[lo + ti] = hot_vals[a:b]

        if select:
            thresholds = at_tile - 1
            cand = hot_vals >= np.maximum(thresholds, 1)[hot_q]
            cand_q, cand_ids, cand_vals = hot_q[cand], hot_ids[cand], hot_vals[cand]
            cand_bounds = np.searchsorted(cand_q, np.arange(hi - lo + 1))
            for ti in range(hi - lo):
                a, b = cand_bounds[ti], cand_bounds[ti + 1]
                results[lo + ti] = _select_row(  # type: ignore[index]
                    cand_ids[a:b], cand_vals[a:b], int(thresholds[ti]), take
                )

    cost_states = [
        CpqCostState(
            audit_threshold=int(at_all[qi]),
            ht_entries=int(ht_all[qi]),
            gate_passes=float(gates_all[qi]),
            updates=int(per_query_entries[qi]),
        )
        for qi in range(n_queries)
    ]
    return _SweepResult(
        count_matrix=count_matrix,
        cost_states=cost_states,
        hot_counts=hot_counts,
        results=results,
    )


def _count_tile(
    tile: np.ndarray,
    stream: np.ndarray,
    entry_bounds: np.ndarray,
    span_base: np.ndarray,
    span_query: np.ndarray,
    span_lengths: np.ndarray,
    lo: int,
    hi: int,
    n_objects: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fill ``tile`` with rows ``lo:hi`` of the count matrix.

    Returns:
        ``(hot_q, hot_ids, hot_vals)``: the tile's positive counts in
        (row, ascending-id) order — the sparse view every downstream
        statistic is computed from.

    Three fused-key strategies, picked by the tile's stream density:

    * sparse (stream much smaller than the tile): ``np.unique`` of the
      fused keys yields the positive cells directly; the dense tile is a
      zero-fill plus a scatter, and no dense pass ever reads it back,
    * fused ``bincount`` over the fused keys (the default),
    * one plain ``bincount`` per row when the stream is so dense that
      building fused keys would cost more than the per-row calls.
    """
    a, b = int(entry_bounds[lo]), int(entry_bounds[hi])
    if a == b:
        tile[:] = 0
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    if b - a > tile.size:
        for ti in range(hi - lo):
            tile[ti] = np.bincount(
                stream[entry_bounds[lo + ti] : entry_bounds[lo + ti + 1]], minlength=n_objects
            )
        hot_q, hot_ids = np.nonzero(tile > 0)
        return hot_q, hot_ids, tile[hot_q, hot_ids]

    sa, sb = np.searchsorted(span_query, [lo, hi])
    fused_dtype = np.int32 if (hi - lo) * n_objects < 2**31 else np.int64
    tile_base = (span_base[sa:sb] - lo * n_objects).astype(fused_dtype)
    fused = stream[a:b].astype(fused_dtype, copy=False) + np.repeat(tile_base, span_lengths[sa:sb])
    if (b - a) * 4 <= tile.size:
        keys, hot_vals = np.unique(fused, return_counts=True)
        keys = keys.astype(np.int64, copy=False)
        tile[:] = 0
        tile.reshape(-1)[keys] = hot_vals
        return keys // n_objects, keys % n_objects, hot_vals
    tile[:] = np.bincount(fused, minlength=tile.size).reshape(tile.shape)
    hot_q, hot_ids = np.nonzero(tile > 0)
    return hot_q, hot_ids, tile[hot_q, hot_ids]


#: Count bound above which the histogram k-th-largest falls back to a
#: dense row partition (counts are normally tiny: at most the query size).
_HIST_KTH_MAX_BOUND = 4096


def _kth_largest(
    hot_q: np.ndarray,
    hot_vals: np.ndarray,
    nonzero_tile: np.ndarray,
    tile: np.ndarray,
    kk: int,
) -> np.ndarray:
    """Per-row k-th largest count of a tile (0 when fewer than ``kk`` hot).

    Match counts are bounded by the query size, so a per-row histogram of
    the positive counts answers the selection with tiny arrays instead of
    partitioning dense rows.
    """
    n_rows = tile.shape[0]
    bound = int(hot_vals.max()) if hot_vals.size else 0
    if bound == 0:
        return np.zeros(n_rows, dtype=np.int64)
    if bound > _HIST_KTH_MAX_BOUND:
        n = tile.shape[1]
        return np.partition(tile, n - kk, axis=1)[:, n - kk]
    hist = np.bincount(
        hot_q * (bound + 1) + hot_vals, minlength=n_rows * (bound + 1)
    ).reshape(n_rows, bound + 1)
    # ge[r, c-1]: does row r have at least kk objects with count >= c?
    ge = np.cumsum(hist[:, ::-1], axis=1)[:, ::-1][:, 1:] >= kk
    kth = np.where(ge.any(axis=1), bound - np.argmax(ge[:, ::-1], axis=1), 0)
    # Rows whose positives cannot reach kk still select 0 via the zeros.
    return np.where(nonzero_tile >= kk, kth, 0)


def _select_row(
    cand_ids: np.ndarray, cand_counts: np.ndarray, threshold: int, take: int
) -> TopKResult:
    """Assemble one row's top-k from its threshold-filtered candidates.

    ``cand_ids`` holds (in ascending id order) every object with a count
    ``>= max(threshold, 1)``; exactly the candidate set
    :func:`repro.core.selection.topk_from_counts` draws from, since
    zero-count objects never surface and sub-threshold objects never win.
    """
    sure = cand_counts > threshold
    top_ids = cand_ids[sure]
    top_counts = cand_counts[sure]
    if threshold >= 1 and top_ids.size < take:
        ties = np.nonzero(cand_counts == threshold)[0][: take - top_ids.size]
        top_ids = np.concatenate([top_ids, cand_ids[ties]])
        top_counts = np.concatenate([top_counts, cand_counts[ties]])
    order = np.lexsort((top_ids, -top_counts))
    return TopKResult(ids=top_ids[order], counts=top_counts[order], threshold=threshold)
