"""The Bitmap Counter (BC): c-PQ's lower level (Section III-C).

One small saturating counter per object, bit-packed so that a query costs
``n_objects * bits / 8`` bytes instead of the 4 bytes/object a plain Count
Table needs. The packing is real (counters share 32-bit words), because the
memory arithmetic of Table IV depends on it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

#: Bit widths a counter may use; must divide the 32-bit word.
_ALLOWED_BITS = (1, 2, 4, 8, 16, 32)


def bits_for_bound(count_bound: int) -> int:
    """Smallest allowed bit width whose max value reaches ``count_bound``.

    Args:
        count_bound: Largest count any object can attain (e.g. the number
            of hash functions for LSH data).

    Returns:
        A width from ``{1, 2, 4, 8, 16, 32}``.
    """
    if count_bound < 0:
        raise ConfigError("count bound must be non-negative")
    for bits in _ALLOWED_BITS:
        if (1 << bits) - 1 >= count_bound:
            return bits
    raise ConfigError(f"count bound {count_bound} exceeds 32-bit counters")


class BitmapCounter:
    """Bit-packed saturating counters, one per object.

    Args:
        n_objects: Number of counters.
        count_bound: Largest value a counter must represent.
        bits: Explicit bit width; derived from ``count_bound`` when omitted.
    """

    def __init__(self, n_objects: int, count_bound: int, bits: int | None = None):
        if n_objects < 0:
            raise ConfigError("n_objects must be non-negative")
        self.n_objects = int(n_objects)
        self.count_bound = int(count_bound)
        self.bits = int(bits) if bits is not None else bits_for_bound(count_bound)
        if self.bits not in _ALLOWED_BITS:
            raise ConfigError(f"bits must be one of {_ALLOWED_BITS}")
        if (1 << self.bits) - 1 < self.count_bound:
            raise ConfigError(
                f"{self.bits}-bit counters cannot reach count bound {self.count_bound}"
            )
        self._per_word = 32 // self.bits
        self._mask = np.uint32((1 << self.bits) - 1)
        n_words = (self.n_objects + self._per_word - 1) // self._per_word
        self._words = np.zeros(max(n_words, 1), dtype=np.uint32)

    @property
    def max_value(self) -> int:
        """Saturation value of a counter."""
        return (1 << self.bits) - 1

    @property
    def nbytes(self) -> int:
        """Bytes of storage — the per-query BC footprint in Table IV."""
        return int(self._words.nbytes)

    def _locate(self, obj_id: int) -> tuple[int, np.uint32]:
        if not 0 <= obj_id < self.n_objects:
            raise IndexError(f"object id {obj_id} out of range [0, {self.n_objects})")
        word, slot = divmod(obj_id, self._per_word)
        return word, np.uint32(slot * self.bits)

    def get(self, obj_id: int) -> int:
        """Current value of one counter."""
        word, shift = self._locate(obj_id)
        return int((self._words[word] >> shift) & self._mask)

    def increment(self, obj_id: int) -> int:
        """Atomically (in the simulated sense) add one; returns the new value.

        Saturates at :attr:`max_value` instead of wrapping.
        """
        word, shift = self._locate(obj_id)
        current = (self._words[word] >> shift) & self._mask
        if current >= self._mask:
            return int(current)
        self._words[word] = (self._words[word] & ~(self._mask << shift)) | (
            (current + np.uint32(1)) << shift
        )
        return int(current) + 1

    def get_many(self, obj_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`get` over an id array."""
        ids = np.asarray(obj_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.n_objects):
            raise IndexError("object id out of range")
        words = self._words[ids // self._per_word]
        shifts = ((ids % self._per_word) * self.bits).astype(np.uint32)
        return ((words >> shifts) & self._mask).astype(np.int64)

    def load_counts(self, counts: np.ndarray) -> None:
        """Bulk-load final counts (the vectorized fast path's shortcut).

        Values above :attr:`max_value` saturate.
        """
        counts = np.minimum(np.asarray(counts, dtype=np.int64), self.max_value)
        if counts.shape != (self.n_objects,):
            raise ConfigError("counts must have one entry per object")
        self._words[:] = 0
        ids = np.arange(self.n_objects, dtype=np.int64)
        words = ids // self._per_word
        shifts = ((ids % self._per_word) * self.bits).astype(np.uint32)
        np.bitwise_or.at(self._words, words, counts.astype(np.uint32) << shifts)

    def to_array(self) -> np.ndarray:
        """All counter values as a plain ``int64`` array."""
        return self.get_many(np.arange(self.n_objects, dtype=np.int64))

    def reset(self) -> None:
        """Zero all counters."""
        self._words[:] = 0
