"""The GENIE engine: batched top-k match-count search on the simulated GPU.

:class:`GenieEngine` ties the pieces together in the paper's pipeline order
(Fig. 3 / Table I):

1. ``fit`` — build the inverted index on the host, transfer it to device
   global memory,
2. ``query`` — per batch: transfer the queries, launch the match kernel
   (postings scan into c-PQ or a plain Count Table), launch the selection
   step, and transfer results back.

The functional work of a batch is array-native end to end: one call to
:func:`repro.core.batch_scan.plan_batch_scan` resolves every query's
postings through the CSR position map, computes the whole batch's count
matrix with fused ``bincount`` tiles, and (with ``select=True``, the
engine's default) selects every query's top-k while each tile is still
cache-resident. The per-query reference path (``reference_cpq=True``) runs
the exact Algorithm-1 c-PQ and is retained for equivalence testing.

The engine is also the home of the memory accounting that reproduces
Table IV: per-batch structures are really allocated on the simulated
device, so an oversized batch raises
:class:`~repro.errors.GpuOutOfMemoryError` just as it would overflow a real
12 GB card.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.batch_scan import plan_batch_scan
from repro.core.bitmap_counter import bits_for_bound
from repro.core.cpq import CountPriorityQueue, hash_table_capacity
from repro.core.count_table import COUNT_TABLE_ENTRY_BYTES, SPQ_WORKSPACE_BYTES
from repro.core.inverted_index import InvertedIndex
from repro.core.load_balance import LoadBalanceConfig
from repro.core.scan_kernel import (
    HT_INSERT_BYTES,
    build_match_launch,
    build_select_launch,
)
from repro.core.spq_select import spq_topk
from repro.core.types import Corpus, Query, TopKResult
from repro.errors import ConfigError, QueryError
from repro.gpu.device import Device
from repro.gpu.host import HostCpu
from repro.gpu.kernel import KernelLaunch
from repro.gpu.stats import StageTimings, timings_delta

#: Modeled bytes per Hash-Table slot on the real device (4B key + 4B value).
_HT_SLOT_BYTES = 8

#: Result bytes per query entry sent back to the host (id + count).
_RESULT_ENTRY_BYTES = 8


@dataclass(frozen=True)
class GenieConfig:
    """Engine configuration.

    Attributes:
        k: Default result size.
        use_cpq: ``True`` for GENIE proper; ``False`` gives the GEN-SPQ
            variant (plain Count Table + bucket k-selection).
        bits: Bitmap-Counter width override (ablation knob).
        count_bound: Match-count upper bound; derived from each batch's
            queries when ``None``.
        load_balance: Postings-list splitting configuration, or ``None``.
        threads_per_block: Match-kernel launch configuration.
        expired_overwrite: Robin Hood expired-overwrite modification
            (ablation knob).
        reference_cpq: Run the exact per-update Algorithm-1 c-PQ instead of
            the vectorized path. Slow; used by tests.
    """

    k: int = 100
    use_cpq: bool = True
    bits: int | None = None
    count_bound: int | None = None
    load_balance: LoadBalanceConfig | None = None
    threads_per_block: int = 256
    expired_overwrite: bool = True
    reference_cpq: bool = False

    def with_(self, **changes) -> "GenieConfig":
        """A copy of this config with fields replaced.

        Raises:
            ConfigError: If a keyword does not name a config field.
        """
        unknown = [key for key in changes if key not in self.__dataclass_fields__]
        if unknown:
            raise ConfigError(
                f"unknown GenieConfig field(s): {', '.join(sorted(unknown))}; "
                f"valid fields: {', '.join(self.__dataclass_fields__)}"
            )
        return replace(self, **changes)


def per_query_device_bytes(n_objects: int, k: int, count_bound: int, bits: int | None, use_cpq: bool) -> int:
    """Device bytes one in-flight query occupies (Table IV's quantity).

    GENIE: the bit-packed Bitmap Counter plus the ``O(k * count_bound)``
    Hash Table and the ZipperArray. GEN-SPQ: a full 32-bit Count Table plus
    the explicit id/scratch workspace its bucket selection requires.
    """
    if use_cpq:
        width = bits if bits is not None else bits_for_bound(count_bound)
        bc_bytes = -(-n_objects * width // 8)  # ceil division
        ht_bytes = hash_table_capacity(k, count_bound) * _HT_SLOT_BYTES
        za_bytes = (count_bound + 2) * 4
        return bc_bytes + ht_bytes + za_bytes
    return n_objects * (COUNT_TABLE_ENTRY_BYTES + SPQ_WORKSPACE_BYTES)


class GenieEngine:
    """Batched GENIE similarity search on a simulated GPU.

    Args:
        device: Simulated GPU (a fresh default device when omitted).
        host: Simulated host CPU.
        config: Engine configuration.
    """

    def __init__(
        self,
        device: Device | None = None,
        host: HostCpu | None = None,
        config: GenieConfig | None = None,
    ):
        self.device = device if device is not None else Device()
        self.host = host if host is not None else HostCpu()
        self.config = config if config is not None else GenieConfig()
        self.index: InvertedIndex | None = None
        self.corpus: Corpus | None = None
        self._index_darray = None
        self.last_profile: StageTimings | None = None

    # ------------------------------------------------------------------
    # fitting

    def fit(self, corpus: Corpus) -> "GenieEngine":
        """Build the inverted index on the host and move it to the device."""
        if not isinstance(corpus, Corpus):
            corpus = Corpus(corpus)
        index = InvertedIndex.build(corpus, load_balance=self.config.load_balance)
        self.host.charge_ops(index.build_ops, stage="index_build")
        return self.attach_index(index, corpus)

    def attach_index(self, index: InvertedIndex, corpus: Corpus) -> "GenieEngine":
        """Adopt a pre-built index: transfer it to the device without rebuilding.

        The multi-loading path uses this to swap offline-built part indexes
        through device memory, paying only the ``index_transfer`` stage.
        """
        self.corpus = corpus
        self.index = index
        if self._index_darray is not None and self._index_darray.is_live:
            self._index_darray.free()
        # The real List Array holds 32-bit ids; transfer that footprint.
        device_view = index.list_array.astype(np.int32)
        self._index_darray = self.device.to_device(device_view, label="list_array", stage="index_transfer")
        return self

    def release(self) -> None:
        """Free the device-resident index (used by session residency)."""
        if self._index_darray is not None and self._index_darray.is_live:
            self._index_darray.free()
        self._index_darray = None

    @property
    def index_resident(self) -> bool:
        """Whether the attached index currently occupies device memory."""
        return self._index_darray is not None and self._index_darray.is_live

    # ------------------------------------------------------------------
    # sizing

    def _count_bound(self, queries: list[Query]) -> int:
        if self.config.count_bound is not None:
            return max(1, int(self.config.count_bound))
        return max(1, max((q.count_bound() for q in queries), default=1))

    def per_query_bytes(self, count_bound: int | None = None, k: int | None = None) -> int:
        """Per-query device footprint under the current configuration."""
        if self.index is None:
            raise ConfigError("engine must be fitted first")
        bound = max(1, int(count_bound if count_bound is not None else (self.config.count_bound or 1)))
        return per_query_device_bytes(
            self.index.n_objects,
            int(k if k is not None else self.config.k),
            bound,
            self.config.bits,
            self.config.use_cpq,
        )

    def max_batch_size(self, count_bound: int, k: int | None = None) -> int:
        """Largest batch the device can hold next to the resident index."""
        return int(self.device.memory.free // max(1, self.per_query_bytes(count_bound, k)))

    # ------------------------------------------------------------------
    # querying

    def query(self, queries: list[Query], k: int | None = None) -> list[TopKResult]:
        """Run a batch of queries; returns one :class:`TopKResult` per query.

        Raises:
            QueryError: If the engine is unfitted or the batch is empty.
            GpuOutOfMemoryError: If the batch's c-PQ / Count-Table
                structures do not fit in device memory.
        """
        if self.index is None or self.corpus is None:
            raise QueryError("engine must be fitted before querying")
        queries = list(queries)
        if not queries:
            raise QueryError("empty query batch")
        k = int(k if k is not None else self.config.k)
        if k < 1:
            raise QueryError("k must be >= 1")
        count_bound = self._count_bound(queries)

        before = self.device.timings.copy()
        host_before = self.host.timings.copy()

        batch_bytes = len(queries) * per_query_device_bytes(
            self.index.n_objects, k, count_bound, self.config.bits, self.config.use_cpq
        )
        batch_alloc = self.device.memory.alloc(batch_bytes, label="query_batch_state")
        try:
            results = self._run_batch(queries, k, count_bound)
        finally:
            self.device.memory.release(batch_alloc)

        self.last_profile = timings_delta(before, self.device.timings)
        self.last_profile.merge(timings_delta(host_before, self.host.timings))
        return results

    def _run_batch(self, queries: list[Query], k: int, count_bound: int) -> list[TopKResult]:
        query_bytes = sum(q.num_keywords for q in queries) * 4
        self.device.charge_seconds(query_bytes / self.device.spec.pcie_bandwidth, stage="query_transfer")

        select = self.config.use_cpq and not self.config.reference_cpq
        batch = plan_batch_scan(self.index, queries, k, select=select)
        plans = batch.plans
        match_launch = build_match_launch(
            plans, self.device.spec, self.config.threads_per_block, self.config.use_cpq
        )
        self.device.launch(match_launch, stage="match")

        if self.config.reference_cpq:
            results = [self._reference_query(q, k, count_bound) for q in queries]
        elif self.config.use_cpq:
            results = batch.results
        else:
            results = []
            for plan in plans:
                result, trace = spq_topk(plan.counts, k)
                self.device.launch(
                    KernelLaunch(
                        name="spq_select",
                        block_items=np.asarray([trace.elements_scanned or 1]),
                        threads_per_block=self.config.threads_per_block,
                        cycles_per_item=3.0,
                        bytes_read=trace.elements_scanned * 8.0,
                        bytes_written=trace.elements_scanned * 8.0,
                        atomic_ops=float(trace.elements_scanned),
                    ),
                    stage="select",
                )
                results.append(result)

        if self.config.use_cpq and not self.config.reference_cpq:
            select_launch = build_select_launch(
                plans, hash_table_capacity(k, count_bound), k, self.config.threads_per_block
            )
            self.device.launch(select_launch, stage="select")

        result_bytes = len(queries) * k * _RESULT_ENTRY_BYTES
        self.device.charge_seconds(result_bytes / self.device.spec.pcie_bandwidth, stage="select")
        return results

    def query_batched(self, queries: list[Query], k: int | None = None, batch_size: int | None = None) -> list[TopKResult]:
        """Run an oversized workload as a sequence of device-sized batches.

        This is the paper's Fig.-11 protocol: GENIE answers tens of
        thousands of queries by splitting them into batches that fit next
        to the resident index. When ``batch_size`` is omitted it is derived
        from free device memory.

        Args:
            queries: The full workload.
            k: Result size.
            batch_size: Queries per batch; auto-sized when ``None``.

        Returns:
            One result per query, in input order. ``last_profile``
            accumulates over all batches. If a mid-workload batch raises
            (e.g. :class:`~repro.errors.GpuOutOfMemoryError`),
            ``last_profile`` holds the accumulated profile of the batches
            that completed, not the dangling profile of the failed one.
        """
        queries = list(queries)
        if not queries:
            raise QueryError("empty query batch")
        k = int(k if k is not None else self.config.k)
        if batch_size is None:
            bound = self._count_bound(queries)
            batch_size = max(1, min(len(queries), self.max_batch_size(bound, k)))
        results: list[TopKResult] = []
        profile = StageTimings()
        try:
            for start in range(0, len(queries), batch_size):
                results.extend(self.query(queries[start : start + batch_size], k=k))
                profile.merge(self.last_profile)
        finally:
            self.last_profile = profile
        return results

    def _reference_query(self, query: Query, k: int, count_bound: int) -> TopKResult:
        """Exact Algorithm-1 execution: scan postings in span order through c-PQ."""
        cpq = CountPriorityQueue(
            self.index.n_objects,
            k,
            count_bound,
            bits=self.config.bits,
            expired_overwrite=self.config.expired_overwrite,
        )
        for item in query.items:
            spans = self.index.spans_for_keywords(item)
            cpq.update_many(self.index.gather(spans))
        return cpq.select_topk()

