"""Fig. 8: minimum required LSH functions m versus similarity s.

Pure theory — the binomial simulation of Eqn. 9 with eps = delta = 0.06.
Expected shape: a bell peaking at s = 0.5 (paper reads 237; the strict
integer-window convention gives 234) falling towards both ends, everywhere
far below the Hoeffding bound of 2174.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.table import ResultTable
from repro.lsh.tann import PAPER_DELTA, PAPER_EPS, fig8_curve, hoeffding_m


def run(
    eps: float = PAPER_EPS,
    delta: float = PAPER_DELTA,
    s_values: np.ndarray | None = None,
) -> ResultTable:
    """Compute the Fig. 8 series.

    Returns:
        A table with columns ``similarity`` and ``required_m``.
    """
    table = ResultTable(
        title=f"Fig. 8: required #LSH functions (eps={eps}, delta={delta})",
        columns=["similarity", "required_m"],
        notes=[
            f"Hoeffding bound (Theorem 4.1): m = {hoeffding_m(eps, delta)}",
            "Paper reads m=237 at s=0.5; strict integer windows give the peak below.",
        ],
    )
    for s, m in fig8_curve(eps, delta, s_values):
        table.add_row(similarity=s, required_m=m)
    return table


if __name__ == "__main__":
    print(run())
