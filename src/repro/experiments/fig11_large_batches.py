"""Fig. 11: very large query batches on SIFT — GENIE vs GPU-LSH.

GENIE splits an oversized workload into fixed-size batches; GPU-LSH takes
the whole set in one launch (one thread per query). Expected shape (paper,
at 65536 queries): GPU-LSH needs about 3x GENIE's total time; GPU-LSH is
flat-ish until the device's thread capacity saturates, then grows.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import registry
from repro.experiments.common import DEFAULT_K, DEFAULT_M, fit_genie_sift
from repro.experiments.table import ResultTable
from repro.baselines.gpu_lsh import GpuLsh
from repro.gpu.device import Device

#: Scaled query counts (paper sweeps 2048..65536).
DEFAULT_QUERY_COUNTS = (256, 512, 1024, 2048, 4096)

#: GENIE's batch size (paper uses 1024 per batch).
DEFAULT_BATCH = 256


def run(
    query_counts: tuple[int, ...] = DEFAULT_QUERY_COUNTS,
    batch_size: int = DEFAULT_BATCH,
    n: int | None = None,
    m: int = DEFAULT_M,
    k: int = DEFAULT_K,
    gpu_lsh_tables: int = 60,
    seed: int = 0,
) -> ResultTable:
    """Run the large-batch comparison on SIFT-like data."""
    dataset = registry.load("sift", n=n, seed=seed)
    setup = fit_genie_sift(dataset, m=m, k=k, seed=seed)
    gpu_lsh = GpuLsh(
        num_tables=gpu_lsh_tables,
        functions_per_table=4,
        width=16.0,
        device=Device(),
        seed=seed,
        early_stop_factor=None,  # timing config: full short-list search
    ).fit(dataset.data)

    pool = dataset.queries

    def queries_for(n_queries: int) -> np.ndarray:
        reps = int(np.ceil(n_queries / len(pool)))
        return np.tile(pool, (reps, 1))[:n_queries]

    table = ResultTable(
        title=f"Fig. 11: large query batches on SIFT (GENIE batch={batch_size}, simulated s)",
        columns=["n_queries", "genie_seconds", "gpu_lsh_seconds"],
    )
    for n_queries in query_counts:
        points = queries_for(n_queries)
        genie_total = 0.0
        for start in range(0, n_queries, batch_size):
            setup.index.query(points[start : start + batch_size], k=k)
            genie_total += setup.index.engine.last_profile.query_total()
        gpu_lsh.query(points, k=k)
        table.add_row(
            n_queries=n_queries,
            genie_seconds=genie_total,
            gpu_lsh_seconds=gpu_lsh.last_profile.query_total(),
        )
    return table


if __name__ == "__main__":
    print(run())
