"""Table VI: top-1 sequence-search accuracy vs modification rate (DBLP).

Queries are indexed titles with 10-40% of their characters corrupted;
accuracy is the fraction whose true original ranks first after
verification. Expected shape (paper, K=32): ~1.0 up to 20% modification,
still >= 0.95 at 40%; per-batch latency roughly constant.
"""

from __future__ import annotations

from repro.datasets import registry
from repro.datasets.sequences import make_query_set
from repro.experiments.metrics import top1_accuracy
from repro.experiments.table import ResultTable
from repro.sa.sequence import SequenceIndex

DEFAULT_FRACTIONS = (0.1, 0.2, 0.3, 0.4)


def run(
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    n: int | None = None,
    n_queries: int = 128,
    n_candidates: int = 32,
    seed: int = 0,
) -> ResultTable:
    """Measure recovery accuracy and latency per modification rate."""
    titles = registry.load("dblp", n=n, seed=seed)
    index = SequenceIndex(n=3).fit(titles)

    table = ResultTable(
        title=f"Table VI: DBLP top-1 accuracy vs modification (K={n_candidates})",
        columns=["modified_fraction", "accuracy", "latency_seconds"],
    )
    for fraction in fractions:
        queries, true_ids = make_query_set(titles, n_queries, fraction, seed=seed + 1)
        dev0 = index.engine.device.timings.total
        host0 = index.host.timings.total
        predictions = []
        for q in queries:
            result = index.search(q, k=1, n_candidates=n_candidates)
            predictions.append(result.best.sequence_id if result.best else -1)
        latency = (index.engine.device.timings.total - dev0) + (index.host.timings.total - host0)
        table.add_row(
            modified_fraction=fraction,
            accuracy=top1_accuracy(predictions, true_ids),
            latency_seconds=latency,
        )
    return table


if __name__ == "__main__":
    print(run())
