"""Fig. 10: running time versus data cardinality (fixed 512-query batch).

Expected shape (paper): GENIE grows gradually with data size; GPU-LSH is
comparatively flat (its per-query work depends on bucket sizes, not the
full scan); GPU-SPQ and the CPU baselines grow linearly and sit orders of
magnitude above GENIE.
"""

from __future__ import annotations

from repro.experiments.suite import systems_for
from repro.experiments.table import ResultTable

#: Scaled cardinality sweep (paper sweeps 500K..8M per dataset).
DEFAULT_CARDINALITIES = (1_000, 2_000, 4_000, 8_000)

#: Scaled fixed batch (paper fixes 512 queries).
DEFAULT_N_QUERIES = 128

DEFAULT_DATASETS = ("ocr", "sift", "dblp", "tweets", "adult")


def run(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    cardinalities: tuple[int, ...] = DEFAULT_CARDINALITIES,
    n_queries: int = DEFAULT_N_QUERIES,
    seed: int = 0,
) -> ResultTable:
    """Run the cardinality sweep for every dataset and system."""
    table = ResultTable(
        title=f"Fig. 10: running time vs cardinality ({n_queries} queries, simulated seconds)",
        columns=["dataset", "system", "cardinality", "seconds"],
    )
    for dataset_name in datasets:
        for cardinality in cardinalities:
            runners = systems_for(dataset_name, n=cardinality, seed=seed)
            for system, runner in runners.items():
                table.add_row(
                    dataset=dataset_name,
                    system=system,
                    cardinality=cardinality,
                    seconds=runner(n_queries),
                )
    return table


if __name__ == "__main__":
    print(run())
