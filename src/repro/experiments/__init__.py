"""Experiment harness: one module per figure/table of the paper.

Each module exposes ``run(...) -> ResultTable`` (or a tuple of tables) and
is runnable directly (``python -m repro.experiments.fig9_time_vs_queries``).
The benchmarks under ``benchmarks/`` call these runners and print their
tables.
"""

from repro.experiments import (
    ablations,
    fig8_hash_functions,
    fig9_time_vs_queries,
    fig10_time_vs_cardinality,
    fig11_large_batches,
    fig12_load_balance,
    fig13_cpq_effect,
    fig14_approx_ratio,
    table1_profiling,
    table2_multiload,
    table4_memory,
    table5_ocr_prediction,
    table6_dblp_accuracy,
    table7_sequence_k,
)
from repro.experiments.metrics import (
    approximation_ratio,
    batch_approximation_ratio,
    classification_report,
    recall_at_k,
    top1_accuracy,
)
from repro.experiments.table import ResultTable

__all__ = [
    "ResultTable",
    "approximation_ratio",
    "batch_approximation_ratio",
    "classification_report",
    "recall_at_k",
    "top1_accuracy",
    "fig8_hash_functions",
    "fig9_time_vs_queries",
    "fig10_time_vs_cardinality",
    "fig11_large_batches",
    "fig12_load_balance",
    "fig13_cpq_effect",
    "fig14_approx_ratio",
    "table1_profiling",
    "table2_multiload",
    "table4_memory",
    "table5_ocr_prediction",
    "table6_dblp_accuracy",
    "table7_sequence_k",
    "ablations",
]
