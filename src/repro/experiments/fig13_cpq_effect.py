"""Fig. 13: effectiveness of c-PQ — GENIE versus GEN-SPQ.

Same inverted index, same scan; only the top-k structure differs (c-PQ
versus Count Table + SPQ bucket selection). Expected shape (paper): GENIE
markedly faster at every query count on every dataset, because GEN-SPQ's
selection re-scans full count arrays.
"""

from __future__ import annotations

from repro.experiments.suite import document_systems, point_systems, relational_systems
from repro.experiments.table import ResultTable

DEFAULT_QUERY_COUNTS = (32, 64, 128, 256)
DEFAULT_DATASETS = ("ocr", "sift", "tweets", "adult")


def run(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    query_counts: tuple[int, ...] = DEFAULT_QUERY_COUNTS,
    n: int | None = None,
    seed: int = 0,
) -> ResultTable:
    """Time GENIE against GEN-SPQ across datasets and query counts."""
    table = ResultTable(
        title="Fig. 13: GENIE vs GEN-SPQ (simulated seconds)",
        columns=["dataset", "system", "n_queries", "seconds"],
    )
    for dataset_name in datasets:
        if dataset_name in ("ocr", "sift"):
            runners = point_systems(dataset_name, n=n, systems=("GENIE", "GEN-SPQ"), seed=seed)
        elif dataset_name == "tweets":
            base = document_systems(n=n, seed=seed)
            runners = {"GENIE": base["GENIE"], "GEN-SPQ": base["GEN-SPQ"]}
        else:
            base = relational_systems(n=n, seed=seed)
            runners = {"GENIE": base["GENIE"], "GEN-SPQ": base["GEN-SPQ"]}
        for system, runner in runners.items():
            for n_queries in query_counts:
                table.add_row(
                    dataset=dataset_name,
                    system=system,
                    n_queries=n_queries,
                    seconds=runner(n_queries),
                )
    return table


if __name__ == "__main__":
    print(run())
