"""Fig. 14: approximation ratio versus k on SIFT — GENIE vs GPU-LSH.

Expected shape (paper): GENIE's ratio is low and stable across k; GPU-LSH
is noticeably worse at small k (its early-stop condition examines fewer
candidates) and converges towards GENIE as k grows.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.gpu_lsh import GpuLsh
from repro.datasets import registry
from repro.datasets.synthetic import true_knn
from repro.experiments.common import DEFAULT_M, fit_genie_sift, reported_distances
from repro.experiments.metrics import batch_approximation_ratio
from repro.experiments.table import ResultTable
from repro.gpu.device import Device

DEFAULT_KS = (1, 2, 4, 8, 16, 32, 64)


def run(
    ks: tuple[int, ...] = DEFAULT_KS,
    n: int | None = None,
    n_queries: int = 64,
    m: int = DEFAULT_M,
    gpu_lsh_tables: int = 60,
    gpu_lsh_functions: int = 3,
    gpu_lsh_width: float = 20.0,
    seed: int = 0,
) -> ResultTable:
    """Compute approximation ratios for a sweep of k values.

    GPU-LSH's table parameters are tuned the way the paper tunes them: to
    reach GENIE's quality at large k, which exposes the early-stop
    degradation at small k.
    """
    dataset = registry.load("sift", n=n, seed=seed)
    queries = dataset.queries[:n_queries]
    setup = fit_genie_sift(dataset, m=m, k=max(ks), seed=seed)
    gpu_lsh = GpuLsh(
        num_tables=gpu_lsh_tables,
        functions_per_table=gpu_lsh_functions,
        width=gpu_lsh_width,
        device=Device(),
        seed=seed,
    ).fit(dataset.data)

    table = ResultTable(
        title="Fig. 14: approximation ratio vs k on SIFT",
        columns=["k", "genie_ratio", "gpu_lsh_ratio"],
    )
    for k in ks:
        _, true_d = true_knn(dataset.data, queries, k)
        genie_results = setup.index.query(queries, k=k)
        genie_d = _pad_to_k(reported_distances(dataset, queries, genie_results), k)
        lsh_results = gpu_lsh.query(queries, k=k)
        lsh_d = _pad_to_k(reported_distances(dataset, queries, lsh_results), k)
        table.add_row(
            k=k,
            genie_ratio=batch_approximation_ratio(genie_d, true_d),
            gpu_lsh_ratio=batch_approximation_ratio(lsh_d, true_d),
        )
    return table


def _pad_to_k(distances: np.ndarray, k: int) -> np.ndarray:
    """Pad a reported-distance matrix to k columns with its row maxima."""
    distances = np.atleast_2d(distances)
    if distances.shape[1] >= k:
        return distances[:, :k]
    if distances.shape[1] == 0:
        return np.full((distances.shape[0], k), np.inf)
    pad = np.repeat(distances[:, -1:], k - distances.shape[1], axis=1)
    return np.hstack([distances, pad])


if __name__ == "__main__":
    print(run())
