"""Tables II + III: multi-loading scalability on SIFT_LARGE.

A dataset several times the per-load budget is swept through the device in
parts. Expected shape (paper): GENIE's total scales linearly with the
number of parts; GPU-LSH needs several times GENIE's time at every size;
the extra multi-loading steps (index transfer, result merge) stay a small
fraction of the total (Table III).
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import GenieConfig
from repro.core.multiload import MultiLoadGenie
from repro.datasets import registry
from repro.experiments.common import DEFAULT_K, DEFAULT_M
from repro.experiments.table import ResultTable
from repro.gpu.device import Device
from repro.gpu.host import HostCpu
from repro.lsh.e2lsh import E2Lsh
from repro.lsh.transform import LshTransformer

#: Scaled sweep (paper: 6M / 12M / 24M / 36M points, 6M per load).
DEFAULT_SIZES = (6_000, 12_000, 24_000, 36_000)
DEFAULT_PART_SIZE = 6_000


def run(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    part_size: int = DEFAULT_PART_SIZE,
    n_queries: int = 128,
    m: int = DEFAULT_M,
    k: int = DEFAULT_K,
    seed: int = 0,
) -> tuple[ResultTable, ResultTable]:
    """Run the multi-loading sweep.

    Returns:
        ``(table2, table3)``: total times per size, and the extra-step
        breakdown (index transfer / result merge) per size.
    """
    full = registry.load("sift_large", n=max(sizes), seed=seed)
    family = E2Lsh(m, full.dim, 4.0, p=2, seed=seed)
    transformer = LshTransformer(family, domain=67, seed=seed)
    queries = transformer.to_queries(full.queries[:n_queries])

    table2 = ResultTable(
        title=f"Table II: multi-loading on SIFT_LARGE ({n_queries} queries, part={part_size})",
        columns=["n_points", "n_parts", "genie_seconds"],
    )
    table3 = ResultTable(
        title="Table III: extra multi-loading costs (simulated seconds)",
        columns=["n_points", "index_transfer", "result_merge", "total"],
    )
    for size in sizes:
        corpus = transformer.to_corpus(full.data[:size])
        engine = MultiLoadGenie(
            device=Device(),
            host=HostCpu(),
            config=GenieConfig(k=k, count_bound=m),
            part_size=part_size,
        ).fit(corpus)
        engine.query(queries, k=k)
        profile = engine.last_profile
        total = profile.query_total()
        table2.add_row(n_points=size, n_parts=engine.num_parts, genie_seconds=total)
        table3.add_row(
            n_points=size,
            index_transfer=profile.get("index_transfer"),
            result_merge=profile.get("result_merge"),
            total=total,
        )
    return table2, table3


if __name__ == "__main__":
    for t in run():
        print(t)
        print()
