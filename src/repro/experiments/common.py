"""Shared setup helpers for the experiment runners.

Each helper builds one "system under test" on a fresh simulated device so
experiments compare like against like. GENIE systems are built through the
unified :mod:`repro.api` session layer; the returned :class:`AnnSetup`
exposes both the session/handle surface and the legacy ``index`` wrapper
view that older runners still consume. Default scales are laptop-sized;
every runner takes overrides (see EXPERIMENTS.md for the scale mapping to
the paper's setup).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.session import GenieSession, IndexHandle
from repro.core.engine import GenieConfig
from repro.datasets.synthetic import PointDataset
from repro.gpu.device import Device
from repro.gpu.host import HostCpu
from repro.lsh.e2lsh import E2Lsh
from repro.lsh.rbh import RandomBinningHash, estimate_kernel_width
from repro.lsh.transform import TauAnnIndex

#: Default number of LSH functions for experiments (scaled from the
#: paper's 237; the ratio m/domain is kept comparable).
DEFAULT_M = 64

#: Default re-hash domain for E2LSH (the paper's 67 buckets on SIFT).
DEFAULT_DOMAIN = 67

#: Default k (the paper uses 100; scaled with the dataset sizes).
DEFAULT_K = 10


@dataclass
class AnnSetup:
    """A fitted GENIE ANN index together with its device and dataset.

    Attributes:
        index: Legacy wrapper view (kept for older runners).
        device: The simulated GPU shared by the session.
        host: The simulated host CPU.
        dataset: The point dataset the index was fitted on.
        session: The owning :class:`~repro.api.session.GenieSession`.
        handle: The fitted index's uniform search surface.
    """

    index: TauAnnIndex
    device: Device
    host: HostCpu
    dataset: PointDataset
    session: GenieSession | None = None
    handle: IndexHandle | None = None


def _ann_setup(dataset: PointDataset, family, domain: int, k: int,
               config: GenieConfig | None, seed: int) -> AnnSetup:
    device = Device()
    host = HostCpu()
    base = (config or GenieConfig()).with_(k=k)
    index = TauAnnIndex(family, domain=domain, device=device, host=host, config=base, seed=seed)
    index.fit(dataset.data)
    return AnnSetup(
        index=index, device=device, host=host, dataset=dataset,
        session=index.session, handle=index.handle,
    )


def fit_genie_sift(
    dataset: PointDataset,
    m: int = DEFAULT_M,
    domain: int = DEFAULT_DOMAIN,
    width: float = 4.0,
    k: int = DEFAULT_K,
    config: GenieConfig | None = None,
    seed: int = 0,
) -> AnnSetup:
    """GENIE over E2LSH signatures (the SIFT configuration)."""
    family = E2Lsh(m, dataset.dim, width, p=2, seed=seed)
    return _ann_setup(dataset, family, domain, k, config, seed)


def fit_genie_ocr(
    dataset: PointDataset,
    m: int = 32,
    domain: int = 1024,
    k: int = DEFAULT_K,
    config: GenieConfig | None = None,
    seed: int = 0,
) -> AnnSetup:
    """GENIE over Random Binning Hashing (the OCR / Laplacian-kernel setup).

    The kernel width follows the paper's heuristic: the mean pairwise l1
    distance of a data sample.
    """
    sigma = estimate_kernel_width(dataset.data, seed=seed)
    family = RandomBinningHash(m, dataset.dim, sigma, seed=seed)
    return _ann_setup(dataset, family, domain, k, config, seed)


def genie_batch_seconds(setup: AnnSetup, query_points: np.ndarray, k: int = DEFAULT_K) -> float:
    """Run one batch on a fitted GENIE setup; returns simulated seconds."""
    result = setup.handle.search(query_points, k=k)
    return result.profile.query_total()


def reported_distances(
    dataset: PointDataset, query_points: np.ndarray, results, p: int = 2
) -> np.ndarray:
    """True lp distances of each result's reported neighbour ids.

    Rows are padded with the worst reported distance when a result returned
    fewer than the maximum number of ids (so ratio metrics stay defined).
    """
    widths = [len(r.ids) for r in results]
    k = max(widths, default=0)
    out = np.zeros((len(results), k), dtype=np.float64)
    for i, (qp, result) in enumerate(zip(np.atleast_2d(query_points), results)):
        if len(result.ids) == 0:
            out[i, :] = np.inf
            continue
        d = np.linalg.norm(dataset.data[result.ids] - qp[None, :], ord=p, axis=1)
        d = np.sort(d)
        out[i, : d.size] = d
        if d.size < k:
            out[i, d.size :] = d[-1]
    return out


__all__ = [
    "DEFAULT_M",
    "DEFAULT_DOMAIN",
    "DEFAULT_K",
    "AnnSetup",
    "fit_genie_sift",
    "fit_genie_ocr",
    "genie_batch_seconds",
    "reported_distances",
]
