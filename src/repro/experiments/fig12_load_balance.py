"""Fig. 12: effect of load balancing on the Adult workload.

Exact-match queries on a table with skewed categorical columns hit very
long postings lists. Expected shape (paper): with few queries, splitting
long lists clearly wins (idle SMs pick up the sublists); the gap shrinks
as the query count grows, and once the GPU is saturated the load-balanced
variant is slightly *slower* (split-index overhead).
"""

from __future__ import annotations

from repro.core.engine import GenieConfig
from repro.core.load_balance import LoadBalanceConfig
from repro.datasets import registry
from repro.datasets.relational import adult_schema, make_exact_match_queries
from repro.experiments.table import ResultTable
from repro.sa.relational import RelationalIndex

#: Scaled query counts (paper sweeps 1..16 on a 100M-row table).
DEFAULT_QUERY_COUNTS = (1, 2, 4, 8, 16)


def run(
    query_counts: tuple[int, ...] = DEFAULT_QUERY_COUNTS,
    n: int = 40_000,
    k: int = 10,
    max_sublist_len: int = 1024,
    seed: int = 0,
) -> ResultTable:
    """Run Adult exact-match queries with and without load balancing."""
    columns = registry.load("adult", n=n, seed=seed)
    query_pool = make_exact_match_queries(columns, max(query_counts), seed=seed + 1)

    variants = {
        "GENIE_LB": GenieConfig(k=k, load_balance=LoadBalanceConfig(max_sublist_len=max_sublist_len)),
        "GENIE_noLB": GenieConfig(k=k, load_balance=None),
    }
    indexes = {
        name: RelationalIndex(adult_schema(), config=config).fit(columns)
        for name, config in variants.items()
    }

    table = ResultTable(
        title=f"Fig. 12: load balance on Adult ({n} rows, simulated seconds)",
        columns=["n_queries", "GENIE_LB", "GENIE_noLB"],
    )
    for n_queries in query_counts:
        row = {"n_queries": n_queries}
        for name, index in indexes.items():
            index.query(query_pool[:n_queries], k=k)
            row[name] = index.engine.last_profile.query_total()
        table.add_row(**row)
    return table


if __name__ == "__main__":
    print(run())
