"""One-shot reproduction report: run every figure/table and print the lot.

Usage::

    python -m repro.experiments.report            # quick scales (default)
    python -m repro.experiments.report --full     # benchmark scales

The same runners back the pytest benchmarks; this entry point is for a
human who wants the whole evaluation in one terminal scroll.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablations,
    fig8_hash_functions,
    fig9_time_vs_queries,
    fig10_time_vs_cardinality,
    fig11_large_batches,
    fig12_load_balance,
    fig13_cpq_effect,
    fig14_approx_ratio,
    table1_profiling,
    table2_multiload,
    table4_memory,
    table5_ocr_prediction,
    table6_dblp_accuracy,
    table7_sequence_k,
)

#: (label, callable) for each experiment, in paper order. Each callable
#: takes a ``full`` flag and returns one table or a tuple of tables.
_EXPERIMENTS = [
    ("Fig. 8", lambda full: fig8_hash_functions.run()),
    (
        "Fig. 9",
        lambda full: fig9_time_vs_queries.run(
            query_counts=(32, 64, 128, 256) if full else (32, 64), n=3000 if full else 1000
        ),
    ),
    (
        "Fig. 10",
        lambda full: fig10_time_vs_cardinality.run(
            cardinalities=(1000, 2000, 4000) if full else (500, 1000),
            n_queries=128 if full else 32,
        ),
    ),
    (
        "Fig. 11",
        lambda full: fig11_large_batches.run(
            n=3000 if full else 1000,
            query_counts=(256, 512, 1024, 2048) if full else (128, 256),
        ),
    ),
    ("Fig. 12", lambda full: fig12_load_balance.run(n=30_000 if full else 10_000)),
    (
        "Fig. 13",
        lambda full: fig13_cpq_effect.run(
            query_counts=(32, 128) if full else (32,), n=3000 if full else 1000
        ),
    ),
    (
        "Fig. 14",
        lambda full: fig14_approx_ratio.run(
            n=2500 if full else 1200, n_queries=48 if full else 16
        ),
    ),
    ("Table I", lambda full: table1_profiling.run(n_queries=256 if full else 32, n=3000 if full else 800)),
    (
        "Tables II+III",
        lambda full: table2_multiload.run(
            sizes=(4000, 8000, 16000) if full else (1000, 2000),
            part_size=4000 if full else 1000,
            n_queries=128 if full else 16,
        ),
    ),
    ("Table IV", lambda full: table4_memory.run()),
    (
        "Table V",
        lambda full: table5_ocr_prediction.run(n=3000 if full else 1200, n_queries=200 if full else 80),
    ),
    (
        "Table VI",
        lambda full: table6_dblp_accuracy.run(n=2000 if full else 600, n_queries=96 if full else 24),
    ),
    (
        "Table VII",
        lambda full: table7_sequence_k.run(
            n=1500 if full else 500,
            n_queries=48 if full else 12,
            candidate_ks=(8, 16, 32, 64, 128, 256) if full else (8, 32),
        ),
    ),
    ("Ablation: bitmap width", lambda full: ablations.run_bitmap_width()),
    ("Ablation: Robin Hood", lambda full: ablations.run_robin_hood()),
    (
        "Ablation: sublist length",
        lambda full: ablations.run_sublist_length(n=30_000 if full else 10_000),
    ),
    (
        "Ablation: re-hash domain",
        lambda full: ablations.run_rehash_domain(n=2500 if full else 800, n_queries=32 if full else 8),
    ),
]


def main(argv: list[str] | None = None) -> int:
    """Run the full reproduction report; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="benchmark-scale runs (slower)")
    args = parser.parse_args(argv)

    # Real wall clock, on purpose: this CLI times the *regeneration* for
    # the human running it, not anything simulated. Baselined as REPRO001
    # in repro.lint.baseline — nothing under the simulator imports this.
    start = time.time()
    for label, runner in _EXPERIMENTS:
        t0 = time.time()
        result = runner(args.full)
        tables = result if isinstance(result, tuple) else (result,)
        for table in tables:
            print(table.format())
            print()
        print(f"[{label} regenerated in {time.time() - t0:.1f}s wall]\n")
    print(f"All experiments regenerated in {time.time() - start:.1f}s wall clock.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
