"""Result tables: the rows/series the paper's figures and tables report.

Every experiment runner returns a :class:`ResultTable`; benchmarks print it
so a run of ``pytest benchmarks/`` regenerates the paper's numbers (in
simulated seconds and scaled sizes — see EXPERIMENTS.md for the mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ResultTable:
    """A labeled table of experiment results.

    Attributes:
        title: Experiment id and description (e.g. ``"Fig. 9 (SIFT)"``).
        columns: Column names, in display order.
        rows: One dict per row; keys are column names.
        notes: Free-form annotations (paper-expected shape, scaling, ...).
    """

    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    volatile: list[str] = field(default_factory=list)

    #: Placeholder rendered for volatile cells in a stable rendering.
    STABLE_MASK = "~"

    def __post_init__(self):
        unknown = set(self.volatile) - set(self.columns)
        if unknown:
            raise KeyError(f"volatile names unknown columns: {sorted(unknown)}")

    def add_row(self, **values) -> None:
        """Append a row; values are keyed by column name."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"row has unknown columns: {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column: {name}")
        return [row.get(name) for row in self.rows]

    def where(self, **conditions) -> list[dict]:
        """Rows matching all equality conditions."""
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in conditions.items())
        ]

    def format(self, float_digits: int = 6, stable: bool = False) -> str:
        """Render as an aligned ASCII table.

        With ``stable=True``, cells of columns listed in
        :attr:`volatile` (wall-clock measurements and anything else that
        varies run to run) render as :attr:`STABLE_MASK` and a note
        names them — the rendering is then byte-identical across runs
        and machines, which is what lets benchmark ``.txt`` artifacts be
        committed and diffed. Simulated numbers are deterministic and
        never need masking.
        """
        def fmt(value, column) -> str:
            if stable and column in self.volatile and value is not None:
                return self.STABLE_MASK
            if isinstance(value, float):
                return f"{value:.{float_digits}g}"
            return "" if value is None else str(value)

        header = [str(c) for c in self.columns]
        body = [[fmt(row.get(c), c) for c in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"# {note}")
        if stable and self.volatile:
            masked = ", ".join(c for c in self.columns if c in self.volatile)
            lines.append(
                f"# volatile columns masked for byte-stable artifact: {masked}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()
