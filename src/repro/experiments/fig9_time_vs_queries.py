"""Fig. 9: total running time versus number of queries, five datasets.

Expected shape (paper): GENIE beats GPU-SPQ by >= 1 order of magnitude
(two orders against AppGram on sequences), beats GPU-LSH by about one
order; GPU-LSH is roughly flat in the query count; CPU baselines are
orders of magnitude slower and grow linearly.
"""

from __future__ import annotations

from repro.experiments.suite import systems_for
from repro.experiments.table import ResultTable

#: Scaled default query counts (paper sweeps 32..1024).
DEFAULT_QUERY_COUNTS = (32, 64, 128, 256)

#: Datasets in the paper's panel order.
DEFAULT_DATASETS = ("ocr", "sift", "dblp", "tweets", "adult")


def run(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    query_counts: tuple[int, ...] = DEFAULT_QUERY_COUNTS,
    n: int | None = None,
    seed: int = 0,
) -> ResultTable:
    """Run the query-count sweep for every dataset and system.

    Returns:
        A long-format table: one row per (dataset, system, n_queries).
    """
    table = ResultTable(
        title="Fig. 9: total running time vs number of queries (simulated seconds)",
        columns=["dataset", "system", "n_queries", "seconds"],
        notes=["NaN seconds = batch did not fit in device memory (paper: 'cannot run')."],
    )
    for dataset_name in datasets:
        runners = systems_for(dataset_name, n=n, seed=seed)
        for system, runner in runners.items():
            for n_queries in query_counts:
                seconds = runner(n_queries)
                table.add_row(
                    dataset=dataset_name, system=system, n_queries=n_queries, seconds=seconds
                )
    return table


if __name__ == "__main__":
    print(run())
