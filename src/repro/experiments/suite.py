"""System builders for the multi-dataset timing experiments (Figs. 9/10/13).

Every builder returns a dict ``{system_name: runner}`` where a runner is a
zero-setup callable ``runner(n_queries) -> simulated_seconds``. All systems
of one dataset share the query workload but get their own simulated device
or host clock, mirroring the paper's one-system-at-a-time measurements.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.appgram import AppGram
from repro.baselines.cpu_idx import CpuIdx
from repro.baselines.cpu_lsh import CpuLsh
from repro.baselines.gen_spq import make_gen_spq
from repro.baselines.gpu_lsh import GpuLsh
from repro.baselines.gpu_spq import GpuSpq
from repro.core.engine import GenieConfig, GenieEngine
from repro.core.types import Corpus, Query
from repro.datasets import registry
from repro.datasets.documents import make_document_queries
from repro.datasets.relational import adult_schema, make_range_queries
from repro.datasets.sequences import make_query_set
from repro.errors import GpuOutOfMemoryError
from repro.experiments.common import DEFAULT_DOMAIN, DEFAULT_K, DEFAULT_M, fit_genie_ocr, fit_genie_sift
from repro.gpu.device import Device
from repro.sa.document import DocumentIndex, WordVocabulary, tokenize
from repro.sa.ngram import NgramVocabulary
from repro.sa.relational import RelationalIndex
from repro.sa.sequence import SequenceIndex


def _oom_guard(fn):
    """Run a batch; report NaN seconds when the device cannot hold it.

    The paper reports GPU-SPQ as unable to run batches beyond 256 queries —
    the same mechanism (per-query Count Tables exhausting device memory)
    produces NaN entries here.
    """
    try:
        return fn()
    except GpuOutOfMemoryError:
        return float("nan")


def point_systems(
    dataset_name: str,
    n: int | None = None,
    m: int = DEFAULT_M,
    domain: int = DEFAULT_DOMAIN,
    k: int = DEFAULT_K,
    systems: tuple[str, ...] = ("GENIE", "GPU-SPQ", "GPU-LSH", "CPU-Idx", "CPU-LSH"),
    gpu_lsh_tables: int = 60,
    gpu_lsh_functions: int = 3,
    seed: int = 0,
) -> dict:
    """Runners for a high-dimensional point dataset (OCR or SIFT).

    GENIE, GPU-SPQ and CPU-Idx operate on the same LSH-transformed keyword
    corpus; GPU-LSH and CPU-LSH consume the raw points, as in the paper.
    """
    dataset = registry.load(dataset_name, n=n, seed=seed)
    if dataset_name == "ocr":
        setup = fit_genie_ocr(dataset, m=m, k=k, seed=seed)
    else:
        setup = fit_genie_sift(dataset, m=m, domain=domain, k=k, seed=seed)
    transformer = setup.index.transformer
    corpus = transformer.to_corpus(dataset.data)
    query_pool = dataset.queries

    def queries_for(n_queries: int) -> np.ndarray:
        reps = int(np.ceil(n_queries / len(query_pool)))
        return np.tile(query_pool, (reps, 1))[:n_queries]

    runners = {}

    if "GENIE" in systems:
        def run_genie(n_queries: int, _setup=setup) -> float:
            _setup.index.query(queries_for(n_queries), k=k)
            return _setup.index.engine.last_profile.query_total()

        runners["GENIE"] = run_genie

    if "GEN-SPQ" in systems:
        gen_spq = make_gen_spq(device=Device(), config=GenieConfig(k=k, count_bound=m))
        gen_spq.fit(corpus)

        def run_gen_spq(n_queries: int) -> float:
            genie_queries = transformer.to_queries(queries_for(n_queries))
            return _oom_guard(
                lambda: (gen_spq.query(genie_queries, k=k), gen_spq.last_profile.query_total())[1]
            )

        runners["GEN-SPQ"] = run_gen_spq

    if "GPU-SPQ" in systems:
        gpu_spq = GpuSpq(device=Device()).fit(corpus)

        def run_gpu_spq(n_queries: int) -> float:
            genie_queries = transformer.to_queries(queries_for(n_queries))
            return _oom_guard(
                lambda: (gpu_spq.query(genie_queries, k=k), gpu_spq.last_profile.query_total())[1]
            )

        runners["GPU-SPQ"] = run_gpu_spq

    if "GPU-LSH" in systems:
        gpu_lsh = GpuLsh(
            num_tables=gpu_lsh_tables,
            functions_per_table=gpu_lsh_functions,
            width=24.0,
            device=Device(),
            seed=seed,
            early_stop_factor=None,  # timing config: full short-list search
        ).fit(dataset.data)

        def run_gpu_lsh(n_queries: int) -> float:
            gpu_lsh.query(queries_for(n_queries), k=k)
            return gpu_lsh.last_profile.query_total()

        runners["GPU-LSH"] = run_gpu_lsh

    if "CPU-Idx" in systems:
        cpu_idx = CpuIdx().fit(corpus)

        def run_cpu_idx(n_queries: int) -> float:
            cpu_idx.query(transformer.to_queries(queries_for(n_queries)), k=k)
            return cpu_idx.last_profile.query_total()

        runners["CPU-Idx"] = run_cpu_idx

    if "CPU-LSH" in systems:
        cpu_lsh = CpuLsh(num_functions=m, width=4.0, seed=seed).fit(dataset.data)

        def run_cpu_lsh(n_queries: int) -> float:
            cpu_lsh.query(queries_for(n_queries), k=k)
            return cpu_lsh.last_profile.query_total()

        runners["CPU-LSH"] = run_cpu_lsh

    return runners


def sequence_systems(
    n: int | None = None,
    k: int = 1,
    n_candidates: int = 32,
    modify_fraction: float = 0.2,
    query_pool_size: int = 64,
    ngram: int = 3,
    seed: int = 0,
) -> dict:
    """Runners for the DBLP sequence workload: GENIE, GPU-SPQ, AppGram."""
    titles = registry.load("dblp", n=n, seed=seed)
    query_pool, _ = make_query_set(titles, query_pool_size, modify_fraction, seed=seed + 1)

    def queries_for(n_queries: int) -> list[str]:
        reps = int(np.ceil(n_queries / len(query_pool)))
        return (query_pool * reps)[:n_queries]

    genie = SequenceIndex(n=ngram).fit(titles)
    runners = {}

    def run_genie(n_queries: int) -> float:
        before_dev = genie.engine.device.timings.copy()
        before_host = genie.host.timings.copy()
        for q in queries_for(n_queries):
            genie.search(q, k=k, n_candidates=n_candidates)
        dev = genie.engine.device.timings.total - before_dev.total
        host = genie.host.timings.total - before_host.total
        return dev + host

    runners["GENIE"] = run_genie

    vocab = genie.vocabulary
    corpus = Corpus([vocab.encode(s, grow=False) for s in titles])
    gpu_spq = GpuSpq(device=Device()).fit(corpus)

    def run_gpu_spq(n_queries: int) -> float:
        genie_queries = [Query.from_keywords(vocab.encode(q, grow=False)) for q in queries_for(n_queries)]
        genie_queries = [q for q in genie_queries if q.num_items]
        return _oom_guard(
            lambda: (gpu_spq.query(genie_queries, k=n_candidates), gpu_spq.last_profile.query_total())[1]
        )

    runners["GPU-SPQ"] = run_gpu_spq

    appgram = AppGram(n=ngram).fit(titles)

    def run_appgram(n_queries: int) -> float:
        appgram.search_batch(queries_for(n_queries), k=k)
        return appgram.last_profile.query_total()

    runners["AppGram"] = run_appgram

    return runners


def document_systems(
    n: int | None = None,
    k: int = DEFAULT_K,
    query_pool_size: int = 64,
    seed: int = 0,
) -> dict:
    """Runners for the Tweets workload: GENIE, GPU-SPQ, CPU-Idx."""
    docs = registry.load("tweets", n=n, seed=seed)
    query_pool, _ = make_document_queries(docs, query_pool_size, seed=seed + 1)

    def queries_for(n_queries: int) -> list[str]:
        reps = int(np.ceil(n_queries / len(query_pool)))
        return (query_pool * reps)[:n_queries]

    genie = DocumentIndex().fit(docs)
    runners = {}

    def run_genie(n_queries: int) -> float:
        genie.query_batch(queries_for(n_queries), k=k)
        return genie.engine.last_profile.query_total()

    runners["GENIE"] = run_genie

    vocab: WordVocabulary = genie.vocabulary
    corpus = Corpus([vocab.encode(tokenize(d), grow=False) for d in docs])

    def to_queries(texts: list[str]) -> list[Query]:
        queries = [Query.from_keywords(vocab.encode(tokenize(t), grow=False)) for t in texts]
        return [q for q in queries if q.num_items]

    gpu_spq = GpuSpq(device=Device()).fit(corpus)

    def run_gpu_spq(n_queries: int) -> float:
        return _oom_guard(
            lambda: (
                gpu_spq.query(to_queries(queries_for(n_queries)), k=k),
                gpu_spq.last_profile.query_total(),
            )[1]
        )

    runners["GPU-SPQ"] = run_gpu_spq

    gen_spq = make_gen_spq(device=Device(), config=GenieConfig(k=k)).fit(corpus)

    def run_gen_spq(n_queries: int) -> float:
        return _oom_guard(
            lambda: (
                gen_spq.query(to_queries(queries_for(n_queries)), k=k),
                gen_spq.last_profile.query_total(),
            )[1]
        )

    runners["GEN-SPQ"] = run_gen_spq

    cpu_idx = CpuIdx().fit(corpus)

    def run_cpu_idx(n_queries: int) -> float:
        cpu_idx.query(to_queries(queries_for(n_queries)), k=k)
        return cpu_idx.last_profile.query_total()

    runners["CPU-Idx"] = run_cpu_idx

    return runners


def relational_systems(
    n: int | None = None,
    k: int = DEFAULT_K,
    query_pool_size: int = 64,
    numeric_bins: int = 64,
    seed: int = 0,
) -> dict:
    """Runners for the Adult workload: GENIE, GPU-SPQ, CPU-Idx."""
    columns = registry.load("adult", n=n, seed=seed)
    query_pool = make_range_queries(columns, query_pool_size, seed=seed + 1)

    def queries_for(n_queries: int) -> list[dict]:
        reps = int(np.ceil(n_queries / len(query_pool)))
        return (query_pool * reps)[:n_queries]

    genie = RelationalIndex(adult_schema(numeric_bins)).fit(columns)
    runners = {}

    def run_genie(n_queries: int) -> float:
        genie.query(queries_for(n_queries), k=k)
        return genie.engine.last_profile.query_total()

    runners["GENIE"] = run_genie

    corpus = genie.engine.corpus

    def to_queries(ranges_batch: list[dict]) -> list[Query]:
        return [genie.make_query(r) for r in ranges_batch]

    gpu_spq = GpuSpq(device=Device()).fit(corpus)

    def run_gpu_spq(n_queries: int) -> float:
        return _oom_guard(
            lambda: (
                gpu_spq.query(to_queries(queries_for(n_queries)), k=k),
                gpu_spq.last_profile.query_total(),
            )[1]
        )

    runners["GPU-SPQ"] = run_gpu_spq

    gen_spq = make_gen_spq(device=Device(), config=GenieConfig(k=k)).fit(corpus)

    def run_gen_spq(n_queries: int) -> float:
        return _oom_guard(
            lambda: (
                gen_spq.query(to_queries(queries_for(n_queries)), k=k),
                gen_spq.last_profile.query_total(),
            )[1]
        )

    runners["GEN-SPQ"] = run_gen_spq

    cpu_idx = CpuIdx().fit(corpus)

    def run_cpu_idx(n_queries: int) -> float:
        cpu_idx.query(to_queries(queries_for(n_queries)), k=k)
        return cpu_idx.last_profile.query_total()

    runners["CPU-Idx"] = run_cpu_idx

    return runners


#: Which systems Fig. 9 compares per dataset (paper's panel layout).
FIG9_SYSTEMS = {
    "ocr": ("GENIE", "GPU-SPQ", "GPU-LSH", "CPU-Idx", "CPU-LSH"),
    "sift": ("GENIE", "GPU-SPQ", "GPU-LSH", "CPU-Idx", "CPU-LSH"),
    "dblp": ("GENIE", "GPU-SPQ", "AppGram"),
    "tweets": ("GENIE", "GPU-SPQ", "CPU-Idx"),
    "adult": ("GENIE", "GPU-SPQ", "CPU-Idx"),
}


def systems_for(dataset_name: str, n: int | None = None, seed: int = 0, **kwargs) -> dict:
    """Build the Fig. 9 system set for any of the five datasets."""
    if dataset_name in ("ocr", "sift"):
        return point_systems(
            dataset_name, n=n, systems=FIG9_SYSTEMS[dataset_name], seed=seed, **kwargs
        )
    if dataset_name == "dblp":
        return sequence_systems(n=n, seed=seed, **kwargs)
    if dataset_name == "tweets":
        return document_systems(n=n, seed=seed, **kwargs)
    if dataset_name == "adult":
        return relational_systems(n=n, seed=seed, **kwargs)
    raise KeyError(f"unknown dataset {dataset_name!r}")
