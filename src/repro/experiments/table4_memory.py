"""Table IV: device memory per in-flight query — GENIE vs GEN-SPQ.

GENIE's per-query state is the bit-packed Bitmap Counter plus the small
Hash Table; GEN-SPQ needs a full 32-bit Count Table plus SPQ's explicit
id/scratch workspace. Expected shape (paper): GENIE uses about 1/5 to 1/10
of GEN-SPQ's per-query memory, which multiplies its feasible batch size.
"""

from __future__ import annotations

from repro.core.engine import per_query_device_bytes
from repro.experiments.common import DEFAULT_K, DEFAULT_M
from repro.experiments.table import ResultTable
from repro.gpu.specs import TITAN_X

#: Per-dataset match-count bounds (number of query items / LSH functions).
_COUNT_BOUNDS = {"ocr": 237, "sift": 237, "dblp": 64, "tweets": 16, "adult": 14}

#: Paper dataset cardinalities — the per-query footprint is a pure formula,
#: so Table IV is computed at the paper's own scale.
_PAPER_CARDINALITY = {
    "ocr": 3_500_000,
    "sift": 4_500_000,
    "dblp": 5_000_000,
    "tweets": 6_800_000,
    "adult": 980_000,
}


def run(
    datasets: tuple[str, ...] = ("ocr", "sift", "dblp", "tweets", "adult"),
    n: int | None = None,
    k: int = 100,
) -> ResultTable:
    """Compute per-query memory and max batch size for both variants.

    Table IV is a pure formula with no randomness, so unlike the other
    runners it takes no ``seed=`` — accepting one it ignored would let a
    caller believe the run was pinned (REPRO006).

    Args:
        datasets: Which datasets to tabulate.
        n: Cardinality override (paper cardinalities when omitted).
        k: Result size (the paper uses k = 100 here).
    """
    table = ResultTable(
        title="Table IV: device memory per query (bytes) and max batch size",
        columns=[
            "dataset",
            "n_objects",
            "genie_bytes",
            "gen_spq_bytes",
            "ratio",
            "genie_max_batch",
            "gen_spq_max_batch",
        ],
        notes=[f"Max batch assumes the full {TITAN_X.global_mem_bytes >> 30} GiB device is free."],
    )
    for name in datasets:
        n_objects = n if n is not None else _PAPER_CARDINALITY[name]
        bound = _COUNT_BOUNDS[name]
        genie = per_query_device_bytes(n_objects, k, bound, bits=None, use_cpq=True)
        gen_spq = per_query_device_bytes(n_objects, k, bound, bits=None, use_cpq=False)
        table.add_row(
            dataset=name,
            n_objects=n_objects,
            genie_bytes=genie,
            gen_spq_bytes=gen_spq,
            ratio=gen_spq / genie,
            genie_max_batch=TITAN_X.global_mem_bytes // genie,
            gen_spq_max_batch=TITAN_X.global_mem_bytes // gen_spq,
        )
    return table


if __name__ == "__main__":
    print(run())
