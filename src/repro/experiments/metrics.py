"""Evaluation metrics used by the paper's experiments.

* approximation ratio (Eqn. 13) for ANN quality (Fig. 14),
* macro precision/recall/F1 + accuracy for the OCR 1-NN prediction
  (Table V),
* recall@k and top-1 accuracy helpers for the sequence experiments
  (Tables VI/VII).
"""

from __future__ import annotations

import numpy as np


def approximation_ratio(
    reported: np.ndarray,
    true: np.ndarray,
) -> float:
    """Eqn. 13: mean ratio of reported to true neighbour distances.

    Args:
        reported: ``(k,)`` distances of the reported neighbours, ascending.
        true: ``(k,)`` distances of the true k-NN, ascending.

    Returns:
        ``(1/k) * sum_i reported_i / true_i`` with zero true distances
        treated as exact matches (ratio 1 when reported is also 0).
    """
    reported = np.asarray(reported, dtype=np.float64)
    true = np.asarray(true, dtype=np.float64)
    if reported.shape != true.shape:
        raise ValueError("reported and true distance arrays must align")
    if reported.size == 0:
        return 1.0
    ratios = np.ones_like(reported)
    nz = true > 0
    ratios[nz] = reported[nz] / true[nz]
    ratios[~nz & (reported > 0)] = np.inf
    return float(ratios.mean())


def batch_approximation_ratio(reported: np.ndarray, true: np.ndarray) -> float:
    """Mean approximation ratio over a batch of queries (rows)."""
    reported = np.atleast_2d(np.asarray(reported, dtype=np.float64))
    true = np.atleast_2d(np.asarray(true, dtype=np.float64))
    return float(np.mean([approximation_ratio(r, t) for r, t in zip(reported, true)]))


def classification_report(y_true: np.ndarray, y_pred: np.ndarray) -> dict:
    """Macro-averaged precision/recall/F1 and accuracy (Table V's metrics)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("label arrays must align")
    classes = np.unique(np.concatenate([y_true, y_pred]))
    precisions, recalls, f1s = [], [], []
    for cls in classes:
        tp = np.sum((y_pred == cls) & (y_true == cls))
        fp = np.sum((y_pred == cls) & (y_true != cls))
        fn = np.sum((y_pred != cls) & (y_true == cls))
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        precisions.append(precision)
        recalls.append(recall)
        f1s.append(f1)
    return {
        "precision": float(np.mean(precisions)),
        "recall": float(np.mean(recalls)),
        "f1": float(np.mean(f1s)),
        "accuracy": float(np.mean(y_true == y_pred)),
    }


def recall_at_k(reported_ids: np.ndarray, true_ids: np.ndarray) -> float:
    """Fraction of the true k-NN ids present among the reported ids."""
    reported = set(map(int, np.asarray(reported_ids).reshape(-1)))
    true = list(map(int, np.asarray(true_ids).reshape(-1)))
    if not true:
        return 1.0
    return sum(1 for t in true if t in reported) / len(true)


def top1_accuracy(predicted: list, truth: list) -> float:
    """Fraction of queries whose top-1 prediction matches the ground truth."""
    if len(predicted) != len(truth):
        raise ValueError("prediction and truth lists must align")
    if not truth:
        return 1.0
    return sum(1 for p, t in zip(predicted, truth) if p == t) / len(truth)
