"""Table VII: sequence-search accuracy and time versus shortlist size K.

Expected shape (paper): accuracy rises with K and saturates around K = 64;
time grows with K. The paper's recommendation — K = 32 balances both —
should be visible in the output.
"""

from __future__ import annotations

from repro.datasets import registry
from repro.datasets.sequences import make_query_set
from repro.experiments.metrics import top1_accuracy
from repro.experiments.table import ResultTable
from repro.sa.sequence import SequenceIndex

DEFAULT_KS = (8, 16, 32, 64, 128, 256)
DEFAULT_FRACTIONS = (0.1, 0.2, 0.3, 0.4)


def run(
    candidate_ks: tuple[int, ...] = DEFAULT_KS,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    n: int | None = None,
    n_queries: int = 64,
    seed: int = 0,
) -> ResultTable:
    """Sweep the shortlist size K against modification rates."""
    titles = registry.load("dblp", n=n, seed=seed)
    index = SequenceIndex(n=3).fit(titles)

    table = ResultTable(
        title="Table VII: sequence accuracy and time vs K",
        columns=["K", "modified_fraction", "accuracy", "seconds"],
    )
    for fraction in fractions:
        queries, true_ids = make_query_set(titles, n_queries, fraction, seed=seed + 1)
        for K in candidate_ks:
            dev0 = index.engine.device.timings.total
            host0 = index.host.timings.total
            predictions = []
            for q in queries:
                result = index.search(q, k=1, n_candidates=K)
                predictions.append(result.best.sequence_id if result.best else -1)
            seconds = (index.engine.device.timings.total - dev0) + (
                index.host.timings.total - host0
            )
            table.add_row(
                K=K,
                modified_fraction=fraction,
                accuracy=top1_accuracy(predictions, true_ids),
                seconds=seconds,
            )
    return table


if __name__ == "__main__":
    print(run())
