"""Table I: per-stage time profile of GENIE on every dataset.

Stages: index build (offline, CPU), index transfer, query transfer, match,
select (DBLP's select includes edit-distance verification, as in the
paper). Expected shape: match dominates query time; transfers are a small
fraction; index build is the (excluded) one-off cost.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import registry
from repro.datasets.documents import make_document_queries
from repro.datasets.relational import adult_schema, make_range_queries
from repro.datasets.sequences import make_query_set
from repro.experiments.common import DEFAULT_K, fit_genie_ocr, fit_genie_sift
from repro.experiments.table import ResultTable
from repro.sa.document import DocumentIndex
from repro.sa.relational import RelationalIndex
from repro.sa.sequence import SequenceIndex

STAGE_COLUMNS = ["index_build", "index_transfer", "query_transfer", "match", "select"]


def run(n_queries: int = 256, n: int | None = None, k: int = DEFAULT_K, seed: int = 0) -> ResultTable:
    """Profile GENIE's pipeline stages on the five datasets."""
    table = ResultTable(
        title=f"Table I: GENIE stage profile for {n_queries} queries (simulated seconds)",
        columns=["dataset"] + STAGE_COLUMNS,
        notes=["DBLP's select stage includes edit-distance verification (host)."],
    )

    for name in ("ocr", "sift"):
        dataset = registry.load(name, n=n, seed=seed)
        setup = fit_genie_ocr(dataset, seed=seed) if name == "ocr" else fit_genie_sift(dataset, seed=seed)
        reps = int(np.ceil(n_queries / len(dataset.queries)))
        queries = np.tile(dataset.queries, (reps, 1))[:n_queries]
        setup.index.query(queries, k=k)
        _add_profile_row(table, name, setup.index.engine, setup.host)

    titles = registry.load("dblp", n=n, seed=seed)
    seq_index = SequenceIndex(n=3).fit(titles)
    seq_queries, _ = make_query_set(titles, min(n_queries, len(titles)), 0.2, seed=seed + 1)
    dev0 = seq_index.engine.device.timings.copy()
    host0 = seq_index.host.timings.copy()
    for q in seq_queries:
        seq_index.search(q, k=1, n_candidates=32)
    profile = {s: seq_index.engine.device.timings.get(s) - dev0.get(s) for s in STAGE_COLUMNS}
    profile["select"] += seq_index.host.timings.get("verify") - host0.get("verify")
    profile["index_build"] = seq_index.host.timings.get("index_build")
    profile["index_transfer"] = dev0.get("index_transfer")
    table.add_row(dataset="dblp", **profile)

    docs = registry.load("tweets", n=n, seed=seed)
    doc_index = DocumentIndex().fit(docs)
    doc_queries, _ = make_document_queries(docs, n_queries, seed=seed + 1)
    doc_index.query_batch(doc_queries, k=k)
    _add_profile_row(table, "tweets", doc_index.engine, doc_index.engine.host)

    columns = registry.load("adult", n=n, seed=seed)
    rel_index = RelationalIndex(adult_schema()).fit(columns)
    rel_queries = make_range_queries(columns, n_queries, seed=seed + 1)
    rel_index.query(rel_queries, k=k)
    _add_profile_row(table, "adult", rel_index.engine, rel_index.engine.host)

    return table


def _add_profile_row(table: ResultTable, dataset: str, engine, host) -> None:
    profile = engine.last_profile
    row = {stage: profile.get(stage) for stage in STAGE_COLUMNS}
    row["index_build"] = host.timings.get("index_build")
    row["index_transfer"] = engine.device.timings.get("index_transfer")
    table.add_row(dataset=dataset, **row)


if __name__ == "__main__":
    print(run())
