"""Ablations beyond the paper's figures, for the design choices in DESIGN.md.

* Bitmap-Counter width: memory versus the count bound it can serve.
* Robin Hood expired-overwrite: probe counts with the modification on/off.
* Load-balance sublist length: makespan sensitivity to the split size.
* Re-hash domain D: tau-ANN quality versus the 1/D false-collision rate.
"""

from __future__ import annotations

import numpy as np

from repro.core.cpq import CountPriorityQueue
from repro.core.engine import GenieConfig, per_query_device_bytes
from repro.core.load_balance import LoadBalanceConfig
from repro.datasets import registry
from repro.datasets.relational import adult_schema, make_exact_match_queries
from repro.datasets.synthetic import true_knn
from repro.experiments.common import fit_genie_sift, reported_distances
from repro.experiments.metrics import batch_approximation_ratio
from repro.experiments.table import ResultTable
from repro.sa.relational import RelationalIndex


def run_bitmap_width(
    n_objects: int = 100_000, k: int = 10, bounds: tuple[int, ...] = (3, 15, 63, 255)
) -> ResultTable:
    """Per-query memory as the count bound (and thus counter width) grows."""
    table = ResultTable(
        title="Ablation: Bitmap-Counter width vs per-query memory",
        columns=["count_bound", "bits", "genie_bytes", "gen_spq_bytes", "ratio"],
    )
    from repro.core.bitmap_counter import bits_for_bound

    for bound in bounds:
        bits = bits_for_bound(bound)
        genie = per_query_device_bytes(n_objects, k, bound, bits=None, use_cpq=True)
        gen_spq = per_query_device_bytes(n_objects, k, bound, bits=None, use_cpq=False)
        table.add_row(
            count_bound=bound, bits=bits, genie_bytes=genie, gen_spq_bytes=gen_spq, ratio=gen_spq / genie
        )
    return table


def run_robin_hood(
    capacity: int = 1024,
    n_keys: int = 8_000,
    seed: int = 0,
) -> ResultTable:
    """Probe counts with and without the expired-overwrite modification.

    A small table absorbs a long stream of inserts whose values rise while
    the expiry threshold (``AT - 1``) climbs behind them — the c-PQ access
    pattern. With the modification, expired residents are overwritten in
    place; without it, every stale entry keeps lengthening probe chains.
    """
    rng = np.random.default_rng(seed)
    from repro.core.hash_table import RobinHoodHashTable

    keys = rng.integers(0, 10 * n_keys, size=n_keys)
    values = rng.integers(0, 4, size=n_keys)
    table = ResultTable(
        title="Ablation: Robin Hood expired-overwrite",
        columns=[
            "expired_overwrite",
            "inserts_survived",
            "total_probes",
            "probes_per_insert",
            "expired_overwrites",
            "ht_size",
        ],
        notes=["Without the modification the table fills with expired entries and overflows."],
    )
    from repro.errors import ConfigError

    for flag in (True, False):
        ht = RobinHoodHashTable(capacity, expired_overwrite=flag)
        threshold = 0
        survived = 0
        for i, (key, extra) in enumerate(zip(keys, values)):
            try:
                ht.put(int(key), threshold + int(extra), expire_below=threshold)
            except ConfigError:
                break  # table choked on stale entries — the ablation's point
            survived += 1
            if i % 8 == 7:
                threshold += 1  # AT climbs as the scan progresses
        table.add_row(
            expired_overwrite=flag,
            inserts_survived=survived,
            total_probes=ht.total_probes,
            probes_per_insert=ht.total_probes / max(survived, 1),
            expired_overwrites=ht.expired_overwrites,
            ht_size=ht.size,
        )
    return table


def run_sublist_length(
    lengths: tuple[int, ...] = (512, 2048, 8192, 32768),
    n: int = 40_000,
    n_queries: int = 1,
    seed: int = 0,
) -> ResultTable:
    """Fig. 12's knob swept: the makespan versus the sublist length limit."""
    columns = registry.load("adult", n=n, seed=seed)
    queries = make_exact_match_queries(columns, n_queries, seed=seed + 1)
    table = ResultTable(
        title=f"Ablation: load-balance sublist length ({n_queries} queries)",
        columns=["max_sublist_len", "seconds"],
    )
    for length in lengths:
        config = GenieConfig(k=10, load_balance=LoadBalanceConfig(max_sublist_len=length))
        index = RelationalIndex(adult_schema(), config=config).fit(columns)
        index.query(queries, k=10)
        table.add_row(max_sublist_len=length, seconds=index.engine.last_profile.query_total())
    return table


def run_rehash_domain(
    domains: tuple[int, ...] = (16, 67, 256, 1024),
    n: int = 4_000,
    n_queries: int = 32,
    k: int = 10,
    seed: int = 0,
) -> ResultTable:
    """tau-ANN quality versus the re-hash domain D (the 1/D error term)."""
    dataset = registry.load("sift", n=n, seed=seed)
    queries = dataset.queries[:n_queries]
    _, true_d = true_knn(dataset.data, queries, k)
    table = ResultTable(
        title="Ablation: re-hash domain D vs approximation ratio",
        columns=["domain", "approx_ratio"],
        notes=["Smaller D inflates the 1/D false-collision term of Theorem 4.1."],
    )
    for domain in domains:
        setup = fit_genie_sift(dataset, domain=domain, k=k, seed=seed)
        results = setup.index.query(queries, k=k)
        reported = reported_distances(dataset, queries, results)
        ratio = batch_approximation_ratio(
            np.pad(reported, ((0, 0), (0, max(0, k - reported.shape[1]))), mode="edge")[:, :k]
            if reported.size
            else np.full((len(queries), k), np.inf),
            true_d,
        )
        table.add_row(domain=domain, approx_ratio=ratio)
    return table


if __name__ == "__main__":
    for result in (run_bitmap_width(), run_robin_hood(), run_sublist_length(), run_rehash_domain()):
        print(result)
        print()
