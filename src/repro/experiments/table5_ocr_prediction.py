"""Table V: 1-NN prediction quality on OCR — GENIE vs GPU-LSH.

Each test point is classified with the label of its retrieved nearest
neighbour. Expected shape (paper): GENIE's precision/recall/F1/accuracy a
few points above GPU-LSH's, because GPU-LSH's constant-memory budget caps
it at 8 hash functions on high-dimensional data.
"""

from __future__ import annotations

from repro.baselines.gpu_lsh import GpuLsh
from repro.datasets import registry
from repro.experiments.common import fit_genie_ocr
from repro.experiments.metrics import classification_report
from repro.experiments.table import ResultTable
from repro.gpu.device import Device

METRIC_COLUMNS = ["precision", "recall", "f1", "accuracy"]


def run(
    n: int | None = None,
    n_queries: int = 300,
    m: int = 32,
    gpu_lsh_tables: int = 100,
    seed: int = 0,
) -> ResultTable:
    """Classify held-out OCR-like points by retrieved 1-NN label."""
    dataset = registry.load("ocr", n=n, seed=seed)
    queries = dataset.queries[:n_queries]
    truth = dataset.query_labels[:n_queries]

    setup = fit_genie_ocr(dataset, m=m, seed=seed)
    genie_results = setup.index.query(queries, k=1)
    genie_pred = [
        int(dataset.labels[r.ids[0]]) if len(r.ids) else -1 for r in genie_results
    ]

    # GPU-LSH: constant memory caps functions_per_table on high-dim data
    # (8 in the paper's OCR setup); l1 distance approximates the
    # Laplacian-kernel ranking.
    max_funcs = max(1, min(4, Device().spec.constant_mem_bytes // (dataset.dim * 4)))
    gpu_lsh = GpuLsh(
        num_tables=gpu_lsh_tables,
        functions_per_table=max_funcs,
        width=float(dataset.dim),
        p=1,
        device=Device(),
        seed=seed,
    ).fit(dataset.data)
    lsh_results = gpu_lsh.query(queries, k=1)
    lsh_pred = [int(dataset.labels[r.ids[0]]) if len(r.ids) else -1 for r in lsh_results]

    table = ResultTable(
        title="Table V: OCR 1-NN prediction quality",
        columns=["method"] + METRIC_COLUMNS,
        notes=[f"GPU-LSH limited to {max_funcs} functions/table by constant memory."],
    )
    table.add_row(method="GENIE", **classification_report(truth, genie_pred))
    table.add_row(method="GPU-LSH", **classification_report(truth, lsh_pred))
    return table


if __name__ == "__main__":
    print(run())
