"""repro.obs — observability for the simulated serving stack.

Three pieces, all deterministic because the whole system runs on
simulated time:

* :mod:`repro.obs.trace` — per-request span trees on the virtual
  clock, 1-in-N sampling, Chrome trace-event export (Perfetto).
* :mod:`repro.obs.registry` — typed ``Counter``/``Gauge``/``Histogram``
  primitives and the registry ``ServeMetrics`` is built on.
* :mod:`repro.obs.drift` — rolling predicted-vs-observed cost error,
  the hook online cost-model recalibration needs.
"""

from repro.obs.drift import DriftTracker
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile_nearest_rank,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "Counter",
    "DriftTracker",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "percentile_nearest_rank",
]
