"""Typed metric primitives and the registry that snapshots them.

The serving layer accumulated its counters as ad-hoc instance
attributes (``self.cache_hits += 1``); this module gives every
instrumented subsystem the same three typed primitives instead:

* :class:`Counter` — a monotone total (requests admitted, plans
  evicted). Floats are allowed so simulated-seconds totals count too.
* :class:`Gauge` — a point-in-time value, latest write wins (queue
  depth, delta-posting pressure).
* :class:`Histogram` — per-value counts with **bounded cardinality**:
  exact while the number of distinct observed values stays under the
  limit, and clamping new values onto the nearest existing bin beyond
  it, so an adversarial long-running workload (one new batch size per
  request, say) cannot grow the dict without bound. The exact running
  ``sum``/``count`` are kept separately, so means stay exact even after
  clamping.

A :class:`MetricsRegistry` names the metrics of one subsystem and
renders them as one flat deterministic dict — the same contract
:meth:`ServeMetrics.snapshot <repro.serve.metrics.ServeMetrics.snapshot>`
(now built on these primitives) has always exported.

Everything here is driven by the virtual clock's deterministic world:
no wall time, no background threads, snapshot equality across repeated
seeded runs is the test contract.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def percentile_nearest_rank(values, p: float) -> float:
    """Nearest-rank percentile ``p`` of ``values``.

    Returns ``0.0`` for an empty population (a server that has completed
    nothing has no latency yet).

    Raises:
        ConfigError: Unless ``0 < p <= 100`` — ``p <= 0`` would silently
            underflow to the minimum and ``p > 100`` would index past the
            end of the population.
    """
    p = float(p)
    if not 0.0 < p <= 100.0:
        raise ConfigError(f"percentile must be in (0, 100], got {p}")
    if len(values) == 0:
        return 0.0
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    # ceil of a positive fraction of a positive size is in [1, size].
    rank = int(np.ceil(p / 100.0 * ordered.size))
    return float(ordered[rank - 1])


class Counter:
    """A monotone running total (ints or simulated seconds).

    Attributes:
        name: Registry name (also the snapshot key).
        value: Current total. Direct assignment is allowed so legacy
            ``metrics.rejected += 1`` call sites keep working through
            property setters; :meth:`inc` is the idiomatic spelling.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        """Add ``n`` to the total; returns the new value."""
        self.value += n
        return self.value

    def snapshot_value(self):
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value; the latest :meth:`set` wins."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, initial=0):
        self.name = name
        self.value = initial

    def set(self, value):
        """Record the current value; returns it."""
        self.value = value
        return value

    def snapshot_value(self):
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Per-value counts with bounded distinct-value cardinality.

    While the number of distinct observed values stays within
    ``max_bins`` the histogram is exact — byte-identical to the plain
    ``{value: count}`` dict it replaces. Once the limit is reached, a
    *new* distinct value is clamped onto the nearest existing bin
    (ties toward the lower bin), deterministically, so memory stays
    bounded no matter how adversarial the value stream is. The running
    ``total``/``count`` accumulate the *raw* observations, so derived
    means never drift from the clamping.

    Args:
        name: Registry name.
        max_bins: Distinct values retained exactly (>= 1).
    """

    __slots__ = ("name", "max_bins", "bins", "total", "count", "clamped")

    def __init__(self, name: str, max_bins: int = 128):
        if int(max_bins) < 1:
            raise ConfigError("histogram max_bins must be >= 1")
        self.name = name
        self.max_bins = int(max_bins)
        self.bins: dict = {}
        self.total = 0.0
        self.count = 0
        self.clamped = 0

    def observe(self, value, n: int = 1) -> None:
        """Count ``n`` observations of ``value`` (clamping beyond the bound)."""
        self.total += value * n
        self.count += int(n)
        if value not in self.bins and len(self.bins) >= self.max_bins:
            value = min(self.bins, key=lambda bin_: (abs(bin_ - value), bin_))
            self.clamped += int(n)
        self.bins[value] = self.bins.get(value, 0) + int(n)

    @property
    def mean(self) -> float:
        """Exact mean of the raw observations (clamping never moves it)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """``{value: count}`` in ascending value order (snapshot form)."""
        return dict(sorted(self.bins.items()))

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the (possibly clamped) bins."""
        p = float(p)
        if not 0.0 < p <= 100.0:
            raise ConfigError(f"percentile must be in (0, 100], got {p}")
        if not self.count:
            return 0.0
        rank = int(np.ceil(p / 100.0 * self.count))
        seen = 0
        for value, count in sorted(self.bins.items()):
            seen += count
            if seen >= rank:
                return float(value)
        return float(max(self.bins))

    def __len__(self) -> int:
        return len(self.bins)

    def snapshot_value(self):
        return self.as_dict()

    def __repr__(self) -> str:
        return f"Histogram({self.name}, bins={len(self.bins)}/{self.max_bins})"


class MetricsRegistry:
    """Named metrics of one subsystem, snapshotted as a flat dict.

    Names are unique per registry (double registration is a
    :class:`~repro.errors.ConfigError` — two owners silently sharing a
    counter is how metrics lie). Iteration and :meth:`snapshot` follow
    registration order, so the rendered dict is deterministic.
    """

    def __init__(self):
        self._metrics: dict = {}

    def counter(self, name: str) -> Counter:
        """Create and register a :class:`Counter`."""
        return self._register(Counter(name))

    def gauge(self, name: str, initial=0) -> Gauge:
        """Create and register a :class:`Gauge`."""
        return self._register(Gauge(name, initial))

    def histogram(self, name: str, max_bins: int = 128) -> Histogram:
        """Create and register a bounded :class:`Histogram`."""
        return self._register(Histogram(name, max_bins=max_bins))

    def _register(self, metric):
        if metric.name in self._metrics:
            raise ConfigError(f"metric {metric.name!r} is already registered")
        self._metrics[metric.name] = metric
        return metric

    def get(self, name: str):
        """The registered metric named ``name`` (KeyError when absent)."""
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """``{name: value}`` for every metric, in registration order."""
        return {name: metric.snapshot_value() for name, metric in self._metrics.items()}
