"""Deterministic request tracing on the virtual clock.

A :class:`Span` is one named interval of simulated time; spans nest
into a tree that follows a request from admission through queueing,
plan compilation, per-shard scans, delta scans, merge, and finalize.
Because every duration comes from the simulated device/host models and
every timestamp from the server's
:class:`~repro.serve.clock.VirtualClock`, the same seeded workload
produces **bit-identical traces** — they can be snapshot-tested in CI,
which real (wall-clock) tracers never can.

The :class:`Tracer` owns sampling policy (trace 1 in ``sample_every``
requests, decided deterministically from the request sequence number so
replays agree), retains a bounded window of finished traces, and
exports them as Chrome trace-event JSON (``export_chrome_trace``)
loadable in ``chrome://tracing`` or https://ui.perfetto.dev.

Span construction is skipped entirely for unsampled requests — the
hot path pays a single modulo, not an allocation.
"""

from __future__ import annotations

import json
from collections import deque

from repro.errors import ConfigError

_MICROS = 1e6  # Chrome trace events count microseconds.


class Span:
    """One named interval of simulated seconds, with nested children.

    Start times are absolute simulated seconds once a trace is anchored
    to the server clock; inside the executor they are relative to the
    search's own zero and shifted into place afterwards
    (:meth:`shift`).

    Attributes:
        name: Stage name (``"admit"``, ``"shard_scan"``, ...).
        start: Start time in simulated seconds.
        duration: Length in simulated seconds.
        attrs: Small dict of stage facts (shard id, cache_hit, costs).
        children: Nested spans, in creation order.
    """

    __slots__ = ("name", "start", "duration", "attrs", "children")

    def __init__(self, name: str, start: float = 0.0, duration: float = 0.0, **attrs):
        self.name = name
        self.start = float(start)
        self.duration = float(duration)
        self.attrs = attrs
        self.children: list = []

    @property
    def end(self) -> float:
        return self.start + self.duration

    def child(self, name: str, start: float = 0.0, duration: float = 0.0, **attrs) -> "Span":
        """Create, attach, and return a nested span."""
        span = Span(name, start=start, duration=duration, **attrs)
        self.children.append(span)
        return span

    def shift(self, dt: float) -> "Span":
        """Move this whole subtree ``dt`` seconds; returns self."""
        self.start += dt
        for child in self.children:
            child.shift(dt)
        return self

    def copy(self) -> "Span":
        """Deep copy (batched requests share one execution subtree)."""
        dup = Span(self.name, start=self.start, duration=self.duration, **dict(self.attrs))
        dup.children = [child.copy() for child in self.children]
        return dup

    def walk(self):
        """Yield ``(depth, span)`` pre-order over the subtree."""
        stack = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))

    def find(self, name: str):
        """First span named ``name`` in pre-order, or None."""
        for _, span in self.walk():
            if span.name == name:
                return span
        return None

    def render(self) -> str:
        """Stable text tree (same connector style as ``PlanNode.render``)."""
        lines: list = []
        self._render(lines, prefix="", is_last=True, is_root=True)
        return "\n".join(lines)

    def _render(self, lines, prefix: str, is_last: bool, is_root: bool) -> None:
        window = f"[{self.start * 1e3:.6g} ms + {self.duration * 1e3:.6g} ms]"
        facts = " ".join(f"{key}={_fmt(value)}" for key, value in self.attrs.items())
        label = f"{self.name} {window}" + (f" · {facts}" if facts else "")
        if is_root:
            lines.append(label)
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + label)
            child_prefix = prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(self.children):
            child._render(lines, child_prefix, is_last=(i == len(self.children) - 1), is_root=False)

    def to_dict(self) -> dict:
        """Plain nested dict (snapshot-test and JSON friendly)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, start={self.start:.6g}, "
            f"duration={self.duration:.6g}, children={len(self.children)})"
        )


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class Tracer:
    """Sampling policy plus a bounded store of finished request traces.

    Args:
        sample_every: Trace one request in this many, decided from the
            request sequence number (``seq % sample_every == 0``) so the
            choice is deterministic under replay. ``1`` traces all.
        keep: Finished traces retained (oldest evicted first).
        clock: Optional :class:`~repro.serve.clock.VirtualClock`; spans
            recorded outside a request (stream compaction) stamp their
            start from it when present.
    """

    def __init__(self, sample_every: int = 1, keep: int = 256, clock=None):
        if int(sample_every) < 1:
            raise ConfigError("sample_every must be >= 1")
        if int(keep) < 1:
            raise ConfigError("keep must be >= 1")
        self.sample_every = int(sample_every)
        self.clock = clock
        self.traces: deque = deque(maxlen=int(keep))
        self.total_traces = 0

    def sampled(self, seq: int) -> bool:
        """Whether request ``seq`` is traced (deterministic 1-in-N)."""
        return seq % self.sample_every == 0

    def record(self, span: Span) -> None:
        """File a finished root span into the bounded store."""
        self.traces.append(span)
        self.total_traces += 1

    def chrome_trace_events(self) -> list:
        """Retained traces as Chrome trace-event dicts (``ph: "X"``).

        Each request becomes one ``pid`` so Perfetto renders requests as
        separate process tracks; concurrent sibling spans (per-shard
        scans) get distinct ``tid`` lanes inside it.
        """
        events: list = []
        for pid, root in enumerate(self.traces):
            seq = root.attrs.get("seq", pid)
            for depth, span in root.walk():
                tid = span.attrs.get("shard", 0)
                event = {
                    "name": span.name,
                    "ph": "X",
                    "ts": round(span.start * _MICROS, 3),
                    "dur": round(span.duration * _MICROS, 3),
                    "pid": int(seq),
                    "tid": int(tid),
                    "args": {key: value for key, value in span.attrs.items()},
                }
                event["args"]["depth"] = depth
                events.append(event)
        return events

    def export_chrome_trace(self, path=None) -> str:
        """Render retained traces as Chrome trace JSON; write if ``path``.

        The output loads directly in ``chrome://tracing`` or Perfetto
        (https://ui.perfetto.dev → Open trace file).
        """
        payload = {
            "traceEvents": self.chrome_trace_events(),
            "displayTimeUnit": "ms",
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text
