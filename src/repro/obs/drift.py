"""Predicted-vs-observed cost drift tracking.

The planner prices every batch (``CompiledPlan.predicted_cost``, in
simulated seconds over the costed stages); the executor then observes
what those stages actually took. The gap between the two is the signal
the ROADMAP's "online recalibration from served stage profiles" item
needs: when the calibrated :class:`~repro.plan.cost.CostModel` goes
stale — new data distribution, regime shift, drifting shard balance —
relative error climbs *before* plan choices visibly degrade.

:class:`DriftTracker` keeps a rolling window of per-batch relative
errors ``|predicted - observed| / observed`` and reports nearest-rank
``p50``/``p90`` — surfaced by ``ServeMetrics.snapshot()`` as
``cost_drift_p50`` / ``cost_drift_p90``.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError
from repro.obs.registry import percentile_nearest_rank


class DriftTracker:
    """Rolling relative error between predicted and observed batch cost.

    Args:
        window: Batches retained; old errors age out so the gauge tracks
            the *current* model fit, not the lifetime average.
    """

    def __init__(self, window: int = 256):
        if int(window) < 1:
            raise ConfigError("drift window must be >= 1")
        self.errors: deque = deque(maxlen=int(window))
        self.samples = 0
        self.skipped = 0

    def record(self, predicted: float, observed: float) -> None:
        """File one batch's predicted vs observed costed seconds.

        Non-positive observations carry no drift information (nothing
        ran on the costed stages) and are counted as skipped instead of
        polluting the window with infinities.
        """
        if observed is None or predicted is None or observed <= 0.0:
            self.skipped += 1
            return
        self.errors.append(abs(float(predicted) - float(observed)) / float(observed))
        self.samples += 1

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the windowed relative errors."""
        return percentile_nearest_rank(list(self.errors), p)

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p90(self) -> float:
        return self.percentile(90.0)

    def __len__(self) -> int:
        return len(self.errors)

    def __repr__(self) -> str:
        return f"DriftTracker(window={self.errors.maxlen}, samples={self.samples})"
