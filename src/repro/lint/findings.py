"""A :class:`Finding` is one rule violation at one source location.

Findings order and render deterministically — (path, line, col, rule id,
message) — so a lint report is byte-identical across runs over the same
tree, which is itself a tier-1 test contract (the checker enforces the
repo's determinism discipline and must live by it).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Pseudo rule id for files that fail to parse at all. Not a registered
#: rule (there is nothing to visit), but reported through the same
#: finding channel so a syntax error still fails the lint run.
PARSE_RULE_ID = "REPRO000"


@dataclass(frozen=True)
class Finding:
    """One violation: where it is, which rule, and what to do about it.

    Attributes:
        path: Display path of the offending file (``repro/...`` for
            anything under the package tree).
        line: 1-based source line.
        col: 0-based column offset (ast convention).
        rule_id: Stable rule identifier (``REPRO001`` ...).
        message: Human-facing description with the suggested fix.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def sort_key(self):
        """Total deterministic order: location first, then rule, then text."""
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def render(self) -> str:
        """``path:line:col: RULE message`` — the report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
