"""Small AST helpers: import-alias resolution and dotted call paths.

The determinism and seed-hygiene rules need to know that ``t()`` after
``from time import time as t`` is a wall-clock call and that
``npr.default_rng()`` after ``import numpy.random as npr`` is numpy's
generator factory. :func:`import_map` records what every imported name
canonically refers to; :func:`dotted_path` resolves a ``Name`` /
``Attribute`` chain against that map, returning e.g.
``"numpy.random.default_rng"`` — or ``None`` when the root is a local
object (``self.rng.integers`` resolves to nothing, deliberately).
"""

from __future__ import annotations

import ast


def import_map(tree: ast.Module) -> dict[str, str]:
    """Map every imported binding to the dotted path it refers to.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy.random import default_rng`` ->
    ``{"default_rng": "numpy.random.default_rng"}``;
    ``import numpy.random`` binds the root: ``{"numpy": "numpy"}``.
    Star imports and relative imports resolve conservatively (star: not
    recorded; relative: the module text as written).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{module}.{alias.name}" if module else alias.name
                aliases[alias.asname or alias.name] = target
    return aliases


def dotted_path(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve a Name/Attribute chain to its canonical dotted path.

    Returns ``None`` when the chain does not root in an imported name —
    attribute access on local objects is out of scope for module-path
    rules.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def call_path(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """:func:`dotted_path` of a call's callee."""
    return dotted_path(call.func, aliases)


def names_in(node: ast.AST) -> set[str]:
    """Every plain name and attribute terminal referenced under ``node``.

    Used by the seed-threading check: ``default_rng([seed, 1, i])``
    references ``seed``; ``default_rng(self.seed)`` references ``seed``
    through the attribute terminal.
    """
    found: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            found.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            found.add(sub.attr)
    return found
