"""The shipped rules; importing this package registers all of them.

One module per rule, named after the invariant it encodes:

* :mod:`~repro.lint.rules.determinism`  — REPRO001
* :mod:`~repro.lint.rules.taxonomy`     — REPRO002
* :mod:`~repro.lint.rules.accounting`   — REPRO003
* :mod:`~repro.lint.rules.metrics`      — REPRO004
* :mod:`~repro.lint.rules.defaults`     — REPRO005
* :mod:`~repro.lint.rules.seeds`        — REPRO006
* :mod:`~repro.lint.rules.retries`      — REPRO007
"""

from repro.lint.rules import (  # noqa: F401
    accounting,
    defaults,
    determinism,
    metrics,
    retries,
    seeds,
    taxonomy,
)
