"""REPRO003 — stage accounting: every charge lands in a *named* stage.

All simulated work flows through six charging calls (``Device.launch``,
``Device.charge_seconds``, ``Device.to_device``/``to_host``,
``HostCpu.charge_ops``/``charge_bytes``/``charge_seconds``) that fall
back to an *ambient* stage when no ``stage=`` is given. Ambient
fallback is how PR 5's ``plan_route`` bug class happened: host work
performed outside any scope got charged to whatever stage was last
active, and the per-stage profile (Table I, the calibrated cost model,
cost-drift tracking) silently lied. This rule requires every charging
call to either

* pass an explicit non-``None`` ``stage=`` keyword, or
* sit lexically inside a ``with <obj>.stage(...)`` scope,

so the reader — and the profile — always knows which stage pays.
"""

from __future__ import annotations

import ast

from repro.lint.registry import Rule, register

#: Method names that charge simulated seconds against a stage.
CHARGING_METHODS = frozenset(
    {"launch", "charge_ops", "charge_bytes", "charge_seconds", "to_device", "to_host"}
)


def _has_explicit_stage(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "stage":
            return not (
                isinstance(keyword.value, ast.Constant) and keyword.value.value is None
            )
    return False


def _inside_stage_scope(ctx, call: ast.Call) -> bool:
    for ancestor in ctx.ancestors(call):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "stage"
                ):
                    return True
    return False


@register
class AccountingRule(Rule):
    rule_id = "REPRO003"
    title = "stage-accounting"
    rationale = (
        "charges that fall back to the ambient stage get misattributed "
        "(the plan_route bug class); every charge names its stage"
    )

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in CHARGING_METHODS
            ):
                continue
            if _has_explicit_stage(node) or _inside_stage_scope(ctx, node):
                continue
            yield ctx.finding(
                self,
                node,
                f"{node.func.attr}() without an explicit stage= (or an enclosing "
                "with .stage(...) scope); unattributed work corrupts the per-stage "
                "profile the cost model calibrates against",
            )
