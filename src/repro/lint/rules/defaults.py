"""REPRO005 — no mutable default arguments.

A mutable default (``def f(x=[])``) is evaluated once at definition
time and shared across every call — in a codebase where one session
serves many indexes and one server serves many requests, a shared
hidden list is a cross-request state leak waiting to happen. Flags
list/dict/set displays and comprehensions, plus calls to the obvious
mutable constructors, used as parameter defaults. Default to ``None``
and build inside the body instead.
"""

from __future__ import annotations

import ast

from repro.lint.registry import Rule, register

_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_DISPLAYS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _defaults_with_params(args: ast.arguments):
    """Pair every default expression with the parameter it belongs to."""
    positional = args.posonlyargs + args.args
    for param, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
        yield param, default
    for param, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            yield param, default


@register
class MutableDefaultsRule(Rule):
    rule_id = "REPRO005"
    title = "mutable-defaults"
    rationale = (
        "a mutable default is one shared object across every call — "
        "hidden cross-request state in a serving system"
    )

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            fn_name = getattr(node, "name", "<lambda>")
            for param, default in _defaults_with_params(node.args):
                if _is_mutable_default(default):
                    yield ctx.finding(
                        self,
                        default,
                        f"mutable default for parameter {param.arg!r} of {fn_name}() "
                        "is shared across calls; default to None and build inside",
                    )
