"""REPRO004 — metrics discipline: register once, keys only ever grow.

PR 8's back-compat contract is that :meth:`ServeMetrics.snapshot` keys
never disappear or change meaning — dashboards and the benchmark
harness key off them. Two statically visible ways to break that:

* registering the same literal metric name twice in one scope —
  :class:`~repro.obs.registry.MetricsRegistry` raises at runtime, but
  only on the code path that actually double-registers; the lint catches
  it at commit time.
* reaching into ``MetricsRegistry._metrics`` from outside the registry
  module — the only way to *remove* or rebind a registered metric, which
  is exactly what the grow-only snapshot contract forbids. The typed
  ``counter()``/``gauge()``/``histogram()`` constructors and the public
  read surface are the whole sanctioned API.
"""

from __future__ import annotations

import ast

from repro.lint.registry import Rule, register

#: MetricsRegistry constructor methods whose first argument names a metric.
REGISTRATION_METHODS = frozenset({"counter", "gauge", "histogram"})

#: The one module allowed to touch the registry's private storage.
REGISTRY_MODULE_SUFFIX = "obs/registry.py"


@register
class MetricsRule(Rule):
    rule_id = "REPRO004"
    title = "metrics-discipline"
    rationale = (
        "snapshot keys are a public contract: metric names register exactly "
        "once and the key set only ever grows"
    )

    def check(self, ctx):
        seen: dict[tuple[int, str], int] = {}
        in_registry_module = ctx.path.endswith(REGISTRY_MODULE_SUFFIX)
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in REGISTRATION_METHODS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                name = node.args[0].value
                key = (id(ctx.enclosing_scope(node)), name)
                if key in seen:
                    yield ctx.finding(
                        self,
                        node,
                        f"metric {name!r} registered more than once in this scope "
                        f"(first at line {seen[key]}); each snapshot key has exactly "
                        "one owner",
                    )
                else:
                    seen[key] = node.lineno
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "_metrics"
                and not in_registry_module
            ):
                yield ctx.finding(
                    self,
                    node,
                    "touches MetricsRegistry._metrics private state; the snapshot "
                    "key set must only grow through counter()/gauge()/histogram()",
                )
