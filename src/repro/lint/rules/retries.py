"""REPRO007 — retry hygiene: bounded attempts, seeded jitter.

Failover and eviction paths retry by design (re-dispatch a scan to the
next replica, evict-and-reattach under memory pressure), and a retry
loop is exactly where an "it can't happen twice" assumption becomes an
infinite loop in production. Two checks on any *retry loop* — a
``while``/``for`` whose body contains a ``try`` with an except handler
that resumes the loop instead of propagating:

* **bounded attempts** — the loop must iterate something finite. A
  constant-true ``while True:`` / ``while 1:`` retry loop has no
  attempt bound; spell the bound explicitly
  (``for attempt in range(max_attempts):``) so exhaustion is a code
  path that raises a taxonomy error, not a hang. Loops whose handlers
  all end in ``raise``/``return``/``break`` are not retry loops — they
  escape on failure.
* **seeded jitter** — backoff jitter drawn inside a retry loop must
  come from an explicitly seeded generator. Stdlib ``random`` (hidden
  process-global state) and unseeded ``numpy.random.default_rng()``
  make the retry schedule — and therefore every latency this simulation
  charges for a failover — unreproducible. REPRO001 flags these calls
  anywhere; this rule re-flags them in retry position because there the
  fix is specific: derive the jitter stream from the failure context,
  e.g. ``default_rng([seed, shard, attempt])`` as
  :meth:`FaultInjector.retry_penalty_for
  <repro.replica.faults.FaultInjector.retry_penalty_for>` does.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import call_path, import_map
from repro.lint.registry import Rule, register

#: Handler-terminating statements that escape the loop rather than
#: resume it — a handler ending in one of these is not a retry.
_ESCAPES = (ast.Raise, ast.Return, ast.Break)


def _is_constant_true(test: ast.AST) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _handler_resumes(handler: ast.ExceptHandler) -> bool:
    """Whether the handler falls back into the loop (continue/pass/...)."""
    if not handler.body:
        return True
    return not isinstance(handler.body[-1], _ESCAPES)


def _loop_body_nodes(loop: ast.While | ast.For):
    """Walk the loop body without descending into nested defs/lambdas.

    Nested loops stay in scope (a retry loop may wrap its try in an
    inner structure), but a function defined inside the loop runs on its
    own schedule and is judged on its own.
    """
    stack = list(loop.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_retry_loop(loop: ast.While | ast.For) -> bool:
    for node in _loop_body_nodes(loop):
        if isinstance(node, ast.Try):
            if any(_handler_resumes(h) for h in node.handlers):
                return True
    return False


@register
class RetryRule(Rule):
    rule_id = "REPRO007"
    title = "retry-hygiene"
    rationale = (
        "retry loops must bound their attempts and seed their jitter; an "
        "unbounded retry hangs on repeated failure and unseeded backoff "
        "un-reproduces every failover latency"
    )

    def check(self, ctx):
        aliases = import_map(ctx.tree)
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.While, ast.For)):
                continue
            if not _is_retry_loop(loop):
                continue
            if isinstance(loop, ast.While) and _is_constant_true(loop.test):
                yield ctx.finding(
                    self,
                    loop,
                    "unbounded retry loop (while True: with a resuming except "
                    "handler); bound the attempts explicitly, e.g. "
                    "for attempt in range(max_attempts):",
                )
            for node in _loop_body_nodes(loop):
                if not isinstance(node, ast.Call):
                    continue
                path = call_path(node, aliases)
                if path is None:
                    continue
                if path == "random" or path.startswith("random."):
                    yield ctx.finding(
                        self,
                        node,
                        f"retry jitter from stdlib random ({path}) is "
                        "process-global and unseeded; derive it from the "
                        "failure context, e.g. "
                        "numpy.random.default_rng([seed, shard, attempt])",
                    )
                elif (
                    path == "numpy.random.default_rng"
                    and not node.args
                    and not node.keywords
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "unseeded default_rng() inside a retry loop; seed the "
                        "jitter from the failure context, e.g. "
                        "default_rng([seed, shard, attempt])",
                    )
