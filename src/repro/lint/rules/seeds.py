"""REPRO006 — seeded-API hygiene: a ``seed=`` parameter must be threaded.

The repo's reproducibility story is "same seed in, same bytes out",
which only works if every function that *accepts* a seed actually
*uses* it — and uses it for all of its randomness. Two shapes of
violation:

* a public function (or constructor) takes ``seed``/``*_seed`` and its
  body never references it: the caller believes the run is pinned, the
  function quietly isn't. (Trivial protocol stubs — docstring / pass /
  raise — are exempt.)
* a function that takes a seed parameter builds a generator whose
  arguments don't reference it (``default_rng(0)``, ``default_rng(42)``):
  the seed is re-derived instead of threaded, so two calls with
  different seeds return identical "random" draws.

Derived streams like ``default_rng([seed, client])`` (the traffic
generator's per-client substreams) reference the parameter and pass.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import call_path, import_map, names_in
from repro.lint.registry import Rule, register


def _seed_params(node) -> list[str]:
    args = node.args
    params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return [p for p in params if p == "seed" or p.endswith("_seed")]


def _is_public(name: str) -> bool:
    return not name.startswith("_") or (name.startswith("__") and name.endswith("__"))


def _is_stub(node) -> bool:
    """Docstring/pass/ellipsis/raise-only bodies are declarations, not code."""
    for stmt in node.body:
        if isinstance(stmt, (ast.Pass, ast.Raise)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


def _nearest_def(ctx, node):
    """The innermost function definition lexically containing ``node``."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


@register
class SeedHygieneRule(Rule):
    rule_id = "REPRO006"
    title = "seed-hygiene"
    rationale = (
        "an accepted-but-ignored or re-derived seed silently breaks "
        "same-seed-same-bytes reproducibility"
    )

    def check(self, ctx):
        aliases = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            seed_params = _seed_params(node)
            if not seed_params:
                continue
            body_names = set()
            for stmt in node.body:
                body_names |= names_in(stmt)
            if _is_public(node.name) and not _is_stub(node):
                for param in seed_params:
                    if param not in body_names:
                        yield ctx.finding(
                            self,
                            node,
                            f"{node.name}() accepts {param}= but never threads it; "
                            "the caller's pinned seed has no effect",
                        )
            for stmt in node.body:
                for call in ast.walk(stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    path = call_path(call, aliases)
                    if path != "numpy.random.default_rng":
                        continue
                    # A nested def with its own seed params owns its calls;
                    # don't judge them against the outer signature.
                    if _nearest_def(ctx, call) is not node:
                        continue
                    if not call.args and not call.keywords:
                        continue  # unseeded — REPRO001's finding, not ours
                    referenced = set()
                    for arg in list(call.args) + [kw.value for kw in call.keywords]:
                        referenced |= names_in(arg)
                    if not referenced & set(seed_params):
                        yield ctx.finding(
                            self,
                            call,
                            f"{node.name}() takes {seed_params[0]}= but re-derives its "
                            "generator from other state; thread the seed parameter "
                            "into default_rng(...)",
                        )
