"""REPRO001 — determinism: no wall clocks, no unseeded or global RNG.

Everything this reproduction reports runs on a simulated clock
(``Device``/``HostCpu`` stage seconds, the serve layer's
``VirtualClock``) and every random draw threads an explicit seed, which
is what makes results bit-identical across plan strategies and traces
byte-identical across runs. One ``time.time()`` in a costed path or one
``np.random.rand()`` silently un-reproduces all of it. This rule flags:

* wall-clock reads (``time.time``/``monotonic``/``perf_counter``/...,
  ``datetime.now``/``utcnow``/``today``) and ``time.sleep``,
* any use of the stdlib ``random`` module (global, process-wide state),
* numpy's legacy module-level RNG (``np.random.rand``, ``np.random.seed``,
  ``np.random.shuffle``, ... and the legacy ``RandomState``),
* unseeded ``np.random.default_rng()`` — seedable APIs must be *given*
  a seed.

Seeded ``default_rng(seed)`` / ``Generator`` / ``SeedSequence`` /
explicit bit generators are the sanctioned spellings. The one
legitimate wall-clock user (the human-facing experiments report CLI) is
baseline-allowlisted rather than special-cased in the rule.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import call_path, import_map
from repro.lint.registry import Rule, register

#: Canonical dotted paths that read (or block on) the wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``numpy.random`` attributes that are seedable construction APIs (fine)
#: rather than draws from the hidden module-level generator (flagged).
SEEDABLE_NUMPY = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "SFC64"}
)


@register
class DeterminismRule(Rule):
    rule_id = "REPRO001"
    title = "determinism"
    rationale = (
        "simulated paths must stay on the virtual clock and seeded RNG; "
        "one wall-clock read or global random draw breaks bit-identical replay"
    )

    def check(self, ctx):
        aliases = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = call_path(node, aliases)
            if path is None:
                continue
            if path in WALL_CLOCK_CALLS:
                yield ctx.finding(
                    self,
                    node,
                    f"wall-clock call {path}() in a simulated path; time must come "
                    "from the virtual clock / simulated stage seconds",
                )
            elif path == "random" or path.startswith("random."):
                yield ctx.finding(
                    self,
                    node,
                    f"stdlib random ({path}) draws from hidden process-global state; "
                    "use numpy.random.default_rng(seed)",
                )
            elif path.startswith("numpy.random."):
                attr = path.split(".", 2)[2]
                if attr == "default_rng":
                    if not node.args and not node.keywords:
                        yield ctx.finding(
                            self,
                            node,
                            "unseeded numpy.random.default_rng(); thread an explicit "
                            "seed so replays are bit-identical",
                        )
                elif attr.split(".")[0] not in SEEDABLE_NUMPY:
                    yield ctx.finding(
                        self,
                        node,
                        f"module-level numpy RNG {path}() uses hidden global state; "
                        "use numpy.random.default_rng(seed)",
                    )
