"""REPRO002 — error taxonomy: raise ReproError subclasses, swallow nothing.

The public contract since the seed has been "catch :class:`ReproError`
and you have caught everything this package throws". That only holds if
no code path raises a builtin ``ValueError`` where a caller expects
``ConfigError``, no handler silently eats an error class it did not
mean to, and no runtime validation hides behind ``assert`` (which
vanishes under ``python -O``, turning a guarded invariant into silent
corruption). Three checks:

* ``raise`` of a builtin exception type (``ValueError``, ``KeyError``,
  ``IndexError``, ``AssertionError``, ...). Control-flow builtins
  (``StopIteration``, ``SystemExit``, ``KeyboardInterrupt``, ...) and
  the abstract-method marker ``NotImplementedError`` are allowed, as is
  re-raising a caught variable and raising any known ``ReproError``
  subclass — including subclasses defined in the linted files.
  ``AttributeError`` raised inside a ``__getattr__``/``__getattribute__``
  body is the attribute protocol itself (``hasattr`` and lazy module
  exports depend on exactly that type) and is likewise allowed.
* bare ``except:`` / ``except Exception:`` / ``except BaseException:``
  whose body never re-raises — the swallow shape that turns taxonomy
  violations (and everything else) into silence.
* any ``assert`` statement — simulated-path invariants must raise a
  taxonomy error (``InvariantError`` exists for exactly this).
"""

from __future__ import annotations

import ast
import builtins

from repro.lint.registry import Rule, register

_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)

#: Builtin raises that are not taxonomy violations: interpreter control
#: flow, process exit, and the abstract-method convention.
_ALLOWED_BUILTINS = frozenset(
    {
        "NotImplementedError",
        "StopIteration",
        "StopAsyncIteration",
        "GeneratorExit",
        "KeyboardInterrupt",
        "SystemExit",
    }
)

_SWALLOWERS = frozenset({"Exception", "BaseException"})

#: Functions whose contract *is* raising AttributeError: the attribute
#: protocol (module-level ``__getattr__`` included) signals "no such
#: attribute" with exactly that builtin type.
_ATTR_PROTOCOL_FUNCS = frozenset({"__getattr__", "__getattribute__"})


def _raised_name(exc: ast.AST) -> str | None:
    """The class name a raise statement targets, when statically visible."""
    target = exc.func if isinstance(exc, ast.Call) else exc
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _handler_catches_everything(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    caught = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for node in caught:
        name = node.id if isinstance(node, ast.Name) else getattr(node, "attr", None)
        if name in _SWALLOWERS:
            return True
    return False


@register
class TaxonomyRule(Rule):
    rule_id = "REPRO002"
    title = "error-taxonomy"
    rationale = (
        "catching ReproError must catch everything this package throws; "
        "builtin raises, swallowing handlers and -O-stripped asserts all break that"
    )

    def check(self, ctx):
        protocol_raises = set()
        for fn in ast.walk(ctx.tree):
            if (
                isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
                and fn.name in _ATTR_PROTOCOL_FUNCS
            ):
                for sub in ast.walk(fn):
                    if isinstance(sub, ast.Raise):
                        protocol_raises.add(sub)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise) and node.exc is not None:
                name = _raised_name(node.exc)
                if name == "AttributeError" and node in protocol_raises:
                    continue
                if (
                    name is not None
                    and name in _BUILTIN_EXCEPTIONS
                    and name not in _ALLOWED_BUILTINS
                    and name not in ctx.taxonomy
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"raises builtin {name}; the public surface raises only "
                        "ReproError subclasses (ConfigError/QueryError/...)",
                    )
            elif isinstance(node, ast.ExceptHandler):
                if _handler_catches_everything(node) and not any(
                    isinstance(sub, ast.Raise) for sub in ast.walk(node)
                ):
                    caught = "bare except:" if node.type is None else "except Exception"
                    yield ctx.finding(
                        self,
                        node,
                        f"{caught} swallows every error class; catch ReproError (or "
                        "a specific type) or re-raise",
                    )
            elif isinstance(node, ast.Assert):
                yield ctx.finding(
                    self,
                    node,
                    "assert used for runtime validation vanishes under python -O; "
                    "raise a ReproError subclass (e.g. InvariantError) instead",
                )
