"""Rule base class and the stable-ID rule registry.

Every rule is a singleton registered under a stable ``REPRO0XX`` id via
the :func:`register` decorator; :func:`all_rules` returns them in id
order. Ids are part of the baseline contract (a baseline entry names a
file and a rule id), so they must never be renumbered — retire a rule by
deleting it and leaving its id unused.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigError
from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.lint.context import FileContext

_RULES: dict[str, "Rule"] = {}


class Rule:
    """One statically checkable invariant.

    Subclasses set the class attributes and implement :meth:`check`;
    instances are stateless (one instance lints many files, possibly
    interleaved), so any per-file bookkeeping lives in local variables.

    Attributes:
        rule_id: Stable identifier, ``REPRO`` + 3 digits.
        title: Short kebab-ish name for tables (``determinism``).
        rationale: One paragraph on why the invariant matters here.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: "FileContext") -> Iterable[Finding]:
        """Yield findings for one parsed file."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.rule_id} {self.title})"


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = rule_cls()
    if not rule.rule_id or not rule.title:
        raise ConfigError(f"rule {rule_cls.__name__} must define rule_id and title")
    if rule.rule_id in _RULES:
        raise ConfigError(f"duplicate rule id {rule.rule_id}")
    _RULES[rule.rule_id] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, in stable id order."""
    import repro.lint.rules  # noqa: F401  (importing registers the rules)

    return tuple(_RULES[rule_id] for rule_id in sorted(_RULES))


def get_rule(rule_id: str) -> Rule:
    """The rule registered under ``rule_id`` (ConfigError when unknown)."""
    for rule in all_rules():
        if rule.rule_id == rule_id:
            return rule
    raise ConfigError(f"unknown rule id {rule_id!r}")
