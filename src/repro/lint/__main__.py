"""CLI entry point: ``python -m repro.lint [paths...]``.

Exit code 0 when the tree is clean against the shipped baseline, 1 on
any unbaselined finding — and, under ``--strict``, on stale baseline
entries too (the allowlist must only ever shrink). Output is
deterministic: two consecutive runs over the same tree emit identical
bytes, which tier-1 asserts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import DEFAULT_BASELINE, EMPTY_BASELINE
from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules


def _default_root() -> Path:
    """The installed/source ``repro`` package tree itself."""
    import repro

    return Path(repro.__file__).resolve().parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant checker for the GENIE reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package tree)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries that no longer match anything",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the shipped baseline and report every finding",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="additionally write the report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}: {rule.rationale}")
        return 0

    paths = args.paths or [_default_root()]
    baseline = EMPTY_BASELINE if args.no_baseline else DEFAULT_BASELINE
    report = lint_paths(paths, baseline=baseline)
    text = report.render(strict=args.strict)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
