"""Per-file analysis context shared by every rule.

One :class:`FileContext` wraps one parsed module: its display path, the
AST, a parent map (rules ask "am I inside a ``with device.stage(...)``
block?"), and the error-taxonomy name set computed for the whole lint
run (``ReproError`` and everything that transitively subclasses it,
including subclasses defined in the linted files themselves).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule


class FileContext:
    """Everything a rule needs to check one file.

    Attributes:
        path: Display path (``repro/core/engine.py`` style).
        source: Raw source text.
        tree: Parsed :class:`ast.Module`.
        taxonomy: Names of every known ``ReproError`` subclass (plus the
            base itself) visible to this lint run.
    """

    def __init__(self, path: str, source: str, tree: ast.Module, taxonomy: frozenset):
        self.path = path
        self.source = source
        self.tree = tree
        self.taxonomy = taxonomy
        self._parents: dict = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST):
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """Nearest enclosing function/class/module for scoping checks."""
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
            ):
                return ancestor
        return self.tree

    def finding(self, rule: Rule, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule_id=rule.rule_id,
            message=message,
        )
