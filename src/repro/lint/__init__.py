"""repro.lint — AST-based static enforcement of this repo's invariants.

Every guarantee the reproduction ships — bit-identical results across
plan strategies, byte-identical traces across seeded runs, honest stage
accounting behind the calibrated cost model — is otherwise enforced
only dynamically, by tests that must think to exercise the violation.
This package makes the whole *class* of regressions checkable at commit
time: a rule registry with stable ids, AST visitors over ``src/``, a
per-file allowlist baseline for accepted legacy findings, and a
deterministic report (byte-identical across runs) wired into tier-1 and
CI.

Run it::

    PYTHONPATH=src python -m repro.lint            # lint the package tree
    PYTHONPATH=src python -m repro.lint --strict   # also fail on stale baseline
    PYTHONPATH=src python -m repro.lint --list-rules

Shipped rules:

======== ================== ==========================================
id       title              invariant
======== ================== ==========================================
REPRO001 determinism        no wall clocks, stdlib/global RNG, or
                            unseeded ``default_rng()`` in simulated paths
REPRO002 error-taxonomy     raise only ``ReproError`` subclasses; no
                            swallowing handlers; no runtime ``assert``
REPRO003 stage-accounting   every ``launch``/``charge_*``/transfer names
                            its profile stage
REPRO004 metrics-discipline metric names register once; snapshot keys
                            only grow
REPRO005 mutable-defaults   no mutable default arguments
REPRO006 seed-hygiene       an accepted ``seed=`` is threaded, never
                            ignored or re-derived
======== ================== ==========================================
"""

from repro.lint.baseline import (
    Baseline,
    BaselineEntry,
    DEFAULT_BASELINE,
    EMPTY_BASELINE,
)
from repro.lint.context import FileContext
from repro.lint.engine import Report, collect_files, display_path, lint_paths, lint_sources
from repro.lint.findings import Finding, PARSE_RULE_ID
from repro.lint.registry import Rule, all_rules, get_rule, register

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE",
    "EMPTY_BASELINE",
    "FileContext",
    "Finding",
    "PARSE_RULE_ID",
    "Report",
    "Rule",
    "all_rules",
    "collect_files",
    "display_path",
    "get_rule",
    "lint_paths",
    "lint_sources",
    "register",
]
