"""The lint engine: collect files, run every rule, apply the baseline.

Determinism is the design constraint everything else hangs off: files
are walked in sorted display-path order, findings sort by (path, line,
col, rule, message), the rendered report carries no timestamps or
absolute paths, and two consecutive runs over the same tree emit
byte-identical text (a tier-1 test asserts exactly that).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import Baseline, BaselineEntry, DEFAULT_BASELINE, EMPTY_BASELINE
from repro.lint.context import FileContext
from repro.lint.findings import Finding, PARSE_RULE_ID
from repro.lint.registry import Rule, all_rules


def display_path(path: Path) -> str:
    """Stable display path: ``repro/...`` for files under the package.

    Anchoring on the last ``/repro/`` component makes the same file
    render identically whether the linter was handed ``src``,
    ``src/repro`` or the file itself, from any working directory —
    which is also what lets baseline entries use package-relative
    paths.
    """
    posix = path.resolve().as_posix()
    marker = "/repro/"
    idx = posix.rfind(marker)
    if idx >= 0:
        return "repro/" + posix[idx + len(marker):]
    return path.as_posix()


def collect_files(paths) -> list[Path]:
    """Expand files/directories into a deterministically ordered file list."""
    seen: dict[str, Path] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            seen.setdefault(display_path(candidate), candidate)
    return [seen[key] for key in sorted(seen)]


def _base_taxonomy() -> set[str]:
    """Names of ``ReproError`` and every subclass importable right now."""
    import repro.errors as errors_module

    names: set[str] = set()

    def add(cls: type) -> None:
        names.add(cls.__name__)
        for sub in cls.__subclasses__():
            add(sub)

    add(errors_module.ReproError)
    return names


def _extend_taxonomy(trees: dict[str, ast.Module], base: set[str]) -> frozenset[str]:
    """Close the taxonomy over class definitions in the linted files.

    A fixture (or a future module) defining ``class FooError(QueryError)``
    makes ``FooError`` a legitimate raise target, transitively.
    """
    names = set(base)
    class_bases: list[tuple[str, set[str]]] = []
    for tree in trees.values():
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                basenames: set[str] = set()
                for base_node in node.bases:
                    if isinstance(base_node, ast.Name):
                        basenames.add(base_node.id)
                    elif isinstance(base_node, ast.Attribute):
                        basenames.add(base_node.attr)
                class_bases.append((node.name, basenames))
    changed = True
    while changed:
        changed = False
        for name, basenames in class_bases:
            if name not in names and basenames & names:
                names.add(name)
                changed = True
    return frozenset(names)


@dataclass
class Report:
    """Outcome of one lint run.

    Attributes:
        findings: Unsuppressed findings, deterministically sorted.
        suppressed: ``(baseline entry, match count)`` for entries that
            matched at least one finding, in entry order.
        stale: Baseline entries that matched nothing (the allowlist must
            only shrink; strict mode fails on these).
        files: Number of files checked.
        rules: The rules that ran.
    """

    findings: list[Finding]
    suppressed: list[tuple[BaselineEntry, int]]
    stale: list[BaselineEntry]
    files: int
    rules: tuple[Rule, ...] = field(default_factory=tuple)

    @property
    def suppressed_total(self) -> int:
        return sum(count for _, count in self.suppressed)

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 on any finding (or, strictly, stale entries)."""
        if self.findings:
            return 1
        if strict and self.stale:
            return 1
        return 0

    def render(self, strict: bool = False) -> str:
        """The full deterministic report text."""
        lines = [
            "repro.lint report",
            f"files checked: {self.files}",
            "rules: " + " ".join(rule.rule_id for rule in self.rules),
            "",
        ]
        if self.findings:
            lines.append(f"findings ({len(self.findings)}):")
            lines.extend(f"  {finding.render()}" for finding in self.findings)
        else:
            lines.append("findings (0): none")
        lines.append("")
        lines.append(
            f"baselined ({self.suppressed_total} finding(s) under "
            f"{len(self.suppressed)} entrie(s)):"
        )
        for entry, count in self.suppressed:
            lines.append(f"  {entry.path} {entry.rule_id} x{count} — {entry.reason}")
        if self.stale:
            lines.append("")
            lines.append(f"stale baseline entries ({len(self.stale)}):")
            lines.extend(
                f"  {entry.path} {entry.rule_id} — {entry.reason}" for entry in self.stale
            )
        lines.append("")
        lines.append("result: " + ("FAIL" if self.exit_code(strict) else "PASS"))
        return "\n".join(lines)


def _lint_parsed(
    sources: dict[str, str],
    trees: dict[str, ast.Module],
    parse_failures: list[Finding],
    baseline: Baseline,
    rules: tuple[Rule, ...],
) -> Report:
    taxonomy = _extend_taxonomy(trees, _base_taxonomy())
    raw_findings = list(parse_failures)
    for path in sorted(trees):
        ctx = FileContext(path, sources[path], trees[path], taxonomy)
        for rule in rules:
            raw_findings.extend(rule.check(ctx))

    kept: list[Finding] = []
    counts: dict[BaselineEntry, int] = {}
    for finding in sorted(raw_findings, key=Finding.sort_key):
        entry = baseline.match(finding)
        if entry is None:
            kept.append(finding)
        else:
            counts[entry] = counts.get(entry, 0) + 1
    suppressed = [(entry, counts[entry]) for entry in baseline.entries if entry in counts]
    stale = [entry for entry in baseline.entries if entry not in counts]
    return Report(
        findings=kept,
        suppressed=suppressed,
        stale=stale,
        files=len(trees) + len({f.path for f in parse_failures}),
        rules=rules,
    )


def lint_sources(sources: dict[str, str], baseline: Baseline | None = None) -> Report:
    """Lint in-memory sources keyed by display path (fixture-test entry).

    Defaults to :data:`EMPTY_BASELINE` so fixtures see every finding.
    """
    baseline = EMPTY_BASELINE if baseline is None else baseline
    trees: dict[str, ast.Module] = {}
    parse_failures: list[Finding] = []
    for path in sorted(sources):
        try:
            trees[path] = ast.parse(sources[path])
        except SyntaxError as exc:
            parse_failures.append(
                Finding(path, exc.lineno or 0, 0, PARSE_RULE_ID, f"syntax error: {exc.msg}")
            )
    return _lint_parsed(sources, trees, parse_failures, baseline, all_rules())


def lint_paths(paths, baseline: Baseline | None = None) -> Report:
    """Lint files and/or directory trees on disk (CLI and tier-1 entry).

    Defaults to :data:`DEFAULT_BASELINE` — the repo's shipped allowlist.
    """
    baseline = DEFAULT_BASELINE if baseline is None else baseline
    sources: dict[str, str] = {}
    for path in collect_files(paths):
        sources[display_path(path)] = path.read_text(encoding="utf-8")
    trees: dict[str, ast.Module] = {}
    parse_failures: list[Finding] = []
    for dpath in sorted(sources):
        try:
            trees[dpath] = ast.parse(sources[dpath])
        except SyntaxError as exc:
            parse_failures.append(
                Finding(dpath, exc.lineno or 0, 0, PARSE_RULE_ID, f"syntax error: {exc.msg}")
            )
    return _lint_parsed(sources, trees, parse_failures, baseline, all_rules())
