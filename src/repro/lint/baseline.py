"""Per-file allowlist baseline for known, accepted findings.

A baseline entry names a file, a rule id, and a mandatory reason; every
finding it matches is *suppressed* (reported in the baselined section,
not counted against the exit code). This is how a new rule lands
without a flag-day rewrite: pre-existing violations are enumerated here
with their justification, and any **new** violation — a new file, or a
new rule broken in an already-baselined file under a different id —
still fails the run. Entries that stop matching anything are *stale*
and fail ``python -m repro.lint --strict`` so the allowlist can only
shrink over time.

``DEFAULT_BASELINE`` is the repo's shipped allowlist. The bulk of it is
REPRO002: the seed-era modules (``lsh``, ``gpu``, ``core`` primitives,
``datasets``, ``sa``, ``experiments``) validate arguments with builtin
``ValueError``/``KeyError``/``IndexError``, and their tests pin those
builtin types; migrating them onto the ``ReproError`` taxonomy is a
deliberate breaking change tracked in ROADMAP, not something to smuggle
through a lint PR. Everything added since PR 2 (api/serve/cluster/plan/
stream/obs) raises taxonomy errors only and is *not* baselined — the
rule holds the line there.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import ConfigError
from repro.lint.findings import Finding


class BaselineEntry(NamedTuple):
    """Allow every finding of ``rule_id`` in ``path``, for ``reason``."""

    path: str
    rule_id: str
    reason: str


class Baseline:
    """An immutable set of baseline entries keyed by (path, rule id)."""

    def __init__(self, entries: tuple = ()):
        by_key: dict = {}
        for entry in entries:
            if not entry.reason.strip():
                raise ConfigError(
                    f"baseline entry {entry.path}:{entry.rule_id} needs a reason string"
                )
            key = (entry.path, entry.rule_id)
            if key in by_key:
                raise ConfigError(f"duplicate baseline entry for {entry.path}:{entry.rule_id}")
            by_key[key] = entry
        self.entries = tuple(sorted(by_key.values()))
        self._by_key = by_key

    def match(self, finding: Finding) -> BaselineEntry | None:
        """The entry suppressing ``finding``, or ``None``."""
        return self._by_key.get((finding.path, finding.rule_id))

    def __len__(self) -> int:
        return len(self.entries)


#: No suppressions at all — what fixture tests and ``--no-baseline`` use.
EMPTY_BASELINE = Baseline()

_SEED_ERA_RAISES = (
    "callers and tests pin the builtin exception type from the seed snapshot; "
    "migrating this module onto the ReproError taxonomy is a tracked breaking change"
)

DEFAULT_BASELINE = Baseline(
    (
        # -- REPRO001: the one human-facing CLI that *should* measure wall
        #    time. Nothing simulated imports it.
        BaselineEntry(
            "repro/experiments/report.py",
            "REPRO001",
            "the one-shot report CLI prints real wall-clock regeneration time "
            "for the human running it; no simulated path imports this module",
        ),
        # -- REPRO002: seed-era builtin raises, per file.
        BaselineEntry("repro/baselines/cpu_lsh.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/core/bitmap_counter.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/core/load_balance.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/core/selection.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/core/types.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/datasets/documents.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/datasets/registry.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/datasets/sequences.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/experiments/metrics.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/experiments/suite.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/experiments/table.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/gpu/device.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/gpu/host.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/gpu/kernel.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/gpu/memory.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/gpu/stats.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/gpu/warp.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/lsh/e2lsh.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/lsh/family.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/lsh/rbh.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/lsh/rehash.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/lsh/simhash.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/lsh/tann.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/sa/edit_distance.py", "REPRO002", _SEED_ERA_RAISES),
        BaselineEntry("repro/sa/ngram.py", "REPRO002", _SEED_ERA_RAISES),
    )
)
