"""One executor for every compiled plan: serial, routed-shard, TPUT.

The session layer's three entry points all lower through
:func:`repro.plan.planner.compile_search` and execute here. The executor
owns the physical loop — residency, per-part/per-shard engine calls, the
host-side merges and their cost accounting — and guarantees the planner's
contract: **every strategy returns bit-identical results** (ids, counts,
tie order, thresholds) to a broadcast one-round execution. What changes
between plans is only the simulated time spent getting there.

Cost model notes:

* A routed shard scan pays query transfer / scan / select only for the
  queries routed to it; a fully pruned shard is not touched at all (not
  even made resident).
* A two-round TPUT execution's critical path is
  ``max(shard round-1) + round-1 threshold merge + max(shard round-2) +
  final merge`` — the rounds are global barriers, so the per-round
  critical paths add instead of max-ing over whole shard timelines.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import ID_DTYPE, Query, TopKResult
from repro.errors import AvailabilityError
from repro.gpu.stats import StageTimings
from repro.plan.planner import CompiledPlan
from repro.replica.faults import STATUS_DOWN, FailoverEvent


def execute_plan(
    compiled: CompiledPlan,
    handle,
    queries: list[Query],
    batch_size: int | None,
    profile: StageTimings,
    trace=None,
) -> tuple[list[TopKResult], list[StageTimings] | None]:
    """Run a compiled plan over the *active* queries.

    Args:
        compiled: The plan from :func:`~repro.plan.planner.compile_search`.
        handle: The session index handle owning the parts.
        queries: The active (post-elision) encoded queries, aligned with
            ``compiled.active``.
        batch_size: Device sub-batch size (Fig. 11 protocol), or ``None``.
        profile: Stage profile the execution accumulates into; for shard
            plans this receives the concurrent critical path.
        trace: Optional :class:`~repro.obs.trace.Span` the execution adds
            stage spans to (scan / delta-scan / tombstone-filter / merge),
            on a timeline starting at 0.0; the caller shifts the subtree
            onto absolute simulated time. ``None`` records nothing.

    Returns:
        ``(results, shard_profiles)``: one result per active query, and
        per-shard profile slices (``None`` for serial plans).
    """
    stream = getattr(handle, "_stream", None)
    if stream is not None and stream.dirty:
        # Live mutations: compose the base scan with the delta-segment
        # scans, filtering tombstones before the top-k (repro.stream).
        return _run_stream(compiled, handle, queries, batch_size, profile, trace)
    if compiled.shards is None:
        results = _run_serial(
            handle, queries, compiled.retrieval_k, batch_size, profile, trace
        )
        return results, None
    return _run_shards(compiled, handle, queries, batch_size, profile, trace)


# ----------------------------------------------------------------------
# serial (single device, one or more multi-loading parts)


def _run_serial(
    handle,
    queries: list[Query],
    k: int,
    batch_size: int | None,
    profile: StageTimings,
    trace=None,
) -> list[TopKResult]:
    session = handle.session
    device = session.device
    parts = handle._parts
    if len(parts) == 1:
        part = parts[0]
        transfer_before = device.timings.get("index_transfer")
        session._ensure_resident(part)
        try:
            results = handle._query_engine(part.engine, queries, k, batch_size)
        finally:
            if handle.swap_parts:
                session._evict_part(part)
        profile.merge(part.engine.last_profile)
        swap_seconds = device.timings.get("index_transfer") - transfer_before
        if swap_seconds > 0:
            profile.add("index_transfer", swap_seconds)
        if trace is not None:
            trace.child(
                "scan",
                duration=part.engine.last_profile.query_total() + max(swap_seconds, 0.0),
                part=0, queries=len(queries),
            )
        return results

    # Multi-part: query each part, merge per query on the host (Fig. 6).
    # Parts partition the objects, so an object's count is complete within
    # its part and the merge is exact. The sharded merge
    # (repro.cluster.executor.merge_shard_results) parallels this ordering
    # deliberately — keep tie-order changes in sync.
    merged_ids: list[list[np.ndarray]] = [[] for _ in queries]
    merged_counts: list[list[np.ndarray]] = [[] for _ in queries]
    cursor = 0.0  # serial parts run back to back on the one device
    for part in parts:
        transfer_before = device.timings.get("index_transfer")
        session._ensure_resident(part)
        try:
            part_results = handle._query_engine(part.engine, queries, k, batch_size)
        finally:
            if handle.swap_parts:
                session._evict_part(part)
        profile.merge(part.engine.last_profile)
        swap_seconds = device.timings.get("index_transfer") - transfer_before
        profile.add("index_transfer", swap_seconds)
        if trace is not None:
            part_seconds = part.engine.last_profile.query_total() + max(swap_seconds, 0.0)
            trace.child(
                "scan", start=cursor, duration=part_seconds,
                part=part.position, queries=len(queries),
            )
            cursor += part_seconds
        for qi, part_result in enumerate(part_results):
            merged_ids[qi].append(part_result.ids + part.offset)
            merged_counts[qi].append(part_result.counts)

    results = []
    merge_ops = 0.0
    for qi in range(len(queries)):
        ids = np.concatenate(merged_ids[qi]) if merged_ids[qi] else np.empty(0, dtype=ID_DTYPE)
        counts = (
            np.concatenate(merged_counts[qi]) if merged_counts[qi] else np.empty(0, dtype=ID_DTYPE)
        )
        order = np.lexsort((ids, -counts))[:k]
        results.append(TopKResult(ids=ids[order], counts=counts[order]))
        merge_ops += ids.size * max(1.0, np.log2(max(ids.size, 2)))
    session.host.charge_ops(merge_ops, stage="result_merge")
    merge_seconds = merge_ops / session.host.spec.ops_per_second
    profile.add("result_merge", merge_seconds)
    if trace is not None:
        trace.child("merge", start=cursor, duration=merge_seconds, parts=len(parts))
    return results


# ----------------------------------------------------------------------
# sharded (one device per shard, routed, one- or two-round merge)


def _trace_scans(trace, name: str, routes, profiles, start: float) -> float:
    """Record one concurrent scan span per routed shard; returns the barrier.

    Shards run concurrently, so every span starts at ``start`` and the
    returned barrier time is ``start`` plus the slowest shard (``start``
    itself when every shard was pruned).
    """
    end = start
    for shard, route in enumerate(routes):
        if route.size == 0:
            continue
        seconds = profiles[shard].query_total()
        trace.child(name, start=start, duration=seconds, shard=shard, queries=int(route.size))
        end = max(end, start + seconds)
    return end


def _empty_result() -> TopKResult:
    return TopKResult(ids=np.empty(0, dtype=ID_DTYPE), counts=np.empty(0, dtype=ID_DTYPE))


def _scan_round(
    handle,
    parts: list,
    routes: list[np.ndarray],
    queries: list[Query],
    k: int,
    batch_size: int | None,
    per_shard: list[list[TopKResult]],
    shard_profiles: list[StageTimings],
) -> None:
    """Scan each part's routed query subset at width ``k``.

    ``parts`` is usually ``handle._parts`` (one per shard) but the
    streamed path also feeds delta-segment parts through here. Results
    land query-aligned in ``per_shard`` (positions a part was not routed
    keep their previous contents — empty for round one, the round-one
    candidates for a TPUT top-up round); each part's stage profile
    (including any swap-in it forced) accumulates into
    ``shard_profiles``.
    """
    for shard, part in enumerate(parts):
        route = routes[shard]
        if route.size == 0:
            continue
        subset = [queries[int(j)] for j in route]
        results, shard_profile = _scan_one(handle, part, subset, k, batch_size)
        shard_profiles[shard].merge(shard_profile)
        for j, result in zip(route, results):
            per_shard[shard][int(j)] = result


def _scan_one(
    handle,
    part,
    subset: list[Query],
    k: int,
    batch_size: int | None,
) -> tuple[list[TopKResult], StageTimings]:
    """Scan one slice's routed subset on the first live replica.

    The candidate order comes from ``handle._scan_candidates`` (plain
    handles: the part itself; replicated handles: the whole replica
    group, least-loaded first). Under an injected
    :class:`~repro.replica.faults.FaultPlan`, a candidate on a crashed
    device is skipped — charging a deterministic seeded retry penalty
    onto the surviving scan's profile (the ``failover_retry`` stage, on
    the batch critical path) and emitting a
    :class:`~repro.replica.faults.FailoverEvent` — and a candidate on a
    slowed device scans with its stage timings stretched by the fault's
    factor. The attempt loop is bounded by the replica count (lint rule
    REPRO007's bounded-retry shape).

    Raises:
        AvailabilityError: Every candidate's device is down.
    """
    session = handle.session
    faults = getattr(session, "faults", None)
    candidates = handle._scan_candidates(part)
    penalty = 0.0
    tried: list[int] = []
    for attempt, candidate in enumerate(candidates):
        device = candidate.engine.device
        factor = 1.0
        if faults is not None:
            position = session.device_position(device)
            status, factor = faults.state(position)
            if status == STATUS_DOWN:
                step = faults.retry_penalty_for(part.position, attempt)
                penalty += step
                tried.append(position)
                session._record_failover(
                    FailoverEvent(
                        index=handle.name,
                        shard=part.position,
                        device=position,
                        attempt=attempt,
                        permanent=faults.permanently_down(position),
                        penalty=step,
                    )
                )
                continue
        transfer_before = device.timings.get("index_transfer")
        session._ensure_resident(candidate)
        results = handle._query_engine(candidate.engine, subset, k, batch_size)
        shard_profile = candidate.engine.last_profile.copy()
        swap_seconds = device.timings.get("index_transfer") - transfer_before
        if swap_seconds > 0:
            shard_profile.add("index_transfer", swap_seconds)
        if factor > 1.0:
            # A slowed device does the same work on a stretched timeline;
            # counts and ids are untouched, only latency grows.
            shard_profile.scale(factor)
        if penalty > 0.0:
            shard_profile.add("failover_retry", penalty)
        session._note_device_busy(device, shard_profile.query_total())
        return results, shard_profile
    raise AvailabilityError(handle.name, part.position, tried)


def _tput_topup_routes(
    per_shard: list[list[TopKResult]],
    n_queries: int,
    retrieval_k: int,
    first_round_k: int,
    host,
) -> tuple[list[np.ndarray], float]:
    """Which (shard, query) pairs the exact TPUT bound forces to top up.

    After round one, shard ``s`` is *complete* for a query when it
    returned fewer than ``first_round_k`` candidates (no positive-count
    object is unfetched — which also covers shards the query was never
    routed to: they hold no candidates at all). An incomplete shard's unfetched candidates all
    count at most its round-one threshold ``t_s`` (its lowest returned
    count). With ``C`` the ``retrieval_k``-th best count in the merged
    round-one pool, ``t_s < C`` proves every unfetched candidate counts
    strictly below the global top-``retrieval_k`` — ties included, since
    the tie-break only applies at equal counts — so the shard need not
    top up. Any doubt (``t_s >= C``, or a pool smaller than
    ``retrieval_k``) tops the shard up to the full width: the exact
    fallback that keeps results bit-identical.

    The threshold computation is charged to the host as a heap merge of
    the fetched candidates (stage ``result_merge``).

    Returns:
        ``(topup_routes, seconds)``: per shard, the query positions to
        re-fetch at full width, and the charged host seconds.
    """
    topup: list[list[int]] = [[] for _ in per_shard]
    fetched = 0
    for qi in range(n_queries):
        counts_parts = [
            shard_results[qi].counts
            for shard_results in per_shard
            if shard_results[qi].counts.size
        ]
        pool = np.concatenate(counts_parts) if counts_parts else np.empty(0, dtype=ID_DTYPE)
        fetched += int(pool.size)
        if pool.size >= retrieval_k:
            cutoff = int(np.partition(pool, pool.size - retrieval_k)[pool.size - retrieval_k])
        else:
            cutoff = 0  # pool too small: every incomplete shard must top up
        for shard, shard_results in enumerate(per_shard):
            result = shard_results[qi]
            if result.ids.size < first_round_k:
                continue  # complete: nothing unfetched remains
            if int(result.counts[-1]) >= cutoff:
                topup[shard].append(qi)
    ops = fetched * max(1.0, np.log2(max(len(per_shard), 2)))
    seconds = host.charge_ops(ops, stage="result_merge")
    return [np.asarray(positions, dtype=np.int64) for positions in topup], seconds


def _run_shards(
    compiled: CompiledPlan,
    handle,
    queries: list[Query],
    batch_size: int | None,
    profile: StageTimings,
    trace=None,
) -> tuple[list[TopKResult], list[StageTimings]]:
    # Imported lazily: repro.cluster.executor imports the session module,
    # which imports this executor at module level.
    from repro.cluster.executor import critical_path_profile, merge_shard_results

    session = handle.session
    parts = handle._parts
    n_queries = len(queries)
    shards = compiled.shards
    if compiled.routing_ops:
        # The routing decision is pre-dispatch host work (binary searches
        # against the shard keyword bounds). Like query encoding — the
        # same class of work — it is charged to the host's accounting but
        # not to the batch profile: it happens before any device is
        # touched and overlaps device execution under pipelined dispatch,
        # so it is not on the batch's critical path.
        session.host.charge_ops(compiled.routing_ops, stage="plan_route")
    per_shard: list[list[TopKResult]] = [
        [_empty_result() for _ in range(n_queries)] for _ in parts
    ]
    round1_profiles = [StageTimings() for _ in parts]

    if compiled.merge == "two-round-tput":
        first_k = compiled.first_round_k
        _scan_round(handle, parts, compiled.routes, queries, first_k, batch_size,
                    per_shard, round1_profiles)
        topup_routes, threshold_seconds = _tput_topup_routes(
            per_shard, n_queries, compiled.retrieval_k, first_k, session.host,
        )
        round2_profiles = [StageTimings() for _ in parts]
        _scan_round(handle, parts, topup_routes, queries, compiled.retrieval_k,
                    batch_size, per_shard, round2_profiles)
        profile.merge(critical_path_profile(round1_profiles))
        profile.add("result_merge", threshold_seconds)
        profile.merge(critical_path_profile(round2_profiles))
        shard_profiles = [StageTimings() for _ in parts]
        for shard in range(len(parts)):
            shard_profiles[shard].merge(round1_profiles[shard])
            shard_profiles[shard].merge(round2_profiles[shard])
        if trace is not None:
            barrier = _trace_scans(trace, "shard_scan", compiled.routes,
                                   round1_profiles, 0.0)
            trace.child("tput_threshold", start=barrier, duration=threshold_seconds)
            scan_end = _trace_scans(trace, "shard_topup", topup_routes,
                                    round2_profiles, barrier + threshold_seconds)
    else:
        _scan_round(handle, parts, compiled.routes, queries, compiled.retrieval_k,
                    batch_size, per_shard, round1_profiles)
        profile.merge(critical_path_profile(round1_profiles))
        shard_profiles = round1_profiles
        if trace is not None:
            scan_end = _trace_scans(trace, "shard_scan", compiled.routes,
                                    round1_profiles, 0.0)

    merged, merge_seconds = merge_shard_results(
        per_shard, [part.global_ids for part in parts], n_queries,
        compiled.retrieval_k, session.host, n_objects=shards.n_objects,
    )
    profile.add("result_merge", merge_seconds)
    if trace is not None:
        trace.child("merge", start=scan_end, duration=merge_seconds,
                    shards=len(parts))
    return merged, shard_profiles


# ----------------------------------------------------------------------
# streamed (mutated index: base scan + delta-segment scans + tombstones)


def _run_stream(
    compiled: CompiledPlan,
    handle,
    queries: list[Query],
    batch_size: int | None,
    profile: StageTimings,
    trace=None,
) -> tuple[list[TopKResult], list[StageTimings] | None]:
    """Execute a plan over a mutated index (see :mod:`repro.stream`).

    The base part(s) scan at a width of ``retrieval_k + tombstones`` —
    filtering can strike at most ``tombstones`` candidates from a part's
    list, so the widened fetch provably still contains the part's live
    top-``retrieval_k``. Base candidates are remapped to global ids and
    tombstone-filtered (host binary searches, stage ``tombstone_filter``),
    then every delta segment scans the whole batch on the session's
    primary device, and one exact one-round merge over all sources
    re-pins thresholds against the logical corpus size (``next_gid``)
    exactly as a from-scratch refit would compute them.

    Returns the base per-shard profiles for sharded handles (delta and
    merge work lands on the batch profile only), ``None`` for serial.
    """
    from repro.cluster.executor import critical_path_profile, merge_shard_results

    session = handle.session
    stream = handle._stream
    manifest = stream.manifest
    n_queries = len(queries)
    if compiled.routing_ops:
        session.host.charge_ops(compiled.routing_ops, stage="plan_route")

    base_parts = list(handle._parts)
    everyone = np.arange(n_queries, dtype=np.int64)
    if compiled.shards is not None and compiled.routes is not None:
        base_routes = compiled.routes
    else:
        base_routes = [everyone for _ in base_parts]

    tombstones = stream.tombstone_array()
    base_k = compiled.retrieval_k + int(tombstones.size)
    per_part: list[list[TopKResult]] = [
        [_empty_result() for _ in range(n_queries)] for _ in base_parts
    ]
    base_profiles = [StageTimings() for _ in base_parts]
    _scan_round(handle, base_parts, base_routes, queries, base_k, batch_size,
                per_part, base_profiles)

    # Remap base candidates to global ids and strike the tombstoned ones
    # before any top-k decision — a dead base copy must never outrank a
    # live object (its replacement may sit in a segment under the same id).
    filter_ops = 0.0
    for part, part_results in zip(base_parts, per_part):
        for qi, result in enumerate(part_results):
            if result.ids.size == 0:
                continue
            if part.global_ids is not None:
                gids = part.global_ids[result.ids]
            else:
                gids = result.ids + part.offset
            counts = result.counts
            if tombstones.size:
                filter_ops += gids.size * np.log2(max(tombstones.size, 2))
                pos = np.searchsorted(tombstones, gids)
                dead = (pos < tombstones.size) & (
                    tombstones[np.minimum(pos, tombstones.size - 1)] == gids
                )
                gids = gids[~dead]
                counts = counts[~dead]
            part_results[qi] = TopKResult(ids=gids, counts=counts)
    filter_seconds = 0.0
    if filter_ops:
        filter_seconds = session.host.charge_ops(filter_ops, stage="tombstone_filter")

    # Delta segments: every query scans every segment (recent writes obey
    # no partition bounds), sequentially on the session's primary device.
    all_results = per_part
    delta_profiles: list[StageTimings] = []
    for part in stream.delta_parts():
        segment_results: list[TopKResult] = [_empty_result() for _ in range(n_queries)]
        segment_profile = [StageTimings()]
        _scan_round(handle, [part], [everyone], queries, compiled.retrieval_k,
                    batch_size, [segment_results], segment_profile)
        for qi, result in enumerate(segment_results):
            if result.ids.size:
                segment_results[qi] = TopKResult(
                    ids=part.global_ids[result.ids], counts=result.counts
                )
        all_results.append(segment_results)
        delta_profiles.append(segment_profile[0])

    identity = np.arange(max(manifest.next_gid, 1), dtype=ID_DTYPE)
    merged, merge_seconds = merge_shard_results(
        all_results, [identity] * len(all_results), n_queries,
        compiled.retrieval_k, session.host, n_objects=manifest.next_gid,
    )

    if compiled.shards is not None:
        profile.merge(critical_path_profile(base_profiles))
        shard_profiles: list[StageTimings] | None = base_profiles
    else:
        for base_profile in base_profiles:
            profile.merge(base_profile)
        shard_profiles = None
    for delta_profile in delta_profiles:
        profile.merge(delta_profile)
    if filter_seconds:
        profile.add("tombstone_filter", filter_seconds)
    profile.add("result_merge", merge_seconds)
    if trace is not None:
        if compiled.shards is not None:
            cursor = _trace_scans(trace, "base_scan", base_routes, base_profiles, 0.0)
        else:
            cursor = 0.0  # serial base parts share one device: back to back
            for position, base_profile in enumerate(base_profiles):
                seconds = base_profile.query_total()
                trace.child("base_scan", start=cursor, duration=seconds,
                            part=position, queries=n_queries)
                cursor += seconds
        if filter_seconds:
            trace.child("tombstone_filter", start=cursor, duration=filter_seconds,
                        tombstones=int(tombstones.size))
            cursor += filter_seconds
        # Delta segments scan sequentially on the session's primary device.
        for segment, delta_profile in enumerate(delta_profiles):
            seconds = delta_profile.query_total()
            trace.child("delta_scan", start=cursor, duration=seconds,
                        segment=segment, queries=n_queries)
            cursor += seconds
        trace.child("merge", start=cursor, duration=merge_seconds,
                    sources=len(all_results))
    return merged, shard_profiles
