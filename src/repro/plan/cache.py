"""The compiled-plan cache: repeated query *shapes* skip planning.

Steady-state serving traffic repeats shapes, not just exact queries: a
different age-band value produces a different result (the query-result
cache misses) but often the *same plan* — same directives, same ``k``,
same per-query shard eligibility. Compiling that plan again re-runs the
routing membership test and (when calibrated) the candidate pricing
pass, host work charged to ``plan_route`` on every batch. This cache
memoizes the finished :class:`~repro.plan.planner.CompiledPlan` so a
warm lane pays **zero** compile or ``plan_route`` cost per batch.

Correctness rests on the key being everything the planner's output is a
function of:

* the index name and its ``fit_epoch`` (a refit changes the shard
  keyword tables), the session's cost epoch (recalibration changes the
  pricing), shard count and partition strategy (a re-declared index
  must miss), ``k`` / ``retrieval_k`` / sorted model options, and the
  normalized ``route``/``plan`` directives;
* per query, its *eligibility bucket*: the exact bitmask of shards its
  keywords appear in, memoized per keyword tuple in a second-level LRU.
  Exact-by-construction — a coarser bucket (keyword bounds, hashes)
  could alias two batches whose plans route differently, and a reused
  wrong route would drop results. When any query's bucket is not
  memoized yet the batch is a miss, the fresh compile provides the
  buckets, and the shape is warm from then on. Plans whose directives
  never consult eligibility (forced/uncalibrated broadcast) key on the
  per-query elision flag alone.

One deliberate staleness: cost-based choice also reads the batch's
postings *totals*, which the bucket signature does not capture — two
batches with identical eligibility but different postings reuse one
plan. Both plans are bit-identical in results (the planner's
invariant), so a hit can only be cost-suboptimal, never wrong — the
standard prepared-plan trade, and the price of skipping the pricing
pass entirely.

Invalidation is event-driven through the session's existing hook
machinery (``fit``/``drop`` fire it), and residency is orthogonal: an
evicted shard swaps back in during execution, the *plan* stays valid.
"""

from __future__ import annotations

import dataclasses
import logging
from collections import OrderedDict

from repro.errors import ConfigError

logger = logging.getLogger("repro.plan")


class PlanCache:
    """A bounded LRU of compiled plans plus a query-bucket memo.

    Args:
        capacity: Maximum cached plans (batch-level entries).
        bucket_capacity: Maximum memoized per-query eligibility buckets.
    """

    def __init__(self, capacity: int = 256, bucket_capacity: int = 8192):
        if int(capacity) < 1:
            raise ConfigError("plan cache capacity must be >= 1")
        if int(bucket_capacity) < 1:
            raise ConfigError("plan cache bucket capacity must be >= 1")
        self.capacity = int(capacity)
        self.bucket_capacity = int(bucket_capacity)
        self._plans: OrderedDict[tuple, object] = OrderedDict()
        self._buckets: OrderedDict[tuple, int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._plans)

    # ------------------------------------------------------------------
    # signatures

    @staticmethod
    def _bucket_key(index: str, fit_epoch: int, query) -> tuple:
        return (index, fit_epoch, tuple(int(kw) for kw in query.all_keywords()))

    def _signature(self, index, fit_epoch, needs_buckets, queries):
        """Per-query shape signature, or ``None`` if a bucket is cold."""
        signature = []
        for query in queries:
            alive = query.num_items > 0
            if not needs_buckets:
                signature.append((alive, None))
                continue
            key = self._bucket_key(index, fit_epoch, query)
            mask = self._buckets.get(key)
            if mask is None:
                return None
            self._buckets.move_to_end(key)
            signature.append((alive, mask))
        return tuple(signature)

    # ------------------------------------------------------------------
    # lookup / store

    def fetch(self, *, index, fit_epoch, shape, needs_buckets, queries):
        """The cached plan for this batch shape, or ``None`` (a miss).

        A hit returns the plan with ``routing_ops`` zeroed: the routing
        and pricing decisions were paid when the plan was first
        compiled, so a reuse charges nothing to ``plan_route``.
        """
        signature = self._signature(index, fit_epoch, needs_buckets, queries)
        if signature is None:
            self.misses += 1
            return None
        key = (index, fit_epoch, shape, signature)
        try:
            compiled = self._plans.pop(key)
        except KeyError:
            self.misses += 1
            return None
        self._plans[key] = compiled  # re-insert == MRU bump
        self.hits += 1
        return dataclasses.replace(compiled, routing_ops=0.0)

    def store(self, *, index, fit_epoch, shape, needs_buckets, queries, compiled) -> None:
        """Memoize a freshly compiled plan (and its query buckets)."""
        if needs_buckets:
            if compiled.query_buckets is None:
                return  # the planner computed no exact eligibility: uncacheable
            signature = []
            for query, mask in zip(queries, compiled.query_buckets):
                key = self._bucket_key(index, fit_epoch, query)
                self._buckets.pop(key, None)
                self._buckets[key] = int(mask)
                signature.append((query.num_items > 0, int(mask)))
            while len(self._buckets) > self.bucket_capacity:
                self._buckets.popitem(last=False)
            signature = tuple(signature)
        else:
            signature = tuple((query.num_items > 0, None) for query in queries)
        key = (index, fit_epoch, shape, signature)
        self._plans.pop(key, None)
        self._plans[key] = compiled
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    # invalidation

    def invalidate(self, index: str) -> int:
        """Drop every plan and bucket of ``index``; returns plans removed.

        Wired to the session's invalidation hooks, so ``fit()`` (epoch
        bump) and ``drop()`` both land here. The epoch is in the key too
        — invalidation keeps the cache small, the epoch keeps it right.
        """
        stale = [key for key in self._plans if key[0] == index]
        for key in stale:
            del self._plans[key]
        stale_buckets = [key for key in self._buckets if key[0] == index]
        for key in stale_buckets:
            del self._buckets[key]
        self.invalidations += len(stale)
        if stale or stale_buckets:
            logger.debug(
                "plan-cache invalidate index=%s plans=%d buckets=%d",
                index, len(stale), len(stale_buckets),
            )
        return len(stale)

    def clear(self) -> None:
        """Drop all plans and buckets (counters are kept)."""
        self.invalidations += len(self._plans)
        self._plans.clear()
        self._buckets.clear()

    def stats(self) -> dict:
        """Counters snapshot (deterministic key order).

        ``plan_cache_size`` duplicates ``entries`` under the gauge name
        the serve layer's ``ServeMetrics.snapshot()`` exports, so
        dashboards can join the two surfaces on one key.
        """
        return {
            "capacity": self.capacity,
            "entries": len(self._plans),
            "plan_cache_size": len(self._plans),
            "buckets": len(self._buckets),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
