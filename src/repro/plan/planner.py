"""The rule-based planner: compile every search into one explicit plan.

:func:`compile_search` is the single lowering point for the session
layer's three entry points (`IndexHandle.search`,
`ShardedIndexHandle.search`, and `GenieServer`'s batch dispatch). It
applies three rules, each preserving bit-identical results:

1. **Skip elision** — queries a model marks unanswerable (``skip_empty``
   models with no indexed keywords) drop out of the scan node entirely;
   they would only produce empty results. (The serve layer's cache
   performs the same elision one level up, at admission, so cached
   queries never reach a plan at all.)
2. **Shard pruning** — for ``"range"``-partitioned sharded indexes, the
   query batch is routed to only the shards whose keyword bounds show
   they can contain candidates for at least one query. A shard with none
   of the batch's keywords would return empty candidate lists for every
   query (zero-count objects never enter the top-k), so pruning it
   cannot change the merged answer — it only stops the batch from paying
   that shard's scan/transfer overhead. Pruning is *batch-granular*: an
   eligible shard scans the whole batch in one launch identical to its
   broadcast launch (the device cost model amortizes atomics over a
   launch's active SMs, so thin per-query sub-batches would cost *more*
   simulated time, not less), which makes the routed critical path
   provably <= the broadcast one. Hash partitions spread every keyword
   across all shards, so the rule is skipped there unless forced with
   ``route="pruned"``.
3. **Two-round TPUT merge** — opt-in via ``plan="two-round"``: round one
   fetches ``first_round_k = ceil(2k / n_shards)`` candidates per shard
   (see :func:`first_round_k_for` for the over-fetch margin) plus each
   shard's round-one threshold (its lowest returned count);
   round two re-fetches the full ``k`` only from shards whose threshold
   proves an unfetched candidate could still enter the global top-k.
   The exact fallback (any doubt → top up) keeps results bit-identical
   to the one-round merge.

The escape hatches ``route=`` (``"auto"`` / ``"pruned"`` /
``"broadcast"``) and ``plan=`` (``"auto"`` / ``"one-round"`` /
``"two-round"``) force a strategy instead of letting the rules choose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import Query
from repro.errors import QueryError
from repro.plan.nodes import (
    EncodeNode,
    FinalizeNode,
    MergeNode,
    PlanNode,
    RoutingSummary,
    ScanNode,
    ShardScanNode,
)

#: Accepted values of the ``route=`` escape hatch.
ROUTE_CHOICES = ("auto", "pruned", "broadcast")

#: Accepted values of the ``plan=`` (merge strategy) escape hatch.
PLAN_CHOICES = ("auto", "one-round", "two-round")


@dataclass(frozen=True)
class ShardContext:
    """What the planner needs to know about a sharded index.

    Produced by ``IndexHandle._plan_shards()`` (``None`` for serial
    indexes); the planner stays decoupled from :mod:`repro.cluster`.

    Attributes:
        n_shards: Number of shards (= parts = devices).
        strategy: Partition strategy (``"range"`` / ``"hash"``).
        shard_keywords: Per shard, the sorted distinct keywords its slice
            of the corpus contains — the partition bounds routing tests
            queries against.
        n_objects: Global corpus size (threshold re-pinning in the merge).
    """

    n_shards: int
    strategy: str
    shard_keywords: tuple[np.ndarray, ...]
    n_objects: int


@dataclass
class CompiledPlan:
    """A compiled search: the logical plan tree plus physical annotations.

    Attributes:
        root: The logical plan (what ``explain()`` returns and renders).
        index: Index name the plan targets.
        k: User-facing result width.
        retrieval_k: Scan/merge width (the model's shortlist ``k``).
        n_queries: Raw queries entering the plan.
        active: Positions of the queries that reach the scan (skip
            elision removes the rest).
        shards: Shard context, or ``None`` for a serial plan.
        routes: Per shard, indices **into** ``active`` routed to it —
            the whole batch for eligible shards, empty for pruned ones
            (``None`` for serial plans).
        merge: ``"direct"`` (single serial part), ``"one-round"``, or
            ``"two-round-tput"``.
        first_round_k: TPUT round-one per-shard width (else ``None``).
        routing: Scan/prune pair accounting, or ``None`` for serial.
        routing_ops: Host operations the routing decision itself costs
            (binary-searching every query keyword against each shard's
            keyword bounds); the executor charges them to the host's
            ``plan_route`` stage so the decision step is accounted, not
            free. Like query encoding it is pre-dispatch work that
            overlaps device execution, so it does not join the batch's
            critical-path profile. ``0.0`` when no pruning was computed;
            ``explain()`` compiles without executing and never pays it.
    """

    root: PlanNode
    index: str
    k: int
    retrieval_k: int
    n_queries: int
    active: list[int]
    shards: ShardContext | None
    routes: list[np.ndarray] | None
    merge: str
    first_round_k: int | None
    routing: RoutingSummary | None
    routing_ops: float = 0.0


def validate_plan_args(route, plan, sharded: bool) -> tuple[str, str]:
    """Normalize/validate the ``route=`` / ``plan=`` escape hatches.

    Called eagerly by the server at admission so a bad directive fails
    the submitting request, not a coalesced batch. The returned forms
    are canonical: directives that compile to the same strategy compare
    equal, so the server's coalescing lanes never split semantically
    identical requests. ``plan`` in particular canonicalizes ``"auto"``
    to ``"one-round"`` — today's auto merge is always one-round; if auto
    ever becomes contextual, this canonicalization (not the lane logic)
    is the line to revisit. ``route="auto"`` stays distinct from the
    explicit forms because its meaning depends on the partition strategy.

    Raises:
        QueryError: Unknown value, or a shard-only strategy forced on a
            serial index.
    """
    route = "auto" if route is None else str(route)
    plan = "auto" if plan is None else str(plan)
    if route not in ROUTE_CHOICES:
        raise QueryError(f"unknown route {route!r}; expected one of {ROUTE_CHOICES}")
    if plan not in PLAN_CHOICES:
        raise QueryError(f"unknown plan {plan!r}; expected one of {PLAN_CHOICES}")
    if not sharded:
        if route != "auto":
            raise QueryError(
                f"route={route!r} requires a sharded index (create_index(..., shards=N))"
            )
        if plan == "two-round":
            raise QueryError(
                "plan='two-round' requires a sharded index (the two-round "
                "merge trades shard fetch width against a top-up round)"
            )
    if plan == "auto":
        plan = "one-round"
    return route, plan


def route_queries(
    queries: list[Query], shard_keywords: tuple[np.ndarray, ...]
) -> list[np.ndarray]:
    """Which queries can match in which shards, by keyword bounds.

    A query can only produce a positive match count in a shard if at
    least one of its keywords appears in that shard's slice of the
    corpus; otherwise every count is zero there and the shard's candidate
    list is empty by construction. The test is exact, so routing never
    changes results — only which shards pay scan overhead. (The planner
    consumes this per query as *eligibility*; execution prunes at batch
    granularity, skipping only shards eligible for no query at all.)

    Returns:
        Per shard, the (ascending) positions of the queries eligible on it.
    """
    if not queries:
        return [np.empty(0, dtype=np.int64) for _ in shard_keywords]
    keywords = [q.all_keywords() for q in queries]
    flat = np.concatenate(keywords) if keywords else np.empty(0, dtype=np.int64)
    owner = np.repeat(np.arange(len(queries)), [kw.size for kw in keywords])
    routes = []
    for shard_kw in shard_keywords:
        if flat.size == 0 or shard_kw.size == 0:
            routes.append(np.empty(0, dtype=np.int64))
            continue
        pos = np.searchsorted(shard_kw, flat)
        found = (pos < shard_kw.size) & (shard_kw[np.minimum(pos, shard_kw.size - 1)] == flat)
        hit = np.zeros(len(queries), dtype=bool)
        np.logical_or.at(hit, owner[found], True)
        routes.append(np.nonzero(hit)[0].astype(np.int64))
    return routes


def first_round_k_for(retrieval_k: int, n_shards: int) -> int:
    """TPUT round-one per-shard fetch width: ``ceil(2k / n_shards)``.

    The factor-2 over-fetch is the classic TPUT safety margin: with
    candidates spread roughly evenly, a round-one pool of ~``2k``
    candidates pins the ``k``-th-count cutoff well above most shards'
    round-one thresholds, so few shards need the top-up round (a pool of
    exactly ``k`` would make the cutoff its own weakest member, which no
    shard threshold can beat, forcing every shard to top up). Capped at
    ``k - 1`` so round one always fetches strictly less than a one-round
    merge would; exactness never depends on the width — the top-up
    fallback covers any skew.
    """
    over_fetch = -(-2 * int(retrieval_k) // max(1, int(n_shards)))
    return max(1, min(int(retrieval_k) - 1, over_fetch))


def compile_search(
    handle,
    queries: list[Query],
    k: int,
    retrieval_k: int,
    route=None,
    plan=None,
) -> CompiledPlan:
    """Compile one search over ``handle`` into a :class:`CompiledPlan`.

    ``handle`` is duck-typed: the planner reads ``name``, ``model``,
    ``num_parts``, ``swap_parts`` and ``_plan_shards()`` — exactly the
    surface both serial and sharded session handles provide.

    Raises:
        QueryError: Invalid ``route=`` / ``plan=`` directives.
    """
    shards: ShardContext | None = handle._plan_shards()
    route, plan = validate_plan_args(route, plan, sharded=shards is not None)
    model_name = getattr(handle.model, "name", type(handle.model).__name__)

    # Rule 1: skip elision.
    if getattr(handle.model, "skip_empty", False):
        active = [i for i, q in enumerate(queries) if q.num_items > 0]
    else:
        active = list(range(len(queries)))
    active_set = set(active)
    elided = tuple(i for i in range(len(queries)) if i not in active_set)
    encode = EncodeNode(model=model_name, n_queries=len(queries), elided=elided)
    active_queries = [queries[i] for i in active]

    if shards is None:
        scan = ScanNode(
            index=handle.name,
            parts=handle.num_parts,
            swap_parts=handle.swap_parts,
            n_queries=len(active),
            k=retrieval_k,
            inputs=(encode,),
        )
        merge = "direct" if handle.num_parts <= 1 else "one-round"
        root: PlanNode = scan
        if merge != "direct":
            root = MergeNode(strategy=merge, k=retrieval_k, inputs=(scan,))
        routes = None
        routing = None
        first_k = None
        routing_ops = 0.0
    else:
        # Rule 2: shard pruning (range partitions by default), applied at
        # batch granularity: a shard eligible for any query scans the
        # whole batch; a shard eligible for none is skipped entirely.
        everyone = np.arange(len(active), dtype=np.int64)
        prune = route == "pruned" or (route == "auto" and shards.strategy == "range")
        routing_ops = 0.0
        if prune:
            eligible = route_queries(active_queries, shards.shard_keywords)
            routes = [everyone if e.size else e for e in eligible]
            # The decision itself is host work: one binary search per
            # (query keyword, shard) into the shard's keyword bounds.
            total_keywords = float(sum(q.num_keywords for q in active_queries))
            routing_ops = total_keywords * sum(
                np.log2(max(kw.size, 2)) for kw in shards.shard_keywords
            )
        else:
            eligible = [everyone for _ in range(shards.n_shards)]
            routes = list(eligible)
        scanned_pairs = int(sum(r.size for r in routes))
        total_pairs = shards.n_shards * len(active)
        routing = RoutingSummary(
            n_shards=shards.n_shards,
            n_queries=len(active),
            scanned_pairs=scanned_pairs,
            pruned_pairs=total_pairs - scanned_pairs,
        )
        # Rule 3: two-round TPUT merge (opt-in; exact by construction).
        first_k = None
        merge = "one-round"
        if plan == "two-round":
            first_k = first_round_k_for(retrieval_k, shards.n_shards)
            if shards.n_shards > 1 and first_k < retrieval_k:
                merge = "two-round-tput"
            else:
                first_k = None  # one shard or k == 1: nothing to save
        scan = ShardScanNode(
            index=handle.name,
            strategy=shards.strategy,
            n_shards=shards.n_shards,
            n_queries=len(active),
            k=first_k if first_k is not None else retrieval_k,
            eligible=tuple(tuple(int(active[j]) for j in e) for e in eligible),
            broadcast=routing.broadcast,
            inputs=(encode,),
        )
        root = MergeNode(
            strategy=merge, k=retrieval_k, first_round_k=first_k, inputs=(scan,)
        )

    if getattr(handle.model, "finalize", None) is not None:
        root = FinalizeNode(model=model_name, k=k, inputs=(root,))

    return CompiledPlan(
        root=root,
        index=handle.name,
        k=k,
        retrieval_k=retrieval_k,
        n_queries=len(queries),
        active=active,
        shards=shards,
        routes=routes,
        merge=merge,
        first_round_k=first_k,
        routing=routing,
        routing_ops=routing_ops,
    )
