"""The rule-based planner: compile every search into one explicit plan.

:func:`compile_search` is the single lowering point for the session
layer's three entry points (`IndexHandle.search`,
`ShardedIndexHandle.search`, and `GenieServer`'s batch dispatch). It
applies three rules, each preserving bit-identical results:

1. **Skip elision** — queries a model marks unanswerable (``skip_empty``
   models with no indexed keywords) drop out of the scan node entirely;
   they would only produce empty results. (The serve layer's cache
   performs the same elision one level up, at admission, so cached
   queries never reach a plan at all.)
2. **Shard pruning** — for ``"range"``-partitioned sharded indexes, the
   query batch is routed to only the shards whose keyword bounds show
   they can contain candidates for at least one query. A shard with none
   of the batch's keywords would return empty candidate lists for every
   query (zero-count objects never enter the top-k), so pruning it
   cannot change the merged answer — it only stops the batch from paying
   that shard's scan/transfer overhead. Pruning is *batch-granular*: an
   eligible shard scans the whole batch in one launch identical to its
   broadcast launch (the device cost model amortizes atomics over a
   launch's active SMs, so thin per-query sub-batches would cost *more*
   simulated time, not less), which makes the routed critical path
   provably <= the broadcast one. Hash partitions spread every keyword
   across all shards, so the rule is skipped there unless forced with
   ``route="pruned"``.
3. **Two-round TPUT merge** — opt-in via ``plan="two-round"``: round one
   fetches ``first_round_k = ceil(2k / n_shards)`` candidates per shard
   (see :func:`first_round_k_for` for the over-fetch margin) plus each
   shard's round-one threshold (its lowest returned count);
   round two re-fetches the full ``k`` only from shards whose threshold
   proves an unfetched candidate could still enter the global top-k.
   The exact fallback (any doubt → top up) keeps results bit-identical
   to the one-round merge.

The escape hatches ``route=`` (``"auto"`` / ``"pruned"`` /
``"broadcast"``) and ``plan=`` (``"auto"`` / ``"one-round"`` /
``"two-round"``) force a strategy instead of letting the rules choose.

When the session carries calibrated cost coefficients
(:meth:`GenieSession.calibrate_cost_model
<repro.api.session.GenieSession.calibrate_cost_model>`), ``"auto"``
directives stop being rules and become *prices*: the planner enumerates
the legal strategy lattice (route ∈ pruned/broadcast × merge ∈
one-round/two-round), prices each candidate's critical path with the
:class:`~repro.plan.cost.CostModel`, and picks the cheapest —
tie-breaking on aggregate device-seconds plus routing cost, so pruning
wins ties on concentrated traffic (it frees shards for concurrent
batches) and broadcast wins them on even spreads (it skips the routing
pass). The chosen plan's nodes carry ``cost≈`` annotations, and every
candidate is exact by construction: a wrong cost model can only pick a
slower plan, never a wrong answer. Uncalibrated sessions fall back to
the rules above, byte-for-byte.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.types import Query
from repro.errors import QueryError
from repro.plan.cost import (
    CostModel,
    postings_for_keywords,
    serial_share,
    shard_block_matrix,
    shard_postings_matrix,
)
from repro.plan.nodes import (
    DeltaScanNode,
    EncodeNode,
    FinalizeNode,
    MergeNode,
    PlanNode,
    RoutingSummary,
    ScanNode,
    ShardScanNode,
)

#: Accepted values of the ``route=`` escape hatch.
ROUTE_CHOICES = ("auto", "pruned", "broadcast")

#: Accepted values of the ``plan=`` (merge strategy) escape hatch.
PLAN_CHOICES = ("auto", "one-round", "two-round")

#: Candidates whose predicted critical paths are within this relative
#: tolerance of the best are considered tied and fall to the tie-break
#: (aggregate device-seconds + routing seconds). Absorbs coefficient
#: noise on near-identical candidates so the choice stays stable.
_PRICE_TOLERANCE = 0.01


@dataclass(frozen=True)
class ShardContext:
    """What the planner needs to know about a sharded index.

    Produced by ``IndexHandle._plan_shards()`` (``None`` for serial
    indexes); the planner stays decoupled from :mod:`repro.cluster`.

    Attributes:
        n_shards: Number of shards (= parts = devices).
        strategy: Partition strategy (``"range"`` / ``"hash"``).
        shard_keywords: Per shard, the sorted distinct keywords its slice
            of the corpus contains — the partition bounds routing tests
            queries against.
        n_objects: Global corpus size (threshold re-pinning in the merge).
        shard_postings: Per shard, the posting-list length aligned with
            each ``shard_keywords`` entry — the cost model's work
            features (``None`` when the handle predates cost planning).
    """

    n_shards: int
    strategy: str
    shard_keywords: tuple[np.ndarray, ...]
    n_objects: int
    shard_postings: tuple[np.ndarray, ...] | None = None


@dataclass
class CompiledPlan:
    """A compiled search: the logical plan tree plus physical annotations.

    Attributes:
        root: The logical plan (what ``explain()`` returns and renders).
        index: Index name the plan targets.
        k: User-facing result width.
        retrieval_k: Scan/merge width (the model's shortlist ``k``).
        n_queries: Raw queries entering the plan.
        active: Positions of the queries that reach the scan (skip
            elision removes the rest).
        shards: Shard context, or ``None`` for a serial plan.
        routes: Per shard, indices **into** ``active`` routed to it —
            the whole batch for eligible shards, empty for pruned ones
            (``None`` for serial plans).
        merge: ``"direct"`` (single serial part), ``"one-round"``, or
            ``"two-round-tput"``.
        first_round_k: TPUT round-one per-shard width (else ``None``).
        routing: Scan/prune pair accounting, or ``None`` for serial.
        routing_ops: Host operations the routing decision itself costs
            (binary-searching every query keyword against each shard's
            keyword bounds); the executor charges them to the host's
            ``plan_route`` stage so the decision step is accounted, not
            free. Like query encoding it is pre-dispatch work that
            overlaps device execution, so it does not join the batch's
            critical-path profile. ``0.0`` when no pruning was computed;
            ``explain()`` compiles without executing and never pays it.
        predicted_cost: The chosen candidate's predicted critical-path
            seconds when the session's cost model priced this plan
            (``None`` for serial plans and uncalibrated sessions).
        query_buckets: Per raw query, the bitmask of shards its keywords
            appear in (bit ``s`` = shard ``s``; ``0`` for elided
            queries) — the :class:`~repro.plan.cache.PlanCache` shape
            signature. Only set when the compile computed exact
            eligibility; ``None`` otherwise (broadcast ``eligible`` is a
            convention, not a membership result, and must not seed the
            cache's bucket memo).
    """

    root: PlanNode
    index: str
    k: int
    retrieval_k: int
    n_queries: int
    active: list[int]
    shards: ShardContext | None
    routes: list[np.ndarray] | None
    merge: str
    first_round_k: int | None
    routing: RoutingSummary | None
    routing_ops: float = 0.0
    predicted_cost: float | None = None
    query_buckets: tuple[int, ...] | None = None


def validate_plan_args(route, plan, sharded: bool) -> tuple[str, str]:
    """Normalize/validate the ``route=`` / ``plan=`` escape hatches.

    Called eagerly by the server at admission so a bad directive fails
    the submitting request, not a coalesced batch. The returned forms
    are canonical: directives that compile to the same strategy compare
    equal, so the server's coalescing lanes never split semantically
    identical requests. Both ``"auto"`` forms stay distinct from the
    explicit choices because their meaning is contextual — ``route``
    depends on the partition strategy and ``plan`` on the session's cost
    calibration — so forcing a strategy and letting the planner choose
    it must land in different lanes.

    Raises:
        QueryError: Unknown value, or a shard-only strategy forced on a
            serial index.
    """
    route = "auto" if route is None else str(route)
    plan = "auto" if plan is None else str(plan)
    if route not in ROUTE_CHOICES:
        raise QueryError(f"unknown route {route!r}; expected one of {ROUTE_CHOICES}")
    if plan not in PLAN_CHOICES:
        raise QueryError(f"unknown plan {plan!r}; expected one of {PLAN_CHOICES}")
    if not sharded:
        if route != "auto":
            raise QueryError(
                f"route={route!r} requires a sharded index (create_index(..., shards=N))"
            )
        if plan == "two-round":
            raise QueryError(
                "plan='two-round' requires a sharded index (the two-round "
                "merge trades shard fetch width against a top-up round)"
            )
    return route, plan


def eligibility_needed(route: str, strategy: str, costed: bool) -> bool:
    """Whether compiling ``route`` computes exact per-query eligibility.

    The single source of truth shared by :func:`compile_search` and the
    plan cache's key construction: forced pruning always needs it, and
    ``route="auto"`` needs it when the rules would prune (range
    partitions) or when a calibrated cost model is about to price the
    pruned candidate. Forced broadcast never does — which is also why
    broadcast-only shapes can cache without the bucket memo.
    """
    return route == "pruned" or (route == "auto" and (costed or strategy == "range"))


def route_queries(
    queries: list[Query], shard_keywords: tuple[np.ndarray, ...]
) -> list[np.ndarray]:
    """Which queries can match in which shards, by keyword bounds.

    A query can only produce a positive match count in a shard if at
    least one of its keywords appears in that shard's slice of the
    corpus; otherwise every count is zero there and the shard's candidate
    list is empty by construction. The test is exact, so routing never
    changes results — only which shards pay scan overhead. (The planner
    consumes this per query as *eligibility*; execution prunes at batch
    granularity, skipping only shards eligible for no query at all.)

    Returns:
        Per shard, the (ascending) positions of the queries eligible on it.
    """
    if not queries:
        return [np.empty(0, dtype=np.int64) for _ in shard_keywords]
    keywords = [q.all_keywords() for q in queries]
    flat = np.concatenate(keywords) if keywords else np.empty(0, dtype=np.int64)
    owner = np.repeat(np.arange(len(queries)), [kw.size for kw in keywords])
    routes = []
    for shard_kw in shard_keywords:
        if flat.size == 0 or shard_kw.size == 0:
            routes.append(np.empty(0, dtype=np.int64))
            continue
        pos = np.searchsorted(shard_kw, flat)
        found = (pos < shard_kw.size) & (shard_kw[np.minimum(pos, shard_kw.size - 1)] == flat)
        hit = np.zeros(len(queries), dtype=bool)
        np.logical_or.at(hit, owner[found], True)
        routes.append(np.nonzero(hit)[0].astype(np.int64))
    return routes


def first_round_k_for(retrieval_k: int, n_shards: int) -> int:
    """TPUT round-one per-shard fetch width: ``ceil(2k / n_shards)``.

    The factor-2 over-fetch is the classic TPUT safety margin: with
    candidates spread roughly evenly, a round-one pool of ~``2k``
    candidates pins the ``k``-th-count cutoff well above most shards'
    round-one thresholds, so few shards need the top-up round (a pool of
    exactly ``k`` would make the cutoff its own weakest member, which no
    shard threshold can beat, forcing every shard to top up). Capped at
    ``k - 1`` so round one always fetches strictly less than a one-round
    merge would; exactness never depends on the width — the top-up
    fallback covers any skew.
    """
    over_fetch = -(-2 * int(retrieval_k) // max(1, int(n_shards)))
    return max(1, min(int(retrieval_k) - 1, over_fetch))


def _merge_strategy(plan_choice: str, retrieval_k: int, n_shards: int):
    """Resolve a plan directive to ``(merge, first_round_k)``.

    A ``"two-round"`` request degenerates to one-round when there is a
    single shard or the round-one width cannot undercut ``retrieval_k``
    (nothing to save) — same guard the rule-based path applies.
    """
    if plan_choice == "two-round":
        first_k = first_round_k_for(retrieval_k, n_shards)
        if n_shards > 1 and first_k < retrieval_k:
            return "two-round-tput", first_k
    return "one-round", None


def _session_cost_model(handle) -> CostModel | None:
    """The handle's session cost model, or ``None`` when uncalibrated."""
    coefficients = getattr(getattr(handle, "session", None), "cost_coefficients", None)
    if not coefficients:
        return None
    return CostModel(coefficients)


def _dirty_stream(handle):
    """The handle's live stream state, or ``None`` for a clean index."""
    stream = getattr(handle, "_stream", None)
    if stream is not None and stream.dirty:
        return stream
    return None


def _delta_scan_seconds(
    cost_model: CostModel,
    stream,
    n_queries: int,
    total_keywords: float,
    flat_keywords: np.ndarray,
    retrieval_k: int,
    count_bound: int,
) -> float:
    """Predicted seconds the delta-segment scans add to a plan.

    The delta parts run sequentially on the session's primary device
    after the base round, so their predicted seconds *add* to every
    candidate's critical path identically — pricing them cannot flip the
    route x merge choice, but it keeps ``predicted_cost`` and the
    ``DeltaScan`` node's ``cost≈`` annotation honest against the
    observed profile.
    """
    seconds = 0.0
    for keywords, counts in stream.delta_features():
        postings = postings_for_keywords(flat_keywords, keywords, counts)
        seconds += cost_model.scan_seconds(
            n_queries, total_keywords, postings, retrieval_k,
            count_bound=count_bound,
        )
    return seconds


def _delta_node(
    handle, stream, n_queries: int, retrieval_k: int, cost: float | None
) -> DeltaScanNode:
    manifest = stream.manifest
    return DeltaScanNode(
        index=handle.name,
        segments=len(manifest.segments),
        n_objects=manifest.delta_objects,
        postings=manifest.delta_postings,
        tombstones=len(manifest.tombstones),
        n_queries=n_queries,
        k=retrieval_k,
        cost=cost,
    )


def reprice_plan(handle, compiled: CompiledPlan, queries: list[Query]) -> CompiledPlan:
    """Re-extract cost features for ``queries`` against a cached plan.

    A :class:`~repro.plan.cache.PlanCache` hit reuses the plan *choice*
    — routes, merge strategy, node tree — but the first batch's
    ``predicted_cost`` does not describe the new batch: two batches with
    identical shard eligibility can touch very different postings
    volumes. This recomputes the chosen candidate's price from the new
    batch's features so warm-lane cost audits stay honest, without
    re-running the pricing *decision* (the lattice enumeration stays
    skipped, and nothing is charged to ``plan_route`` — like query
    encoding, feature extraction is pre-dispatch admission work).

    The plan tree's per-node ``cost≈`` annotations keep the first
    compile's values (the tree is frozen and shared); only the
    result-level ``predicted_cost`` is refreshed.

    Returns ``compiled`` unchanged for plans that were never priced.
    """
    shards = compiled.shards
    if (
        compiled.predicted_cost is None
        or shards is None
        or shards.shard_postings is None
        or compiled.routes is None
        or not compiled.active
    ):
        return compiled
    cost_model = _session_cost_model(handle)
    if cost_model is None:
        return compiled
    active_queries = [queries[i] for i in compiled.active]
    total_keywords = float(sum(q.num_keywords for q in active_queries))
    batch_postings = shard_postings_matrix(
        active_queries, shards.shard_keywords, shards.shard_postings
    ).sum(axis=0)
    batch_blocks = shard_block_matrix(
        active_queries, shards.shard_keywords, shards.shard_postings
    ).sum(axis=0)
    batch_hot = serial_share(
        batch_postings, batch_blocks, handle.session.device.spec.num_sms
    )
    batch_bound = max(q.count_bound() for q in active_queries)
    scanned = [s for s in range(shards.n_shards) if compiled.routes[s].size]
    price = cost_model.price(
        n_queries=len(active_queries),
        keywords=total_keywords,
        shard_postings=[float(batch_postings[s]) for s in scanned],
        n_shards=shards.n_shards,
        retrieval_k=compiled.retrieval_k,
        merge=compiled.merge,
        first_round_k=compiled.first_round_k,
        shard_hot=[float(batch_hot[s]) for s in scanned],
        count_bound=batch_bound,
    )
    predicted = price.critical_path
    stream = _dirty_stream(handle)
    if stream is not None:
        flat = np.concatenate([q.all_keywords() for q in active_queries])
        predicted += _delta_scan_seconds(
            cost_model, stream, len(active_queries), total_keywords,
            flat, compiled.retrieval_k, batch_bound,
        )
    return dataclasses.replace(compiled, predicted_cost=predicted)


def compile_search(
    handle,
    queries: list[Query],
    k: int,
    retrieval_k: int,
    route=None,
    plan=None,
) -> CompiledPlan:
    """Compile one search over ``handle`` into a :class:`CompiledPlan`.

    ``handle`` is duck-typed: the planner reads ``name``, ``model``,
    ``num_parts``, ``swap_parts`` and ``_plan_shards()`` — exactly the
    surface both serial and sharded session handles provide.

    Raises:
        QueryError: Invalid ``route=`` / ``plan=`` directives.
    """
    shards: ShardContext | None = handle._plan_shards()
    route, plan = validate_plan_args(route, plan, sharded=shards is not None)
    model_name = getattr(handle.model, "name", type(handle.model).__name__)
    stream = _dirty_stream(handle)

    # Rule 1: skip elision.
    if getattr(handle.model, "skip_empty", False):
        active = [i for i, q in enumerate(queries) if q.num_items > 0]
    else:
        active = list(range(len(queries)))
    active_set = set(active)
    elided = tuple(i for i in range(len(queries)) if i not in active_set)
    encode = EncodeNode(model=model_name, n_queries=len(queries), elided=elided)
    active_queries = [queries[i] for i in active]

    if shards is None:
        scan = ScanNode(
            index=handle.name,
            parts=handle.num_parts,
            swap_parts=handle.swap_parts,
            n_queries=len(active),
            k=retrieval_k,
            inputs=(encode,),
        )
        if stream is not None:
            # A mutated serial index always merges: base part(s) plus the
            # delta segments, tombstones filtered before the top-k.
            merge = "one-round"
            root: PlanNode = MergeNode(
                strategy=merge, k=retrieval_k,
                inputs=(scan, _delta_node(handle, stream, len(active), retrieval_k, None)),
            )
        else:
            merge = "direct" if handle.num_parts <= 1 else "one-round"
            root = scan
            if merge != "direct":
                root = MergeNode(strategy=merge, k=retrieval_k, inputs=(scan,))
        routes = None
        routing = None
        first_k = None
        routing_ops = 0.0
        chosen_price = None
        query_buckets = None
        delta_seconds = None
    else:
        # Rule 2: shard pruning (range partitions by default), applied at
        # batch granularity: a shard eligible for any query scans the
        # whole batch; a shard eligible for none is skipped entirely.
        # With a calibrated cost model, "auto" directives instead price
        # every candidate in the (route x merge) lattice and pick the
        # cheapest — every candidate is exact, so pricing only moves cost.
        everyone = np.arange(len(active), dtype=np.int64)
        cost_model = _session_cost_model(handle)
        costed = (
            cost_model is not None
            and shards.shard_postings is not None
            and len(active) > 0
        )
        total_keywords = float(sum(q.num_keywords for q in active_queries))
        # One binary search per (query keyword, shard) into the shard's
        # keyword bounds — the host cost of a routing/feature pass.
        lookup_ops = total_keywords * sum(
            np.log2(max(kw.size, 2)) for kw in shards.shard_keywords
        )
        routing_ops = 0.0
        exact_eligible = None
        query_buckets = None
        if eligibility_needed(route, shards.strategy, costed):
            exact_eligible = route_queries(active_queries, shards.shard_keywords)
            routing_ops += lookup_ops
            masks = [0] * len(queries)
            for s, positions in enumerate(exact_eligible):
                for j in positions:
                    masks[active[int(j)]] |= 1 << s
            query_buckets = tuple(masks)

        chosen_price = None
        if costed:
            # Feature extraction is a second lookup pass over the shard
            # keyword tables; the pricing decision is accounted like the
            # routing decision, not free.
            matrix = shard_postings_matrix(
                active_queries, shards.shard_keywords, shards.shard_postings
            )
            batch_postings = matrix.sum(axis=0)
            batch_blocks = shard_block_matrix(
                active_queries, shards.shard_keywords, shards.shard_postings
            ).sum(axis=0)
            batch_hot = serial_share(
                batch_postings, batch_blocks, handle.session.device.spec.num_sms
            )
            batch_bound = max(q.count_bound() for q in active_queries)
            routing_ops += lookup_ops
            host = handle.session.host
            seconds_per_op = 1.0 / (host.spec.ops_per_second * host.cores)
            route_opts = ("pruned", "broadcast") if route == "auto" else (route,)
            if stream is not None:
                # Delta composition merges every source one-round; the
                # TPUT top-up protocol's per-shard thresholds do not
                # extend to delta segments, so the lattice collapses.
                plan_opts = ("one-round",)
            elif plan == "auto":
                plan_opts = ("one-round", "two-round")
            else:
                plan_opts = (plan,)
            candidates = []
            for route_choice in route_opts:
                if route_choice == "pruned":
                    routes_c = [everyone if e.size else e for e in exact_eligible]
                    route_seconds = lookup_ops * seconds_per_op
                else:
                    routes_c = [everyone for _ in range(shards.n_shards)]
                    route_seconds = 0.0
                scanned = [s for s in range(shards.n_shards) if routes_c[s].size]
                scanned_postings = [float(batch_postings[s]) for s in scanned]
                scanned_hot = [float(batch_hot[s]) for s in scanned]
                seen_merges = set()
                for plan_choice in plan_opts:
                    merge_c, first_c = _merge_strategy(
                        plan_choice, retrieval_k, shards.n_shards
                    )
                    if merge_c in seen_merges:
                        continue  # two-round degenerated into one-round
                    seen_merges.add(merge_c)
                    price = cost_model.price(
                        n_queries=len(active),
                        keywords=total_keywords,
                        shard_postings=scanned_postings,
                        n_shards=shards.n_shards,
                        retrieval_k=retrieval_k,
                        merge=merge_c,
                        first_round_k=first_c,
                        route_seconds=route_seconds,
                        shard_hot=scanned_hot,
                        count_bound=batch_bound,
                    )
                    candidates.append((route_choice, merge_c, first_c, routes_c, price))
            best_path = min(c[4].critical_path for c in candidates)
            threshold = best_path * (1.0 + _PRICE_TOLERANCE) + 1e-15
            viable = [c for c in candidates if c[4].critical_path <= threshold]
            # min() is stable, so exact ties keep the enumeration order:
            # pruned before broadcast, one-round before two-round.
            route_choice, merge, first_k, routes, chosen_price = min(
                viable, key=lambda c: c[4].busy_seconds + c[4].route_seconds
            )
            routes = list(routes)
            if route_choice == "pruned":
                eligible = exact_eligible
            else:
                eligible = [everyone for _ in range(shards.n_shards)]
        else:
            prune = exact_eligible is not None
            if prune:
                eligible = exact_eligible
                routes = [everyone if e.size else e for e in eligible]
            else:
                eligible = [everyone for _ in range(shards.n_shards)]
                routes = list(eligible)
            # Rule 3: two-round TPUT merge (opt-in; exact by construction;
            # unavailable while delta segments are live — see above).
            first_k = None
            merge = "one-round"
            if plan == "two-round" and stream is None:
                merge, first_k = _merge_strategy(plan, retrieval_k, shards.n_shards)
        scanned_pairs = int(sum(r.size for r in routes))
        total_pairs = shards.n_shards * len(active)
        routing = RoutingSummary(
            n_shards=shards.n_shards,
            n_queries=len(active),
            scanned_pairs=scanned_pairs,
            pruned_pairs=total_pairs - scanned_pairs,
        )
        scan = ShardScanNode(
            index=handle.name,
            strategy=shards.strategy,
            n_shards=shards.n_shards,
            n_queries=len(active),
            k=first_k if first_k is not None else retrieval_k,
            eligible=tuple(tuple(int(active[j]) for j in e) for e in eligible),
            broadcast=routing.broadcast,
            inputs=(encode,),
            cost=chosen_price.scan_seconds if chosen_price is not None else None,
        )
        delta_seconds = None
        if stream is not None and costed:
            flat = np.concatenate([q.all_keywords() for q in active_queries])
            delta_seconds = _delta_scan_seconds(
                cost_model, stream, len(active), total_keywords,
                flat, retrieval_k, batch_bound,
            )
        merge_inputs: tuple[PlanNode, ...] = (scan,)
        if stream is not None:
            merge_inputs = (
                scan,
                _delta_node(handle, stream, len(active), retrieval_k, delta_seconds),
            )
        root = MergeNode(
            strategy=merge,
            k=retrieval_k,
            first_round_k=first_k,
            inputs=merge_inputs,
            cost=chosen_price.merge_seconds if chosen_price is not None else None,
        )

    if getattr(handle.model, "finalize", None) is not None:
        root = FinalizeNode(model=model_name, k=k, inputs=(root,))

    predicted = chosen_price.critical_path if chosen_price is not None else None
    if predicted is not None and delta_seconds is not None:
        # Delta parts run sequentially after the base round, so their
        # predicted seconds add straight onto the critical path.
        predicted += delta_seconds
    return CompiledPlan(
        root=root,
        index=handle.name,
        k=k,
        retrieval_k=retrieval_k,
        n_queries=len(queries),
        active=active,
        shards=shards,
        routes=routes,
        merge=merge,
        first_round_k=first_k,
        routing=routing,
        routing_ops=routing_ops,
        predicted_cost=predicted,
        query_buckets=query_buckets,
    )
