"""Explainable query planning: one compiled plan behind every search.

``repro.plan`` unifies the session layer's three execution paths —
serial :meth:`IndexHandle.search <repro.api.session.IndexHandle.search>`,
sharded :class:`~repro.cluster.executor.ShardedIndexHandle` search, and
:class:`~repro.serve.server.GenieServer` batch dispatch — behind one
logical/physical plan IR::

    Encode → Scan | ShardScan(shards…) → Merge(one-round | two-round-tput)
           → Finalize

and a rule-based planner with three result-preserving rules:

* **skip elision** — unanswerable (skip-empty) queries drop out of the
  scan node (the serve cache elides answered queries one level up, at
  admission),
* **shard pruning** — ``"range"``-partitioned indexes route the query
  batch only to the shards whose keyword bounds can contain candidates,
  instead of broadcasting to all N,
* **two-round TPUT merge** — fetch ``ceil(2k/N)`` per shard first, top
  up only where a shard's round-one threshold proves it necessary
  (opt-in via ``plan="two-round"``).

Every plan is explainable and forceable::

    print(handle.explain(raw_queries, k=10).render())
    handle.search(raw_queries, k=10, route="broadcast")   # force a strategy
    handle.search(raw_queries, k=10, plan="two-round")    # force TPUT merge

Results are **bit-identical** across every strategy (ids, counts, tie
order, thresholds — property-tested in ``tests/plan/``); the plan only
changes how much simulated time the answer costs.

PR 6 makes ``"auto"`` cost-based: after
:meth:`GenieSession.calibrate_cost_model
<repro.api.session.GenieSession.calibrate_cost_model>` fits the
:class:`~repro.plan.cost.CostModel`, the planner prices the full
route x merge lattice and picks the cheapest candidate (``cost≈`` lines
appear in ``explain()``), and the session's
:class:`~repro.plan.cache.PlanCache` memoizes compiled plans so
repeated query shapes skip planning — and its ``plan_route`` host
charge — entirely.
"""

from repro.plan.cache import PlanCache
from repro.plan.cost import (
    COEFFICIENT_NAMES,
    PREDICTED_STAGES,
    CostModel,
    PlanPrice,
    calibrate_coefficients,
    calibrate_session,
    concentration,
    postings_for_keywords,
    postings_per_keyword,
    serial_share,
    shard_block_matrix,
    shard_postings_matrix,
)
from repro.plan.executor import execute_plan
from repro.plan.nodes import (
    EncodeNode,
    FinalizeNode,
    MergeNode,
    PlanNode,
    RoutingSummary,
    ScanNode,
    ShardScanNode,
)
from repro.plan.planner import (
    PLAN_CHOICES,
    ROUTE_CHOICES,
    CompiledPlan,
    ShardContext,
    compile_search,
    eligibility_needed,
    first_round_k_for,
    route_queries,
    validate_plan_args,
)

__all__ = [
    "PlanNode",
    "EncodeNode",
    "ScanNode",
    "ShardScanNode",
    "MergeNode",
    "FinalizeNode",
    "RoutingSummary",
    "CompiledPlan",
    "ShardContext",
    "compile_search",
    "execute_plan",
    "route_queries",
    "eligibility_needed",
    "first_round_k_for",
    "validate_plan_args",
    "ROUTE_CHOICES",
    "PLAN_CHOICES",
    "CostModel",
    "PlanPrice",
    "PlanCache",
    "calibrate_coefficients",
    "calibrate_session",
    "concentration",
    "postings_per_keyword",
    "postings_for_keywords",
    "serial_share",
    "shard_block_matrix",
    "shard_postings_matrix",
    "COEFFICIENT_NAMES",
    "PREDICTED_STAGES",
]
