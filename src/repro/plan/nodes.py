"""The query-plan IR: small, explainable, stable to render.

Every search in the session layer lowers to one tree of plan nodes::

    Finalize                 (only for models with a verify/rerank hook)
      Merge                  (one-round | two-round-tput; absent for a
                              single-part serial scan)
        Scan | ShardScan     (the physical retrieval step)
          Encode             (raw queries -> keyword queries, with any
                              skip-empty / cache elision recorded)

Nodes are *logical descriptions* — frozen, hashable, safe to keep on a
:class:`~repro.api.session.SearchResult` — while the physical execution
annotations (active query positions, per-shard route arrays, the
first-round ``k``) live on the planner's
:class:`~repro.plan.planner.CompiledPlan`. ``render()`` produces a stable
text tree used by ``IndexHandle.explain()`` and snapshot-tested, so its
format is an API: change it deliberately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Render at most this many explicit query positions per routing line.
_MAX_LISTED_QUERIES = 8


@dataclass(frozen=True)
class PlanNode:
    """Base plan node: a label, optional annotations, and input nodes.

    ``cost`` carries the planner's *predicted* simulated seconds for the
    node's step when the session's cost model is calibrated (see
    :mod:`repro.plan.cost`); ``None`` — the uncalibrated default —
    renders nothing, keeping the rule-based plan text unchanged.
    """

    inputs: tuple["PlanNode", ...] = field(default=(), kw_only=True)
    cost: float | None = field(default=None, kw_only=True)

    def label(self) -> str:
        """One-line description of this node (no newlines)."""
        return type(self).__name__

    def annotations(self) -> tuple[str, ...]:
        """Extra per-node detail lines rendered under the label."""
        return ()

    def render(self) -> str:
        """The whole subtree as a stable, indented text plan."""
        return "\n".join(self._render_lines(prefix="", connector=""))

    def _render_lines(self, prefix: str, connector: str) -> list[str]:
        lines = [f"{prefix}{connector}{self.label()}"]
        child_prefix = prefix if not connector else prefix + "   "
        if self.cost is not None:
            lines.append(f"{child_prefix}· cost≈{self.cost * 1e6:.1f}us")
        for note in self.annotations():
            lines.append(f"{child_prefix}· {note}")
        for node in self.inputs:
            lines.extend(node._render_lines(child_prefix, "└─ "))
        return lines

    def walk(self):
        """Yield this node and every descendant, pre-order."""
        yield self
        for node in self.inputs:
            yield from node.walk()

    def find(self, node_type: type) -> "PlanNode | None":
        """First node of ``node_type`` in pre-order, or ``None``."""
        for node in self.walk():
            if isinstance(node, node_type):
                return node
        return None

    def __str__(self) -> str:
        return self.render()


def _positions(positions: tuple[int, ...]) -> str:
    if len(positions) > _MAX_LISTED_QUERIES:
        return f"{len(positions)} queries"
    return "queries [" + ", ".join(str(p) for p in positions) + "]"


@dataclass(frozen=True)
class EncodeNode(PlanNode):
    """Raw queries -> encoded keyword queries, with elision recorded.

    Attributes:
        model: Match-model name doing the encoding.
        n_queries: Raw queries entering the plan.
        elided: Query positions that drop out of the scan — skip-empty
            queries (no indexed keywords) here; cache hits are elided one
            layer up, at server admission, and never reach a plan.
    """

    model: str
    n_queries: int
    elided: tuple[int, ...] = ()

    def label(self) -> str:
        if not self.elided:
            note = ""
        elif len(self.elided) > _MAX_LISTED_QUERIES:
            note = f", elided={len(self.elided)} queries"
        else:
            note = f", elided={list(self.elided)}"
        return f"Encode(model={self.model!r}, queries={self.n_queries}{note})"


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """Serial scan of one index's part(s) on the session device.

    Attributes:
        index: Index name.
        parts: Corpus parts swept (1 unless ``part_size=`` partitioned).
        swap_parts: Whether each part is evicted right after its scan
            (the paper's multi-loading protocol).
        n_queries: Queries scanned (after elision).
        k: Per-part retrieval width (the model's shortlist ``k``).
    """

    index: str
    parts: int
    swap_parts: bool
    n_queries: int
    k: int

    def label(self) -> str:
        swap = ", swap_parts" if self.swap_parts else ""
        return (
            f"Scan(index={self.index!r}, parts={self.parts}{swap}, "
            f"queries={self.n_queries}, k={self.k})"
        )


@dataclass(frozen=True)
class ShardScanNode(PlanNode):
    """Concurrent scan of a sharded index, possibly shard-pruned.

    Pruning is *batch-granular*: a shard with at least one eligible query
    scans the whole coalesced batch in one launch (the device cost model
    rewards thick launches — atomics amortize over the active SMs), and a
    shard with none is skipped entirely, so a scanned shard's launch is
    identical to its broadcast launch and the critical path can only
    shrink.

    Attributes:
        index: Index name.
        strategy: Partition strategy (``"range"`` / ``"hash"``).
        n_shards: Shards the corpus is partitioned into.
        n_queries: Queries scanned (after elision).
        k: Per-shard retrieval width for the scan round.
        eligible: Per shard, the (original) positions of the queries whose
            keyword bounds intersect the shard — why the shard is scanned.
            A shard with an empty tuple is pruned.
        broadcast: ``True`` when no shard was pruned.
    """

    index: str
    strategy: str
    n_shards: int
    n_queries: int
    k: int
    eligible: tuple[tuple[int, ...], ...]
    broadcast: bool

    def label(self) -> str:
        scanned = sum(1 for positions in self.eligible if positions)
        mode = "broadcast" if self.broadcast else f"routed shards={scanned}/{self.n_shards}"
        return (
            f"ShardScan(index={self.index!r}, strategy={self.strategy!r}, "
            f"shards={self.n_shards}, queries={self.n_queries}, k={self.k}, {mode})"
        )

    def annotations(self) -> tuple[str, ...]:
        if self.broadcast:
            return ()
        notes = []
        for shard, positions in enumerate(self.eligible):
            target = f"eligible {_positions(positions)}" if positions else "(pruned)"
            notes.append(f"shard {shard} ← {target}")
        return tuple(notes)


@dataclass(frozen=True)
class DeltaScanNode(PlanNode):
    """Scan of a mutated index's delta segments (see :mod:`repro.stream`).

    Emitted next to the base ``Scan``/``ShardScan`` whenever the handle
    carries live mutations; the parent merge composes base and delta
    candidates exactly, with the base candidates filtered against the
    tombstone set first. Delta segments live on the session's primary
    device and always scan the whole active batch — segment contents are
    arbitrary recent writes, so no keyword-bound routing applies.

    Attributes:
        index: Index name.
        segments: Live delta segments scanned (one small index each).
        n_objects: Live objects across the segments.
        postings: Total delta (object, keyword) pairs — the extra scan
            work every query pays until the next compaction.
        tombstones: Dead base ids filtered out of the base candidates.
        n_queries: Queries scanned (after elision).
        k: Per-segment retrieval width.
    """

    index: str
    segments: int
    n_objects: int
    postings: int
    tombstones: int
    n_queries: int
    k: int

    def label(self) -> str:
        return (
            f"DeltaScan(index={self.index!r}, segments={self.segments}, "
            f"objects={self.n_objects}, postings={self.postings}, "
            f"tombstones={self.tombstones}, queries={self.n_queries}, k={self.k})"
        )


@dataclass(frozen=True)
class MergeNode(PlanNode):
    """Host-side candidate merge across parts or shards.

    Attributes:
        strategy: ``"one-round"`` (every source returns its full top-k)
            or ``"two-round-tput"`` (first round fetches
            ``first_round_k < k`` per shard, second round tops up only
            the shards whose round-one threshold proves it necessary).
        k: Final merged result width.
        first_round_k: Round-one per-shard fetch width (TPUT only).
    """

    strategy: str
    k: int
    first_round_k: int | None = None

    def label(self) -> str:
        extra = (
            f", first_round_k={self.first_round_k}"
            if self.first_round_k is not None
            else ""
        )
        return f"Merge({self.strategy}, k={self.k}{extra})"


@dataclass(frozen=True)
class FinalizeNode(PlanNode):
    """The model's verify/rerank hook over the merged shortlist."""

    model: str
    k: int

    def label(self) -> str:
        return f"Finalize(model={self.model!r}, k={self.k})"


@dataclass(frozen=True)
class RoutingSummary:
    """How much shard work a plan's routing avoided, for observability.

    One ``(query, shard)`` *pair* is one per-shard query scan; broadcast
    execution scans every pair. Pruning is batch-granular (see
    :class:`ShardScanNode`), so pruned pairs come in whole-shard units:
    ``pruned_pairs = pruned_shards * n_queries``.

    Attributes:
        n_shards: Shards in the scanned index.
        n_queries: Queries that reached the scan (after elision).
        scanned_pairs: Pairs actually executed.
        pruned_pairs: Pairs avoided by shard pruning.
    """

    n_shards: int
    n_queries: int
    scanned_pairs: int
    pruned_pairs: int

    @property
    def broadcast(self) -> bool:
        """Whether every (query, shard) pair was scanned."""
        return self.pruned_pairs == 0

    @property
    def pruned_fraction(self) -> float:
        """Fraction of pairs avoided (0.0 for broadcast or empty scans)."""
        total = self.scanned_pairs + self.pruned_pairs
        return self.pruned_pairs / total if total else 0.0
