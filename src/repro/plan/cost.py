"""The calibrated stage-cost model: price candidate plans at compile time.

PR 5's planner picks strategies by *rules* (prune range partitions,
never auto-select the two-round merge), which leaves throughput on the
table: the TPUT merge is 1.63x on its even-spread home workload but
0.82x on single-shard band traffic, so a rule that cannot tell the two
apart must abstain. This module gives ``compile_search`` the missing
signal — a :class:`CostModel` whose per-stage linear coefficients are
*fitted* (least squares) against the simulated device/host by replaying
a seeded probe workload, so the planner can price every candidate in
the strategy lattice and pick the cheapest.

The model prices the stages a sharded batch actually pays:

* **scan** (per shard, device): ``query_transfer + match + select`` of
  one launch, modeled as affine in the observable features — batch size,
  total query keywords, postings touched in the shard
  (:meth:`~repro.cluster.plan.ShardSlice.posting_counts` makes these
  exact, not estimated), and fetch width ``n_queries * k``.
* **merge** (host): affine in ``candidates * log2(n_shards)``, the
  S-way heap-merge charge of
  :func:`repro.cluster.executor.merge_shard_results`.
* **top-up fraction** (two-round TPUT only): the fraction of the
  full-width round-two scan the exact threshold test actually triggers,
  modeled as affine in the batch's postings *concentration* (the max
  shard share): concentrated traffic (one busy shard) always tops up,
  evenly-spread traffic almost never does. This single feature is what
  lets a calibrated ``plan="auto"`` pick the two-round merge on the
  even-spread workload and refuse it on band traffic.

Coefficients live on the session as a plain ``dict[str, float]``
(:attr:`GenieSession.cost_coefficients`) — inspectable, serializable,
and overridable in tests (a deliberately *mis*-calibrated model must
change only simulated time, never results; the equivalence suite pins
this). Calibration runs in a *scratch* session built from the same
device/host specs, so probing never pollutes the caller's timings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Stages whose sum the scan model predicts (one shard launch).
SCAN_STAGES = ("query_transfer", "match", "select")

#: Stages a sharded batch's predicted critical path covers (scan + merge).
PREDICTED_STAGES = SCAN_STAGES + ("result_merge",)

#: Every coefficient a fully calibrated model carries.
COEFFICIENT_NAMES = (
    "scan.const",
    "scan.queries",
    "scan.keywords",
    "scan.postings",
    "scan.gated",
    "scan.hot",
    "scan.width",
    "merge.const",
    "merge.ops",
    "topup.const",
    "topup.concentration",
)


# ----------------------------------------------------------------------
# feature extraction (shared by calibration and the planner's pricing)


def postings_per_keyword(index) -> np.ndarray:
    """Posting-list length per keyword row of an ``InvertedIndex``.

    Row ``i`` aligns with ``index.keyword_array[i]``. Computed from the
    CSR span arrays (load-balanced sub-lists sum back to the full list),
    one vectorized pass — no walk over the corpus.
    """
    span_len = (index.span_ends - index.span_starts).astype(np.int64)
    cum = np.concatenate([[0], np.cumsum(span_len)])
    offsets = index.kw_span_offsets.astype(np.int64)
    return (cum[offsets[1:]] - cum[offsets[:-1]]).astype(np.float64)


def postings_for_keywords(
    keywords: np.ndarray, keyword_array: np.ndarray, counts: np.ndarray
) -> float:
    """Total postings the given query keywords touch in one shard/index.

    ``keyword_array`` is the sorted distinct keywords; ``counts`` the
    aligned per-keyword posting lengths. Keywords absent from the index
    touch nothing.
    """
    if keywords.size == 0 or keyword_array.size == 0:
        return 0.0
    pos = np.searchsorted(keyword_array, keywords)
    clipped = np.minimum(pos, keyword_array.size - 1)
    found = (pos < keyword_array.size) & (keyword_array[clipped] == keywords)
    return float(counts[clipped[found]].sum())


def shard_postings_matrix(queries, shard_keywords, shard_postings) -> np.ndarray:
    """Per (query, shard) postings touched, shape ``[n_queries, n_shards]``.

    The planner's pricing features: column sums are each shard's batch
    scan work, and the column-share maximum is the batch's postings
    *concentration* (see :meth:`CostModel.topup_fraction`).
    """
    matrix = np.zeros((len(queries), len(shard_keywords)), dtype=np.float64)
    keyword_arrays = [q.all_keywords() for q in queries]
    for s, (kw, counts) in enumerate(zip(shard_keywords, shard_postings)):
        for qi, q_kw in enumerate(keyword_arrays):
            matrix[qi, s] = postings_for_keywords(q_kw, kw, counts)
    return matrix


def shard_block_matrix(queries, shard_keywords, shard_postings) -> np.ndarray:
    """Match blocks per (query, shard): query items with postings there.

    The match kernel maps one thread block to one query item's postings
    lists (:func:`repro.core.scan_kernel.plan_query_scan`); an item whose
    keywords miss the shard spawns no block. The per-shard block count is
    what the ``scan.hot`` feature divides by: the device spreads the
    launch's atomic work over ``min(blocks, num_sms)`` SMs, so a batch
    whose postings funnel into one block (a dense range predicate is ONE
    item, hence one block) pays them serially while an LSH batch (one
    block per hash function per query) amortizes them device-wide.
    """
    matrix = np.zeros((len(queries), len(shard_keywords)), dtype=np.float64)
    for s, (kw, counts) in enumerate(zip(shard_keywords, shard_postings)):
        for qi, q in enumerate(queries):
            matrix[qi, s] = sum(
                1.0
                for item in q.items
                if postings_for_keywords(item, kw, counts) > 0.0
            )
    return matrix


def serial_share(postings, blocks, num_sms: int):
    """The ``scan.hot`` feature: *excess* serial share of a shard's postings.

    ``postings * (1/min(blocks, num_sms) - 1/num_sms)`` — how much of
    the match kernel's atomic counter work lands on one SM *beyond* the
    fully amortized share. The device charges that work at the block
    granularity (see :meth:`repro.gpu.device.Device.launch`: the
    conflict/gate penalty divides by *active* SMs, capped by the block
    count), so a batch whose postings funnel into one block (a dense
    range predicate is ONE item, hence one block) pays nearly all of
    them serially, while a saturated launch (``blocks >= num_sms``)
    has zero excess — the feature vanishes there by construction,
    leaving the amortized work entirely to ``scan.postings``. Without
    the subtraction the two features are collinear on every saturated
    row and the fit can only price their *sum*, driving
    ``scan.postings`` negative.
    """
    postings = np.asarray(postings, dtype=np.float64)
    blocks = np.asarray(blocks, dtype=np.float64)
    sms = float(max(1, num_sms))
    active = np.minimum(np.maximum(blocks, 1.0), sms)
    return postings * (1.0 / active - 1.0 / sms)


def concentration(shard_postings) -> float:
    """Max shard share of the batch's postings, in ``[1/S, 1]``.

    ``1.0`` means one shard holds all the work (band-local traffic on a
    sorted range partition — the two-round merge's worst case: the busy
    shard always tops up). ``1/S`` is a perfectly even spread (hashed
    corpora — the merge's home turf). Empty batches price as
    concentrated: with no postings there is nothing for a smaller
    round-one width to save.
    """
    totals = np.asarray(list(shard_postings), dtype=np.float64)
    grand = float(totals.sum())
    if grand <= 0.0 or totals.size == 0:
        return 1.0
    return float(totals.max()) / grand


# ----------------------------------------------------------------------
# the model


@dataclass(frozen=True)
class PlanPrice:
    """Predicted cost of one candidate plan.

    Attributes:
        scan_seconds: Predicted device critical path of the scan
            round(s) — the slowest scanned shard (both rounds for TPUT,
            the top-up round weighted by the predicted fraction).
        merge_seconds: Predicted host merge seconds (threshold merge +
            final merge for TPUT).
        busy_seconds: Predicted *aggregate* device seconds across the
            scanned shards. Not on the critical path, but the tie-break:
            when candidates' critical paths are within tolerance, the
            one occupying fewer device-seconds wins (it frees shards for
            concurrent batches — exactly why routing beats broadcast on
            band traffic even though a single batch's latency ties).
        route_seconds: Predicted pre-dispatch host seconds the
            candidate's routing work costs (0 for broadcast); joins the
            tie-break on the same grounds.
    """

    scan_seconds: float
    merge_seconds: float
    busy_seconds: float
    route_seconds: float = 0.0

    @property
    def critical_path(self) -> float:
        """Predicted batch seconds: scan critical path + host merges."""
        return self.scan_seconds + self.merge_seconds


class CostModel:
    """Linear per-stage cost predictions over a coefficient dict.

    Missing coefficients read as ``0.0``, so any dict — including an
    adversarially wrong one — produces a usable (if useless) model;
    plan *choice* may degrade, plan *results* never can (every candidate
    is exact by construction).
    """

    def __init__(self, coefficients: dict):
        self.coefficients = dict(coefficients)

    def _c(self, name: str) -> float:
        return float(self.coefficients.get(name, 0.0))

    @property
    def calibrated(self) -> bool:
        """Whether every named coefficient is present."""
        return all(name in self.coefficients for name in COEFFICIENT_NAMES)

    def scan_seconds(
        self,
        n_queries: int,
        keywords: float,
        postings: float,
        width: int,
        hot: float = 0.0,
        count_bound: int = 1,
    ) -> float:
        """Predicted seconds of one shard's scan launch at fetch ``width``.

        ``hot`` is the shard's :func:`serial_share` — its postings
        divided by the match blocks available to spread them over
        (capped at the device's SM count). The device charges the match
        kernel's atomic counter work per *active* SM, so concentrated
        traffic (a dense range predicate = one block) pays its postings
        serially — the total-``postings`` term prices the amortized
        many-block regime, ``hot`` the serial one.

        ``count_bound`` is the batch's maximum per-query
        :meth:`~repro.core.types.Query.count_bound`: the select stage
        walks one c-PQ hash table of ``O(width * count_bound)`` slots per
        query (:func:`repro.core.cpq.hash_table_capacity`), so the fetch
        term is trilinear in ``n_queries * width * count_bound`` — at a
        fixed batch shape, select varies by an order of magnitude with
        query width alone, and a model without this factor cannot price
        an LSH batch (32 hash functions) and a band query (2 keywords)
        with one coefficient.

        The ``scan.gated`` term (``postings * sqrt(width)``) prices the
        match stage's *k-dependence*: with clustered posting counts the
        audit threshold is the k-th best count, so a smaller fetch width
        raises the threshold and shrinks the fraction of matched
        postings that pays the atomic gate. This is what makes a TPUT
        round one at ``first_round_k`` genuinely cheaper than a full
        scan — without it the model thinks round one saves only select
        work and would never choose the two-round merge.
        """
        return max(
            0.0,
            self._c("scan.const")
            + self._c("scan.queries") * float(n_queries)
            + self._c("scan.keywords") * float(keywords)
            + self._c("scan.postings") * float(postings)
            + self._c("scan.gated") * float(postings) * float(width) ** 0.5
            + self._c("scan.hot") * float(hot)
            + self._c("scan.width")
            * float(n_queries)
            * float(width)
            * float(max(1, count_bound)),
        )

    def merge_seconds(self, candidates: float, n_shards: int) -> float:
        """Predicted host seconds merging ``candidates`` over ``n_shards``.

        ``n_shards`` is the plan's shard count (pruned shards contribute
        empty lists but the executor's heap-merge charge still uses the
        full fan-in) — mirror of ``merge_shard_results``.
        """
        ops = float(candidates) * max(1.0, np.log2(max(int(n_shards), 2)))
        return max(0.0, self._c("merge.const") + self._c("merge.ops") * ops)

    def topup_fraction(self, chi: float) -> float:
        """Predicted fraction of the full-width round-two scan that runs."""
        frac = self._c("topup.const") + self._c("topup.concentration") * float(chi)
        return float(min(1.0, max(0.0, frac)))

    def price(
        self,
        *,
        n_queries: int,
        keywords: float,
        shard_postings,
        n_shards: int,
        retrieval_k: int,
        merge: str,
        first_round_k: int | None = None,
        route_seconds: float = 0.0,
        shard_hot=None,
        count_bound: int = 1,
    ) -> PlanPrice:
        """Price one candidate plan.

        Args:
            n_queries: Active queries in the batch.
            keywords: Total query keywords (every scanned shard pays the
                whole batch's query transfer — pruning is batch-granular).
            shard_postings: Per *scanned* shard, the batch's postings
                touched there.
            n_shards: The index's total shard count (merge fan-in).
            retrieval_k: Full fetch width.
            merge: ``"one-round"`` or ``"two-round-tput"``.
            first_round_k: TPUT round-one width (required for TPUT).
            route_seconds: Host seconds the candidate's routing pass costs.
            shard_hot: Per scanned shard, the largest single-query
                postings load (aligned with ``shard_postings``; zeros
                when unknown).
            count_bound: Batch maximum per-query count bound (sizes the
                select stage's c-PQ hash tables; see :meth:`scan_seconds`).
        """
        postings = [float(p) for p in shard_postings]
        hot = (
            [float(h) for h in shard_hot]
            if shard_hot is not None
            else [0.0] * len(postings)
        )
        scanned = max(len(postings), 1)

        def scan_round(width: int) -> tuple[float, float]:
            per = [
                self.scan_seconds(
                    n_queries, keywords, p, width, hot=h, count_bound=count_bound
                )
                for p, h in zip(postings, hot)
            ]
            return (max(per), sum(per)) if per else (0.0, 0.0)

        if merge == "two-round-tput":
            cp1, busy1 = scan_round(int(first_round_k))
            cp_full, busy_full = scan_round(int(retrieval_k))
            frac = self.topup_fraction(concentration(postings))
            round1_candidates = scanned * n_queries * int(first_round_k)
            full_candidates = scanned * n_queries * int(retrieval_k)
            merge_s = self.merge_seconds(round1_candidates, n_shards)
            merge_s += self.merge_seconds(
                round1_candidates + frac * full_candidates, n_shards
            )
            return PlanPrice(
                scan_seconds=cp1 + frac * cp_full,
                merge_seconds=merge_s,
                busy_seconds=busy1 + frac * busy_full,
                route_seconds=route_seconds,
            )
        cp, busy = scan_round(int(retrieval_k))
        merge_s = self.merge_seconds(scanned * n_queries * int(retrieval_k), n_shards)
        return PlanPrice(
            scan_seconds=cp,
            merge_seconds=merge_s,
            busy_seconds=busy,
            route_seconds=route_seconds,
        )


# ----------------------------------------------------------------------
# calibration: replay a seeded probe workload, least-squares the stages

#: Scan probes: (n_objects, kw_per_object, keyword_domain, n_queries,
#: kw_per_query, k). The grid spans both serving regimes the model must
#: price: dense-postings few-query small-k batches (band traffic) and
#: sparse-postings wide-batch large-k batches (ANN signatures).
_SCAN_PROBES = (
    (400, 4, 64, 1, 2, 5),
    (400, 4, 64, 4, 3, 10),
    (1500, 4, 256, 1, 3, 10),
    (1500, 4, 256, 8, 4, 20),
    (3000, 4, 256, 16, 4, 20),
    (3000, 5, 96, 32, 5, 50),
    (6000, 4, 512, 1, 4, 10),
    (6000, 6, 64, 64, 6, 50),
    (2000, 4, 512, 24, 16, 30),
    (1000, 3, 256, 2, 8, 5),
    (4000, 8, 128, 48, 3, 40),
    # NOTE: no sparse wide-query row (e.g. 64 queries x 32 uniform
    # keywords over a 1024 domain). That regime — uniform singleton
    # counts, audit threshold 1, every matched posting paying the full
    # atomic gate — has a per-posting cost ~5x the clustered regime the
    # LSH probes below measure, and no feature observable at planning
    # time separates the two. Calibration sides with the clustered
    # regime because that is what hash-sharded ANN traffic looks like.
    # Width-dominated rows, in k-varying pairs: corpora so sparse the
    # match stage is noise, leaving the select stage (nq * k *
    # count_bound c-PQ table slots) as the whole observation. Each pair
    # holds the query shape (same nq, same keywords) and moves only k,
    # so ``scan.width`` decorrelates from ``scan.keywords`` — without
    # the pairs, lstsq can push select cost into the keyword column
    # (width/keywords is near-constant at fixed k).
    (800, 2, 2048, 48, 32, 50),
    (800, 2, 2048, 48, 32, 5),
    (600, 2, 1024, 16, 16, 40),
    (600, 2, 1024, 16, 16, 4),
)

#: Banded probes: (n_objects, n_bands, n_queries, k) on a banded corpus
#: with every query hitting the same dense band — the concentrated
#: regime where one block's postings dominate the launch.
_BAND_PROBES = (
    (800, 4, 1, 10),
    (1600, 8, 1, 32),
    (1600, 8, 8, 32),
    (3200, 16, 4, 20),
    (6400, 16, 2, 50),
)

#: Serial-block probes: (n_objects, n_bands, n_queries, k), single-
#: keyword queries against a huge band so ONE match block carries
#: thousands of postings — the regime of a dense range predicate (one
#: item = one block), where the launch cost is the serial block, not the
#: batch totals. Without these rows the lstsq never sees ``scan.hot``
#: at the magnitude real band traffic has.
_HOT_PROBES = (
    (2000, 2, 1, 10),
    (6000, 2, 1, 10),
    (8000, 2, 2, 20),
    (12000, 4, 1, 20),
)

#: LSH probes: (n_points, dim, num_functions, n_queries, k, n_shards)
#: on a hash-sharded e2lsh index over Gaussian points, queried with
#: perturbed corpus points. Queries hit the heavy hash buckets their
#: neighbours live in, so scanned postings are large while per-object
#: counts cluster; hash sharding then splits each query's items across
#: shards, which lowers the per-shard audit threshold and raises the
#: gate fraction — the exact per-posting regime hash-sharded ANN
#: traffic pays. Probing these *sharded* (feature row = the critical
#: shard, like the planner prices) is deliberate: the serial variant
#: keeps whole count clusters together and runs ~3x cheaper per
#: posting, which would mis-anchor ``scan.postings``.
_ANN_PROBES = (
    (1500, 8, 16, 16, (20,), 4, 256),
    (8000, 16, 32, 64, (50, 13), 8, 1024),
)

#: Merge probes: (n_queries, k) over a dense 4-shard broadcast scan, so
#: every shard returns exactly k candidates per query.
_MERGE_PROBES = ((2, 5), (8, 10), (16, 25), (32, 50), (64, 50))


def _probe_corpus(rng, n_objects: int, kw_per_object: int, domain: int):
    return [
        np.unique(rng.integers(0, domain, size=kw_per_object)).tolist()
        for _ in range(n_objects)
    ]


def _probe_queries(rng, n_queries: int, kw_per_query: int, domain: int):
    return [
        np.sort(rng.choice(domain, size=kw_per_query, replace=False)).tolist()
        for _ in range(n_queries)
    ]


def _observed(profile, stages) -> float:
    return float(sum(profile.get(stage) for stage in stages))


def _relative_lstsq(rows, observed, weights=None) -> np.ndarray:
    """Least squares weighted by ``1/observed``: fit *relative* error.

    Unweighted lstsq lets the largest probes dominate, leaving small
    batches (band traffic: one query, a handful of keywords) with large
    relative misprediction — and relative error is both what the
    benchmark asserts and what plan *ranking* cares about. ``weights``
    optionally scales each row's influence on top of that (probe
    families representative of real traffic count more than synthetic
    regime-fillers).
    """
    rows = np.asarray(rows, dtype=np.float64)
    observed = np.asarray(observed, dtype=np.float64)
    scale = 1.0 / np.maximum(observed, 1e-18)
    if weights is not None:
        scale = scale * np.asarray(weights, dtype=np.float64)
    coef, *_ = np.linalg.lstsq(rows * scale[:, None], observed * scale, rcond=None)
    return coef


def _fit_scan(scratch, seed: int) -> dict:
    rows, observed, weights = [], [], []

    def probe_handle(handle, raw_queries, k):
        result = handle.search(raw_queries, k=k)
        index = handle._parts[0].index
        counts = postings_per_keyword(index)
        queries = handle.encode_queries(raw_queries)
        per_query = [
            postings_for_keywords(q.all_keywords(), index.keyword_array, counts)
            for q in queries
        ]
        blocks = sum(
            1.0
            for q in queries
            for item in q.items
            if postings_for_keywords(item, index.keyword_array, counts) > 0.0
        )
        hot = float(
            serial_share(sum(per_query), blocks, scratch.device.spec.num_sms)
        )
        keywords = float(sum(q.num_keywords for q in queries))
        bound = max(q.count_bound() for q in queries)
        nq = len(queries)
        total = float(sum(per_query))
        rows.append(
            [1.0, float(nq), keywords, total, total * float(k) ** 0.5,
             float(hot), float(nq * k * bound)]
        )
        observed.append(_observed(result.profile, SCAN_STAGES))
        weights.append(1.0)
        scratch.drop(handle.name)

    def probe(name, corpus, raw_queries, k):
        probe_handle(
            scratch.create_index(corpus, model="raw", name=name),
            raw_queries,
            k,
        )

    # Random probes: postings spread over many queries/blocks (the
    # amortized regime — total postings dominate).
    for i, (n_obj, kw_obj, domain, nq, kw_q, k) in enumerate(_SCAN_PROBES):
        rng = np.random.default_rng([seed, 1, i])
        probe(
            f"probe-scan-{i}",
            _probe_corpus(rng, n_obj, kw_obj, domain),
            _probe_queries(rng, nq, kw_q, domain),
            k,
        )
    # Banded probes: every query hammers the same dense band, so one
    # block's postings dominate the launch (the concentrated regime the
    # ``scan.hot`` feature prices — band traffic on sorted corpora).
    for i, (n_obj, n_bands, nq, k) in enumerate(_BAND_PROBES):
        rng = np.random.default_rng([seed, 4, i])
        probe(
            f"probe-band-{i}",
            _banded_corpus(rng, n_obj, n_bands),
            [[1, 2] for _ in range(nq)],
            k,
        )
    # Serial-block probes: one single-keyword query item owning a band of
    # thousands of postings — one block, no amortization.
    for i, (n_obj, n_bands, nq, k) in enumerate(_HOT_PROBES):
        rng = np.random.default_rng([seed, 5, i])
        probe(
            f"probe-hot-{i}",
            _banded_corpus(rng, n_obj, n_bands),
            [[0] for _ in range(nq)],
            k,
        )
    # LSH probes: clustered posting counts split across hash shards, the
    # amortized-gate regime of sharded ANN traffic. The observed scan is
    # the launch critical path, so the feature row is the heaviest
    # shard's — the same convention :meth:`CostModel.price` uses. Each
    # probe searches the same corpus at every k in its tuple: the
    # k-pair holds postings fixed and moves only the fetch width, which
    # is what identifies ``scan.gated`` (match work that shrinks with
    # k) separately from ``scan.postings`` (match work that does not).
    for i, (n_pts, dim, m, nq, ks, n_shards, domain) in enumerate(_ANN_PROBES):
        rng = np.random.default_rng([seed, 6, i])
        points = rng.normal(size=(n_pts, dim))
        picks = rng.choice(n_pts, size=nq, replace=False)
        handle = scratch.create_index(
            points, model="ann-e2lsh", num_functions=m, dim=dim,
            width=4.0, seed=0, domain=domain, name=f"probe-ann-{i}",
            shards=n_shards, shard_strategy="hash",
        )
        raw_queries = list(points[picks] + 0.01 * rng.normal(size=(nq, dim)))
        shards = handle._plan_shards()
        queries = handle.encode_queries(raw_queries)
        shard_posts = shard_postings_matrix(
            queries, shards.shard_keywords, shards.shard_postings
        ).sum(axis=0)
        shard_blocks = shard_block_matrix(
            queries, shards.shard_keywords, shards.shard_postings
        ).sum(axis=0)
        shard_hot = serial_share(
            shard_posts, shard_blocks, scratch.device.spec.num_sms
        )
        critical = int(np.argmax(shard_posts))
        keywords = float(sum(q.num_keywords for q in queries))
        bound = max(q.count_bound() for q in queries)
        post = float(shard_posts[critical])
        for k in ks:
            result = handle.search(
                raw_queries, k=k, route="broadcast", plan="one-round"
            )
            rows.append(
                [1.0, float(len(queries)), keywords, post,
                 post * float(k) ** 0.5, float(shard_hot[critical]),
                 float(len(queries) * k * bound)]
            )
            observed.append(_observed(result.profile, SCAN_STAGES))
            # LSH rows carry extra weight: they are the regime the
            # costed auto decision actually arbitrates (one-round vs
            # TPUT on hash-sharded ANN traffic), while the synthetic
            # uniform rows above exist to keep coefficients bounded
            # across regimes no benchmark exercises.
            weights.append(3.0)
        scratch.drop(handle.name)
    coef = _relative_lstsq(rows, observed, weights)
    names = (
        "scan.const", "scan.queries", "scan.keywords",
        "scan.postings", "scan.gated", "scan.hot", "scan.width",
    )
    return dict(zip(names, (float(c) for c in coef)))


def _fit_merge(scratch, seed: int) -> dict:
    # One dense 4-shard corpus: every query matches well over k objects
    # in every shard, so each shard returns exactly k candidates and the
    # merge feature (candidates * log2 S) is exact, not an upper bound.
    rng = np.random.default_rng([seed, 2])
    handle = scratch.create_index(
        _probe_corpus(rng, 1600, 6, 24), model="raw", name="probe-merge",
        shards=4, shard_strategy="range",
    )
    rows, observed = [], []
    for i, (nq, k) in enumerate(_MERGE_PROBES):
        q_rng = np.random.default_rng([seed, 2, i])
        result = handle.search(
            _probe_queries(q_rng, nq, 4, 24), k=k, route="broadcast",
            plan="one-round",
        )
        rows.append([1.0, 4.0 * nq * k * np.log2(4)])
        observed.append(_observed(result.profile, ("result_merge",)))
    scratch.drop(handle.name)
    coef = _relative_lstsq(rows, observed)
    return {"merge.const": float(coef[0]), "merge.ops": float(coef[1])}


def _skewed_corpus(rng, n_objects: int):
    # First quarter: dense hot keywords (all landing in range shard 0);
    # the rest: wide sparse keywords spread over a large cold domain.
    hot = [
        np.unique(rng.integers(0, 16, size=6)).tolist()
        for _ in range(n_objects // 4)
    ]
    cold = [
        np.unique(rng.integers(1000, 5000, size=4)).tolist()
        for _ in range(n_objects - n_objects // 4)
    ]
    return hot + cold


def _banded_corpus(rng, n_objects: int, n_bands: int):
    # Object i carries its band id plus one cold filler keyword, so a
    # query for two adjacent bands straddles exactly two range shards.
    band = n_objects // n_bands
    return [
        [i // band, int(rng.integers(1000, 5000))] for i in range(n_objects)
    ]


def _fit_topup(scratch, seed: int) -> dict:
    # Each probe compares three *observed* timings — forced two-round,
    # forced one-round at the round-one width, forced one-round at the
    # full width — and recovers the *effective* top-up fraction
    #
    #     frac = (obs_two - obs_small) / obs_full
    #
    # i.e. how much of a full-width scan the two-round path paid on top
    # of its round one. This is exactly the quantity
    # :meth:`CostModel.price` multiplies the full-round critical path
    # by, so estimator and pricer agree by construction; and it is
    # observed-only, so scan-model residuals cannot pollute the fit.
    #
    # The probe set spans the two regimes that matter. Concentrated
    # range probes (chi >= 0.5): flat posting counts tie every shard's
    # round-one threshold to the global cutoff, so effectively the
    # whole batch tops up (frac -> 1, two-round loses). Hash-sharded
    # e2lsh probes (chi ~ 1/S): clustered counts make shard thresholds
    # discriminating, most pairs prove completeness in round one, and
    # the effective fraction drops to ~0.35 (two-round wins). Uniform
    # even-spread corpora are deliberately NOT probed: their flat
    # counts top up 70-100% despite low chi, which would poison the
    # low-chi end of the fit — the planner prices them optimistically
    # and the result stays bit-identical either way.
    probes = []
    rng = np.random.default_rng([seed, 3])
    probes.append((  # all mass in one range shard: chi = 1, frac -> 1
        scratch.create_index(
            _skewed_corpus(rng, 1600), model="raw", name="probe-topup-skew",
            shards=4, shard_strategy="range",
        ),
        _probe_queries(np.random.default_rng([seed, 3, 0]), 8, 3, 16),
        32, "pruned", 1.0,
    ))
    probes.append((  # two adjacent range shards: chi ~ 0.5
        scratch.create_index(
            _banded_corpus(rng, 1600, 8), model="raw", name="probe-topup-band",
            shards=4, shard_strategy="range",
        ),
        [[1, 2] for _ in range(8)], 32, "pruned", 1.0,
    ))
    for i, (n_pts, dim, m, nq, k, n_shards, weight) in enumerate((
        (800, 8, 16, 16, 20, 4, 1.0),      # chi ~ 0.25
        (1200, 16, 32, 24, 50, 8, 1.0),    # chi ~ 0.125
        (8000, 16, 32, 64, 50, 8, 3.0),    # chi ~ 0.125 at production
        # scale, weighted like the LSH scan rows: clusters deepen with
        # corpus size, thresholds sharpen, and the measured fraction
        # drops — small corpora alone would overprice the two-round
        # merge exactly where it wins
    )):
        p_rng = np.random.default_rng([seed, 3, 2 + i])
        points = p_rng.normal(size=(n_pts, dim))
        picks = p_rng.choice(n_pts, size=nq, replace=False)
        probes.append((
            scratch.create_index(
                points, model="ann-e2lsh", num_functions=m, dim=dim,
                width=4.0, seed=0, domain=256, name=f"probe-topup-ann-{i}",
                shards=n_shards, shard_strategy="hash",
            ),
            list(points[picks] + 0.01 * p_rng.normal(size=(nq, dim))),
            k, "broadcast", weight,
        ))

    from repro.plan.planner import first_round_k_for

    rows, observed_frac, row_weights = [], [], []
    for handle, raw_queries, k, route, weight in probes:
        shards = handle._plan_shards()
        first_k = first_round_k_for(k, shards.n_shards)
        queries = handle.encode_queries(raw_queries)
        matrix = shard_postings_matrix(
            queries, shards.shard_keywords, shards.shard_postings
        )
        totals = matrix.sum(axis=0)
        chi = concentration([t for t in totals if t > 0])
        two = handle.search(raw_queries, k=k, route=route, plan="two-round")
        small = handle.search(raw_queries, k=first_k, route=route, plan="one-round")
        full = handle.search(raw_queries, k=k, route=route, plan="one-round")
        # Scan stages only: the two-round profile's device time is
        # round one plus the topped-up share of a full-width round, so
        # the division isolates the scan fraction exactly. Folding the
        # merge stages in would double-count them — the pricer charges
        # the two-round merges separately.
        obs_two = _observed(two.profile, SCAN_STAGES)
        obs_small = _observed(small.profile, SCAN_STAGES)
        obs_full = _observed(full.profile, SCAN_STAGES)
        frac = (obs_two - obs_small) / max(obs_full, 1e-18)
        rows.append([1.0, chi])
        observed_frac.append(min(1.0, max(0.0, frac)))
        row_weights.append(weight)
        scratch.drop(handle.name)
    rows = np.asarray(rows)
    observed_frac = np.asarray(observed_frac)
    row_weights = np.asarray(row_weights)
    # :meth:`CostModel.topup_fraction` clips at 1.0, so saturated probes
    # (the concentrated regimes, where the whole batch tops up) are
    # censored observations: they pin the model to 1.0 wherever the
    # linear form exceeds it, but carry no gradient about the slope
    # below saturation. Fitting the line through them would tilt the
    # unsaturated (low-chi) end upward — exactly the regime where the
    # one-round/two-round decision and its price live — so the
    # regression uses only unsaturated points when enough exist.
    live = observed_frac < 0.9
    if live.sum() >= 2:
        rows, observed_frac = rows[live], observed_frac[live]
        row_weights = row_weights[live]
    w = row_weights[:, None]
    coef, *_ = np.linalg.lstsq(
        rows * w, observed_frac * row_weights, rcond=None
    )
    return {"topup.const": float(coef[0]), "topup.concentration": float(coef[1])}


def calibrate_coefficients(
    device_spec, device_costs, host_spec, host_cores: int = 1, seed: int = 0
) -> dict:
    """Fit every :data:`COEFFICIENT_NAMES` coefficient from probe replays.

    Builds a scratch :class:`~repro.api.session.GenieSession` on fresh
    device/host instances with the given specs (identical cost model,
    untouched timings), replays the seeded probe workloads, and
    least-squares-fits each stage. Deterministic for a given
    ``(specs, seed)``.
    """
    from repro.api.session import GenieSession
    from repro.gpu.device import Device
    from repro.gpu.host import HostCpu

    scratch = GenieSession(
        device=Device(spec=device_spec, costs=device_costs),
        host=HostCpu(spec=host_spec, cores=host_cores),
    )
    try:
        coefficients = _fit_scan(scratch, seed)
        coefficients.update(_fit_merge(scratch, seed))
        coefficients.update(_fit_topup(scratch, seed))
    finally:
        scratch.close()
    return coefficients


def calibrate_session(session, seed: int = 0) -> dict:
    """Calibrate against ``session``'s device/host and persist the result.

    The coefficients land on :attr:`session.cost_coefficients
    <repro.api.session.GenieSession.cost_coefficients>` (a plain dict;
    assignment bumps the session's cost epoch and flushes its plan
    cache), and the same dict is returned.
    """
    session._check_open()
    session.cost_coefficients = calibrate_coefficients(
        device_spec=session.device.spec,
        device_costs=session.device.costs,
        host_spec=session.host.spec,
        host_cores=session.host.cores,
        seed=seed,
    )
    return session.cost_coefficients
