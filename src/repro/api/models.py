"""Match models: raw data -> GENIE keywords, one adapter per modality.

GENIE is *generic* because every workload reduces to the same match-count
query (Section II-A): front-ends only differ in how they encode raw data
into keyword sets. A :class:`MatchModel` captures exactly that seam:

* ``encode_corpus(data)`` turns raw data items into a
  :class:`~repro.core.types.Corpus`,
* ``encode_queries(data)`` turns raw queries into
  :class:`~repro.core.types.Query` objects,
* optional hooks adapt the engine configuration (``adapt_config``), widen
  the retrieval (``shortlist_k``) and verify/rerank the raw shortlist
  (``finalize``) — the sequence adapter uses the last two for Algorithm 2's
  edit-distance verification.

Models are stateful: vocabularies, discretizers and LSH projections are
learned in ``encode_corpus`` and reused by ``encode_queries``, exactly as
the legacy per-modality wrappers did.

The string-keyed registry maps the paper's workloads onto models:
``"relational"`` (Section V-C), ``"document"`` (V-B), ``"sequence"`` /
``"ngram"`` (V-A), ``"ann-e2lsh"`` / ``"ann-rbh"`` / ``"ann-minhash"`` /
``"ann-simhash"`` (Section IV, building the family from kwargs) and
``"ann"`` (wrapping an existing family instance), plus ``"raw"`` for
pre-encoded keyword data (the multi-loading shim and core-level
workloads).
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.engine import GenieConfig
from repro.core.types import Corpus, Query
from repro.errors import ConfigError, QueryError
from repro.gpu.host import HostCpu
from repro.lsh.family import LshFamily
from repro.lsh.transform import DEFAULT_DOMAIN, LshTransformer
from repro.sa.document import DEFAULT_STOPWORDS, WordVocabulary, tokenize
from repro.sa.edit_distance import edit_distance, edit_distance_ops
from repro.sa.ngram import NgramVocabulary
from repro.sa.relational import AttributeSpec, Discretizer
from repro.sa.sequence import (
    PAPER_K_CANDIDATES,
    SequenceMatch,
    SequenceSearchResult,
)


@runtime_checkable
class MatchModel(Protocol):
    """The encoding contract every modality adapter satisfies.

    Required: ``name``, ``encode_corpus`` and ``encode_queries``. Optional
    hooks (provided with safe defaults by :class:`BaseMatchModel`):

    * ``adapt_config(config) -> GenieConfig`` — per-model engine tweaks
      (the ANN model pins ``count_bound`` to ``m``),
    * ``validate_queries(raw, queries)`` — reject malformed raw queries,
    * ``shortlist_k(k, **opts) -> int`` — retrieval width when the model
      reranks a wider shortlist (sequence search retrieves ``n_candidates``),
    * ``finalize(raw, queries, results, *, k, host, **opts)`` — the
      verify/rerank hook; its return value becomes
      :attr:`repro.api.session.SearchResult.payload`.
    """

    name: str

    def encode_corpus(self, data) -> Corpus: ...

    def encode_queries(self, data) -> list[Query]: ...


class BaseMatchModel:
    """Default hook implementations shared by the bundled models.

    Attributes:
        name: Registry-style model name (used for auto index names).
        skip_empty: When ``True`` the session skips zero-item queries
            instead of sending them to the engine (sequence semantics);
            the model's ``finalize`` sees an empty result in their place.
        finalize: ``None`` means no verify/rerank stage.
        finalize_uses_raw: ``True`` when ``finalize`` reads the *raw*
            queries (not just their encodings). Encoding is not always
            injective (e.g. unseen n-grams are dropped), so result caches
            must then key on the raw query too — the serve layer's
            exact-match cache checks this flag.
    """

    name = "base"
    skip_empty = False
    finalize: Callable | None = None
    finalize_uses_raw = False

    def adapt_config(self, config: GenieConfig) -> GenieConfig:
        """Engine configuration this model needs; identity by default."""
        return config

    def validate_queries(self, raw_queries, queries: list[Query]) -> None:
        """Reject raw queries the model cannot search; no-op by default."""

    def shortlist_k(self, k: int, **opts) -> int:
        """Retrieval width for a user-facing ``k``; rejects unknown opts."""
        if opts:
            raise QueryError(
                f"model {self.name!r} does not accept search options: {sorted(opts)}"
            )
        return k

    def encode_increment(self, data) -> Corpus:
        """Encode an online-ingest batch against the *fitted* state.

        Streaming insert/update (:mod:`repro.stream`) must not refit the
        encoders — a delta batch has to land in the same keyword space as
        the base corpus. Only models whose corpus encoding is stateless
        (or can reuse frozen fitted state) support this; the default
        refuses, which is the correct answer for models that learn
        vocabulary/discretizers/points from the full corpus.
        """
        raise ConfigError(
            f"model {self.name!r} does not support online ingest; refit instead"
        )


# ----------------------------------------------------------------------
# registry


MODEL_REGISTRY: dict[str, Callable[..., MatchModel]] = {}


def register_model(name: str):
    """Class/function decorator registering a model factory under ``name``."""

    def decorate(factory):
        MODEL_REGISTRY[name] = factory
        return factory

    return decorate


def available_models() -> tuple[str, ...]:
    """Registered model names, sorted."""
    return tuple(sorted(MODEL_REGISTRY))


def resolve_model(model, **model_kwargs) -> MatchModel:
    """Resolve a model spec into a :class:`MatchModel` instance.

    Args:
        model: A registry name (e.g. ``"document"``, ``"ann-e2lsh"``) or an
            object already satisfying the protocol.
        model_kwargs: Forwarded to the registry factory; invalid for
            instances.

    Raises:
        ConfigError: Unknown name, kwargs passed with an instance, or an
            object that does not satisfy the protocol.
    """
    if isinstance(model, str):
        factory = MODEL_REGISTRY.get(model)
        if factory is None:
            raise ConfigError(
                f"unknown model {model!r}; available: {list(available_models())}"
            )
        return factory(**model_kwargs)
    if model_kwargs:
        raise ConfigError(
            "model keyword arguments only apply to registry names, "
            f"not {type(model).__name__} instances"
        )
    for attr in ("encode_corpus", "encode_queries"):
        if not callable(getattr(model, attr, None)):
            raise ConfigError(
                f"{type(model).__name__} does not satisfy MatchModel: missing {attr}()"
            )
    return model


def resolve_shortlist_k(model, k: int, search_opts: dict) -> int:
    """Resolve a model's retrieval width for a user-facing ``k``.

    The one shared implementation for every execution surface: the
    session's search compiles with the width it returns, and the server
    calls it at admission so bad options fail the submitting request
    instead of a coalesced batch. Models with a ``shortlist_k`` hook
    widen the retrieval (and validate their options); models without one
    retrieve exactly ``k`` and accept no options.

    Args:
        model: A :class:`MatchModel` (hooks are optional, so the protocol
            minimum is enough).
        k: User-facing result width.
        search_opts: Model-specific search options (e.g. the sequence
            model's ``n_candidates``).

    Raises:
        QueryError: Options passed to a model without a ``shortlist_k``
            hook, or rejected by the hook itself.
    """
    shortlist = getattr(model, "shortlist_k", None)
    if shortlist is None:
        if search_opts:
            raise QueryError(f"unsupported search options: {sorted(search_opts)}")
        return int(k)
    return int(shortlist(k, **search_opts))


# ----------------------------------------------------------------------
# raw keywords


@register_model("raw")
class RawModel(BaseMatchModel):
    """Identity model: data are already GENIE keyword sets / queries.

    ``encode_corpus`` accepts a :class:`~repro.core.types.Corpus` or any
    iterable of keyword iterables; ``encode_queries`` accepts
    :class:`~repro.core.types.Query` objects or keyword iterables (each
    becoming a one-keyword-per-item query).
    """

    name = "raw"

    def encode_corpus(self, data) -> Corpus:
        return data if isinstance(data, Corpus) else Corpus(data)

    def encode_increment(self, data) -> Corpus:
        # Identity encoding carries no fitted state: a delta batch lands
        # in the same keyword space as the base corpus by construction.
        return self.encode_corpus(data)

    def encode_queries(self, data) -> list[Query]:
        return [q if isinstance(q, Query) else Query.from_keywords(q) for q in data]


# ----------------------------------------------------------------------
# relational tables (Section V-C)


@register_model("relational")
class RelationalModel(BaseMatchModel):
    """Mixed categorical/numeric tables -> ``(attribute, value)`` keywords.

    Numeric columns are discretized into equal-width bins at encode time;
    keyword ranges are laid out attribute after attribute (Fig. 1's
    ``(d, v)`` pair encoding). Raw queries are ``{attribute: (lo, hi)}``
    range dictionaries; each range expands into one query item.

    Args:
        schema: One :class:`~repro.sa.relational.AttributeSpec` per column.
    """

    name = "relational"

    def __init__(self, schema: list[AttributeSpec]):
        if not schema:
            raise ConfigError("schema must have at least one attribute")
        self.schema = list(schema)
        self._discretizers: dict[str, Discretizer] = {}
        self._offsets: dict[str, int] = {}
        self._domain: dict[str, int] = {}
        self.n_rows = 0

    def _attr(self, name: str) -> AttributeSpec:
        for spec in self.schema:
            if spec.name == name:
                return spec
        raise QueryError(f"unknown attribute: {name}")

    def encode_corpus(self, columns: dict[str, np.ndarray]) -> Corpus:
        missing = [spec.name for spec in self.schema if spec.name not in columns]
        if missing:
            raise ConfigError(f"columns missing from data: {missing}")
        lengths = {name: len(np.asarray(col)) for name, col in columns.items()}
        if len(set(lengths.values())) != 1:
            raise ConfigError(f"ragged columns: {lengths}")
        self.n_rows = next(iter(lengths.values()))

        encoded: dict[str, np.ndarray] = {}
        offset = 0
        for spec in self.schema:
            values = np.asarray(columns[spec.name])
            if spec.kind == "numeric":
                disc = Discretizer(spec.bins).fit(values)
                self._discretizers[spec.name] = disc
                codes = disc.transform(values)
                domain = spec.bins
            else:
                codes = np.asarray(values, dtype=np.int64)
                if codes.size and codes.min() < 0:
                    raise ConfigError(f"categorical column {spec.name} has negative codes")
                domain = int(codes.max()) + 1 if codes.size else 1
            self._offsets[spec.name] = offset
            self._domain[spec.name] = domain
            encoded[spec.name] = codes + offset
            offset += domain

        rows = np.column_stack([encoded[spec.name] for spec in self.schema])
        return Corpus(list(rows))

    def _codes_for_range(self, name: str, lo, hi) -> np.ndarray:
        spec = self._attr(name)
        domain = self._domain[name]
        if spec.kind == "numeric":
            disc = self._discretizers[name]
            lo_code = int(disc.transform(np.asarray([lo]))[0])
            hi_code = int(disc.transform(np.asarray([hi]))[0])
        else:
            lo_code, hi_code = int(lo), int(hi)
        lo_code = max(0, min(lo_code, domain - 1))
        hi_code = max(0, min(hi_code, domain - 1))
        if hi_code < lo_code:
            raise QueryError(f"empty range on {name}: [{lo}, {hi}]")
        return np.arange(lo_code, hi_code + 1, dtype=np.int64) + self._offsets[name]

    def make_query(self, ranges: dict[str, tuple]) -> Query:
        """Build a GENIE query from ``{attribute: (lo, hi)}`` ranges."""
        if not ranges:
            raise QueryError("query must constrain at least one attribute")
        return Query(items=[self._codes_for_range(name, lo, hi) for name, (lo, hi) in ranges.items()])

    def encode_queries(self, ranges_batch: list[dict[str, tuple]]) -> list[Query]:
        return [self.make_query(ranges) for ranges in ranges_batch]


# ----------------------------------------------------------------------
# short documents (Section V-B)


@register_model("document")
class DocumentModel(BaseMatchModel):
    """Short texts -> binary word-vector keywords (match count = inner product).

    Args:
        stopwords: Words dropped at tokenization time.
    """

    name = "document"

    def __init__(self, stopwords: frozenset[str] = DEFAULT_STOPWORDS):
        self.vocabulary = WordVocabulary()
        self.stopwords = stopwords
        self.documents: list[str] = []

    def encode_corpus(self, documents: list[str]) -> Corpus:
        self.documents = list(documents)
        return Corpus(
            [self.vocabulary.encode(tokenize(doc, self.stopwords), grow=True) for doc in self.documents]
        )

    def encode_queries(self, texts: list[str]) -> list[Query]:
        return [
            Query.from_keywords(self.vocabulary.encode(tokenize(t, self.stopwords), grow=False))
            for t in texts
        ]

    def validate_queries(self, raw_queries, queries: list[Query]) -> None:
        empty = [i for i, q in enumerate(queries) if q.num_items == 0]
        if empty:
            raise QueryError(f"queries {empty} contain no indexed words")


# ----------------------------------------------------------------------
# sequences (Section V-A)


@register_model("ngram")
class NgramModel(BaseMatchModel):
    """Sequences -> ordered n-gram keywords, *without* verification.

    Match counts are common-gram counts (Lemma 5.1). Queries whose grams
    are all unseen are skipped and return empty results instead of raising.

    Args:
        n: Gram length.
    """

    name = "ngram"
    skip_empty = True

    def __init__(self, n: int = 3):
        self.n = int(n)
        self.vocabulary = NgramVocabulary(self.n)
        self.sequences: list[str] = []

    def encode_corpus(self, sequences: list[str]) -> Corpus:
        self.sequences = list(sequences)
        return Corpus([self.vocabulary.encode(s, grow=True) for s in self.sequences])

    def encode_queries(self, sequences: list[str]) -> list[Query]:
        return [Query.from_keywords(self.vocabulary.encode(s, grow=False)) for s in sequences]


@register_model("sequence")
class SequenceModel(NgramModel):
    """N-gram retrieval plus Algorithm 2's edit-distance verification.

    The verify hook retrieves an ``n_candidates``-wide shortlist, verifies
    it with exact edit distance (cost charged to the host's ``verify``
    stage) and certifies the answer per Theorem 5.2. The per-query payload
    is a :class:`~repro.sa.sequence.SequenceSearchResult`.

    ``finalize_uses_raw``: edit distances are computed against the raw
    query string, and two different strings can share an n-gram encoding
    (unseen grams are dropped) — result caches must not conflate them.
    """

    name = "sequence"
    finalize_uses_raw = True

    def shortlist_k(self, k: int, n_candidates: int = PAPER_K_CANDIDATES) -> int:
        if k < 1 or n_candidates < k:
            raise QueryError("need n_candidates >= k >= 1")
        return int(n_candidates)

    def finalize(
        self,
        raw_queries,
        queries: list[Query],
        results,
        *,
        k: int,
        host: HostCpu,
        n_candidates: int = PAPER_K_CANDIDATES,
    ) -> list[SequenceSearchResult]:
        payload = []
        for raw, query, result in zip(raw_queries, queries, results):
            if query.num_items == 0:
                payload.append(SequenceSearchResult(shortlist_size=n_candidates))
            else:
                payload.append(
                    self.verify(raw, result.ids, result.counts, k, n_candidates, host)
                )
        return payload

    def verify(
        self, query: str, ids, counts, k: int, n_candidates: int, host: HostCpu
    ) -> SequenceSearchResult:
        """Algorithm 2 generalized to top-k, with cost charged to the host."""
        n = self.n
        matches: list[SequenceMatch] = []
        verified = 0

        def kth_distance() -> int:
            return matches[k - 1].distance if len(matches) >= k else np.iinfo(np.int64).max

        def filter_threshold() -> float:
            tau = kth_distance()
            if tau == np.iinfo(np.int64).max:
                return -np.inf
            return len(query) - n + 1 - n * (tau - 1)

        for j, (sid, count) in enumerate(zip(ids, counts)):
            if j > 0 and matches and filter_threshold() > count:
                break  # Theorem 5.1: no later candidate can beat the k-th best.
            candidate = self.sequences[int(sid)]
            if len(matches) >= k and abs(len(query) - len(candidate)) > kth_distance():
                continue  # length filter
            distance = edit_distance(query, candidate)
            host.charge_ops(edit_distance_ops(len(query), len(candidate)), stage="verify")
            verified += 1
            matches.append(SequenceMatch(sequence_id=int(sid), distance=distance, count=int(count)))
            matches.sort(key=lambda match: (match.distance, match.sequence_id))
            del matches[k:]

        certified = False
        if matches and len(ids) > 0:
            # Theorem 5.2: compare the K-th candidate's count with the bound
            # derived from the k-th verified distance.
            c_last = int(counts[-1])
            tau_k = matches[min(k, len(matches)) - 1].distance
            certified = (len(ids) < n_candidates) or (
                c_last < len(query) - n + 1 - tau_k * n
            )
        return SequenceSearchResult(
            matches=matches,
            certified=certified,
            candidates_verified=verified,
            shortlist_size=n_candidates,
        )


# ----------------------------------------------------------------------
# LSH-transformed high-dimensional data (Section IV)


class AnnModel(BaseMatchModel):
    """Points -> re-hashed LSH signature keywords (tau-ANN search).

    ``adapt_config`` pins the engine's ``count_bound`` to the number of
    hash functions ``m`` (a count can never exceed the number of colliding
    functions). The payload of a search is the ``(ids, counts, counts/m)``
    triple per query — ``c/m`` is the MLE similarity estimate (Eqn. 7).

    Args:
        family: The LSH family supplying ``h_1 .. h_m``.
        domain: Re-hash bucket domain ``D``.
        seed: Seed for the re-hash projections.
    """

    def __init__(self, family: LshFamily, domain: int = DEFAULT_DOMAIN, seed: int = 0):
        self.transformer = LshTransformer(family, domain=domain, seed=seed)
        self.name = f"ann-{type(family).__name__.lower()}"
        self._points: np.ndarray | None = None

    @property
    def num_functions(self) -> int:
        """Number of LSH functions ``m``."""
        return self.transformer.num_functions

    @property
    def points(self) -> np.ndarray:
        """The indexed points (used by evaluations for true distances)."""
        if self._points is None:
            raise QueryError("index is not fitted")
        return self._points

    def adapt_config(self, config: GenieConfig) -> GenieConfig:
        return config.with_(count_bound=self.num_functions)

    def encode_corpus(self, points) -> Corpus:
        points = np.atleast_2d(np.asarray(points))
        if points.shape[0] == 0:
            raise ConfigError("cannot fit an empty point set")
        self._points = points
        return self.transformer.to_corpus(points)

    def encode_queries(self, points) -> list[Query]:
        return self.transformer.to_queries(np.atleast_2d(np.asarray(points)))

    def finalize(self, raw_queries, queries, results, *, k: int, host: HostCpu) -> list[tuple]:
        m = float(self.num_functions)
        return [(r.ids, r.counts, r.counts / m) for r in results]


def _register_ann_family(key: str, family_cls):
    @register_model(key)
    def factory(
        family: LshFamily | None = None,
        domain: int = DEFAULT_DOMAIN,
        rehash_seed: int = 0,
        **family_kwargs,
    ):
        # ``seed`` inside family_kwargs seeds the LSH family itself;
        # ``rehash_seed`` seeds the re-hash projections (the ``seed``
        # argument of AnnModel / the legacy TauAnnIndex).
        if family is None:
            family = family_cls(**family_kwargs)
        elif family_kwargs:
            raise ConfigError("pass either a family instance or family kwargs, not both")
        return AnnModel(family, domain=domain, seed=rehash_seed)

    return factory


def _ann_factories():
    # Imported here: the lsh subpackage's family modules are leaves, but
    # keeping the coupling local makes the registry listing self-contained.
    from repro.lsh.e2lsh import E2Lsh
    from repro.lsh.minhash import MinHash
    from repro.lsh.rbh import RandomBinningHash
    from repro.lsh.simhash import SimHash

    _register_ann_family("ann-e2lsh", E2Lsh)
    _register_ann_family("ann-rbh", RandomBinningHash)
    _register_ann_family("ann-minhash", MinHash)
    _register_ann_family("ann-simhash", SimHash)


_ann_factories()


@register_model("ann")
def _make_ann(family: LshFamily, domain: int = DEFAULT_DOMAIN, rehash_seed: int = 0) -> AnnModel:
    """Plain ``"ann"`` entry: wrap an existing LSH family instance.

    ``rehash_seed`` seeds the re-hash projections, matching the
    ``"ann-<family>"`` factories (family seeding belongs to the instance).
    """
    return AnnModel(family, domain=domain, seed=rehash_seed)
