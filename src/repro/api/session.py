"""The GENIE session: one device, many resident indexes, one search surface.

:class:`GenieSession` owns a shared simulated :class:`~repro.gpu.device.Device`
and :class:`~repro.gpu.host.HostCpu` plus a device-memory budget for index
residency. Indexes of any modality are created through one call::

    session = GenieSession(memory_budget=64 << 20)
    docs = session.create_index(texts, model="document", name="tweets")
    result = docs.search(["gpu similarity search"], k=10)

Every index is one or more *parts* (a part is a corpus slice with its own
inverted index, built once on the host). The session swaps parts through
device memory on demand: attaching pays the paper's ``index_transfer``
stage, and when the budget is exceeded the least-recently-used resident
part is evicted. This generalizes the multi-loading strategy of
Section III-D — one oversized index (``part_size=...``) and several small
indexes of different modalities are the same residency problem — and is
how the session serves multi-tenant traffic from a single card (Table IV's
memory accounting bounds what fits next to the queries).

Results come back as a :class:`SearchResult`: per-query top-k ids and
counts, the per-stage :class:`~repro.gpu.stats.StageTimings` profile
(including swap-in transfers and host verification), the model-specific
payload (e.g. edit-distance-verified sequence matches), and the residency
events (evictions / swap-ins) the search caused.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.api.models import MatchModel, resolve_model, resolve_shortlist_k
from repro.core.engine import GenieConfig, GenieEngine
from repro.core.inverted_index import InvertedIndex
from repro.core.types import ID_DTYPE, Corpus, Query, TopKResult
from repro.errors import ConfigError, GpuOutOfMemoryError, QueryError
from repro.gpu.device import Device
from repro.gpu.host import HostCpu
from repro.gpu.stats import StageTimings, timings_delta
from repro.obs.trace import Span
from repro.plan.cache import PlanCache
from repro.plan.cost import calibrate_session
from repro.plan.executor import execute_plan
from repro.plan.nodes import PlanNode, RoutingSummary
from repro.plan.planner import (
    ShardContext,
    compile_search,
    eligibility_needed,
    reprice_plan,
    validate_plan_args,
)

logger = logging.getLogger("repro.api")


@dataclass(frozen=True)
class ResidencyEvent:
    """One device-residency transition caused by the session.

    Attributes:
        kind: ``"attach"`` (part transferred to the device) or ``"evict"``
            (part's device memory released).
        index: Name of the owning index.
        part: Part position within the index.
        nbytes: Device bytes the part occupies.
    """

    kind: str
    index: str
    part: int
    nbytes: int


class ResidencyLog:
    """Bounded record of residency events with a lifetime counter.

    Only the most recent ``limit`` events are retained (sustained serving
    traffic would otherwise grow the log without bound); ``total_events``
    counts every event ever appended. Iteration and indexing cover the
    retained window, oldest first.
    """

    def __init__(self, limit: int = 1024):
        if int(limit) < 1:
            raise ConfigError("residency log limit must be >= 1")
        self.limit = int(limit)
        self.total_events = 0
        self._events: deque[ResidencyEvent] = deque(maxlen=self.limit)

    def append(self, event: ResidencyEvent) -> None:
        """Record one event, dropping the oldest beyond the limit."""
        self._events.append(event)
        self.total_events += 1

    def mark(self) -> int:
        """Current position in the lifetime stream (for :meth:`since`)."""
        return self.total_events

    def since(self, mark: int) -> list[ResidencyEvent]:
        """Events appended after ``mark`` that are still retained."""
        first_retained = self.total_events - len(self._events)
        skip = max(0, mark - first_retained)
        if skip == 0:
            return list(self._events)
        return list(self._events)[skip:]

    @property
    def dropped(self) -> int:
        """Events no longer retained because of the limit."""
        return self.total_events - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __getitem__(self, i):
        return list(self._events)[i]


@dataclass
class SearchResult:
    """Uniform answer of :meth:`IndexHandle.search` for every modality.

    Attributes:
        results: One :class:`~repro.core.types.TopKResult` per raw query,
            in input order.
        profile: Per-stage simulated seconds for this search, including
            any ``index_transfer`` swap-ins and host-side ``verify`` /
            ``result_merge`` work it caused.
        payload: Model-specific extras — ``None`` for plain match-count
            models, verified :class:`~repro.sa.sequence.SequenceSearchResult`
            objects for ``"sequence"``, ``(ids, counts, counts/m)`` triples
            for ANN models.
        evicted: Residency evictions this search forced (other indexes or
            this index's own parts swapping out).
        swapped_in: Number of parts transferred to the device during the
            search (0 when everything was already resident).
        shard_profiles: Per-shard stage profiles when the search ran on a
            sharded index (``profile`` is then the concurrent critical
            path — slowest shard plus the host merge); ``None`` for
            unsharded indexes. Shards the plan pruned entirely report an
            empty profile.
        plan: The logical plan the search executed (see
            :mod:`repro.plan`); render it with ``result.plan.render()``.
        routing: Scan/prune pair accounting for sharded plans
            (:class:`~repro.plan.nodes.RoutingSummary`); ``None`` for
            serial plans.
        predicted_cost: The planner's predicted critical-path seconds
            when the session's cost model priced this plan (``None`` for
            serial plans and uncalibrated sessions) — compare against
            the observed ``profile`` to audit the model.
        trace: Execution span tree (:class:`~repro.obs.trace.Span`) when
            the search was called with ``trace=True``: plan compile,
            per-part/per-shard scans, delta scans, tombstone filter,
            merge, finalize — on a timeline starting at 0.0 simulated
            seconds. ``None`` otherwise (untraced searches allocate no
            spans).
        failovers: :class:`~repro.replica.faults.FailoverEvent` records
            for every scan attempt this search re-dispatched past a
            failed device (replicated indexes under an injected
            :class:`~repro.replica.faults.FaultPlan`); ``()`` otherwise.
            The retry penalties are already charged on ``profile``'s
            critical path as the ``failover_retry`` stage.
    """

    results: list[TopKResult]
    profile: StageTimings
    payload: Any = None
    evicted: tuple[ResidencyEvent, ...] = ()
    swapped_in: int = 0
    shard_profiles: tuple[StageTimings, ...] | None = None
    plan: PlanNode | None = None
    routing: RoutingSummary | None = None
    predicted_cost: float | None = None
    trace: Span | None = None
    failovers: tuple = ()

    @property
    def ids(self) -> list[np.ndarray]:
        """Per-query result ids, aligned with the raw queries."""
        return [r.ids for r in self.results]

    @property
    def counts(self) -> list[np.ndarray]:
        """Per-query match counts, aligned with the raw queries."""
        return [r.counts for r in self.results]

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i: int) -> TopKResult:
        return self.results[i]


class _IndexPart:
    """One device-swappable slice of an index: corpus + inverted index + engine.

    ``offset`` remaps the part's local object ids back to global ids for
    contiguous partitions (multi-loading parts); sharded handles pass an
    explicit ``global_ids`` gather map instead (hash partitions are not
    contiguous) and leave ``offset`` at 0. ``replica`` distinguishes the
    copies of one shard slice a replicated handle places on distinct
    devices (each copy is its own residency/LRU unit).
    """

    __slots__ = ("handle", "position", "engine", "corpus", "index", "offset",
                 "global_ids", "device_bytes", "replica")

    def __init__(self, handle: "IndexHandle", position: int, engine: GenieEngine,
                 corpus: Corpus, index: InvertedIndex, offset: int,
                 global_ids: np.ndarray | None = None, replica: int = 0):
        self.handle = handle
        self.position = position
        self.engine = engine
        self.corpus = corpus
        self.index = index
        self.offset = offset
        self.global_ids = global_ids
        self.replica = replica
        # The device-resident List Array holds 32-bit ids (what
        # GenieEngine.attach_index actually transfers and allocates).
        self.device_bytes = 4 * int(index.list_array.size)

    @property
    def resident(self) -> bool:
        return self.engine.index_resident


class GenieSession:
    """Shared device/host plus budgeted multi-index residency.

    Args:
        device: Simulated GPU shared by every index (fresh when omitted).
        host: Simulated host CPU (index builds, merges, verification).
        config: Default engine configuration for created indexes.
        memory_budget: Device bytes index residency may occupy
            concurrently; defaults to the device's full global memory.
            Queries need headroom next to the indexes, so multi-tenant
            sessions should budget below capacity.
        residency_log_limit: Number of recent residency events retained in
            :attr:`residency_log` (its ``total_events`` counter keeps the
            lifetime count regardless).
        plan_cache_size: Compiled plans the session's
            :class:`~repro.plan.cache.PlanCache` retains (repeated query
            shapes on sharded indexes skip planning and its
            ``plan_route`` charge). ``0`` or ``None`` disables the cache.
    """

    def __init__(
        self,
        device: Device | None = None,
        host: HostCpu | None = None,
        config: GenieConfig | None = None,
        memory_budget: int | None = None,
        residency_log_limit: int = 1024,
        plan_cache_size: int | None = 256,
    ):
        self.device = device if device is not None else Device()
        self.host = host if host is not None else HostCpu()
        self.config = config if config is not None else GenieConfig()
        if memory_budget is None:
            memory_budget = self.device.memory.capacity
        if int(memory_budget) <= 0:
            raise ConfigError("memory_budget must be positive")
        self.memory_budget = int(memory_budget)
        # Shard devices: pool position 0 is the session's primary device;
        # sharded indexes extend the pool on demand (same spec/cost model)
        # and shard i of every sharded index lives on pool device i. The
        # memory budget bounds *aggregate* residency across the pool.
        self._device_pool: list[Device] = [self.device]
        self.residency_log = ResidencyLog(limit=residency_log_limit)
        self._handles: dict[str, IndexHandle] = {}
        self._resident: dict[int, _IndexPart] = {}  # insertion order == LRU order
        self._auto_names = 0
        self._closed = False
        self._invalidation_hooks: list[Callable[[str], None]] = []
        # Searches register a sink here to observe their own residency
        # events exactly, independent of the bounded log's retention.
        self._event_sinks: list[list[ResidencyEvent]] = []
        self.plan_cache = PlanCache(capacity=plan_cache_size) if plan_cache_size else None
        self._cost_coefficients: dict | None = None
        self._cost_epoch = 0
        # Serving layers attach a repro.obs.Tracer here; background work
        # (stream compaction) records standalone spans through it.
        self.tracer = None
        # Fault injection (repro.replica): a FaultInjector attached via
        # inject_faults(); the plan executor consults it per shard scan.
        self.faults = None
        # Rolling per-device busy seconds — the least-loaded replica
        # selection signal. Created lazily on the first recorded scan.
        self._device_load = None
        # Searches register a sink here to collect the failover events
        # their own shard scans emitted (mirrors _event_sinks).
        self._failover_sinks: list[list] = []

    # ------------------------------------------------------------------
    # cost model

    @property
    def cost_coefficients(self) -> dict | None:
        """Fitted :class:`~repro.plan.cost.CostModel` coefficients.

        ``None`` until :meth:`calibrate_cost_model` runs (the planner
        then follows its rule-based fallbacks). Assigning a dict — the
        calibration result or a hand-rolled one in tests — bumps the
        session's cost epoch and flushes the plan cache, so previously
        cached pricing decisions can never outlive the model that made
        them.
        """
        return self._cost_coefficients

    @cost_coefficients.setter
    def cost_coefficients(self, coefficients: dict | None) -> None:
        self._cost_coefficients = dict(coefficients) if coefficients is not None else None
        self._cost_epoch += 1
        if self.plan_cache is not None:
            self.plan_cache.clear()

    def calibrate_cost_model(self, seed: int = 0) -> dict:
        """Fit the session's cost model from a seeded probe replay.

        Runs :func:`repro.plan.cost.calibrate_session`: a scratch session
        with this session's device/host specs replays probe workloads and
        least-squares-fits the per-stage coefficients, so this session's
        own timings are untouched. Afterwards ``route``/``plan``
        ``"auto"`` directives on sharded indexes price the candidate
        lattice instead of following rules, and ``explain()`` shows
        ``cost≈`` lines.
        """
        return calibrate_session(self, seed=seed)

    # ------------------------------------------------------------------
    # devices

    def shard_devices(self, n: int) -> list[Device]:
        """The first ``n`` pool devices, creating any that do not exist.

        Device 0 is the session's primary :attr:`device`; new pool devices
        share its spec and cost model. Shard ``i`` of every sharded index
        maps to pool device ``i``, so two 4-shard indexes contend for the
        same four devices — multi-tenancy over one fixed cluster.
        """
        if int(n) < 1:
            raise ConfigError("need at least one shard device")
        while len(self._device_pool) < int(n):
            self._device_pool.append(Device(spec=self.device.spec, costs=self.device.costs))
        return self._device_pool[: int(n)]

    def device_position(self, device: Device) -> int:
        """Pool position of ``device`` (identity match), or ``-1``.

        Fault plans and the load tracker address devices by pool
        position; ``-1`` (a device outside the pool) is always healthy
        and unloaded.
        """
        for position, pooled in enumerate(self._device_pool):
            if pooled is device:
                return position
        return -1

    @property
    def device_load(self):
        """Rolling per-device busy seconds (lazily created tracker)."""
        if self._device_load is None:
            from repro.replica.load import DeviceLoadTracker

            self._device_load = DeviceLoadTracker()
        return self._device_load

    def _note_device_busy(self, device: Device, seconds: float) -> None:
        """Record one scan's simulated seconds against its pool device."""
        self.device_load.record(self.device_position(device), seconds)

    # ------------------------------------------------------------------
    # fault injection

    def inject_faults(self, plan, clock=None, **injector_opts):
        """Attach a deterministic fault schedule to this session.

        ``plan`` is a :class:`~repro.replica.faults.FaultPlan` (or a
        plain iterable of :class:`~repro.replica.faults.FaultEvent`).
        Shard scans consult the resulting
        :class:`~repro.replica.faults.FaultInjector` before dispatch and
        fail over to surviving replicas; the injector's clock is wired
        automatically when a :class:`~repro.serve.server.GenieServer`
        is constructed over this session, or can be passed here.

        Returns the attached injector; ``inject_faults(None)`` detaches.
        """
        if plan is None:
            self.faults = None
            return None
        from repro.replica.faults import FaultInjector, FaultPlan

        if not isinstance(plan, FaultPlan):
            plan = FaultPlan(plan)
        self.faults = FaultInjector(plan, clock=clock, **injector_opts)
        return self.faults

    def _record_failover(self, event) -> None:
        """Deliver one failover event to every registered search sink."""
        logger.debug(
            "failover index=%s shard=%d device=%d attempt=%d permanent=%s",
            event.index, event.shard, event.device, event.attempt, event.permanent,
        )
        for sink in self._failover_sinks:
            sink.append(event)

    # ------------------------------------------------------------------
    # index lifecycle

    def create_index(
        self,
        data,
        model: MatchModel | str,
        name: str | None = None,
        config: GenieConfig | None = None,
        part_size: int | None = None,
        swap_parts: bool = False,
        shards: int | None = None,
        shard_strategy: str = "range",
        shard_seed: int = 0,
        replicas: int | None = None,
        stream_config=None,
        **model_kwargs,
    ) -> "IndexHandle":
        """Encode ``data`` with ``model`` and register a fitted index.

        Args:
            data: Raw data in the model's corpus format (texts, points,
                column dict, keyword sets, ...).
            model: Registry name (``"document"``, ``"ann-e2lsh"``, ...) or
                a :class:`~repro.api.models.MatchModel` instance.
            name: Session-unique index name; auto-generated when omitted.
            config: Engine configuration override (session default
                otherwise). Models may adapt it (e.g. ANN's count bound).
            part_size: Objects per part; partitions the corpus so datasets
                larger than the budget swap through device memory
                (Section III-D). ``None`` builds one part.
            swap_parts: Evict each part right after querying it (the
                paper's multi-loading protocol). ``False`` leaves parts
                resident until the budget forces eviction.
            shards: Partition the corpus across this many simulated
                devices and scan them concurrently (see
                :mod:`repro.cluster`); returns a
                :class:`~repro.cluster.executor.ShardedIndexHandle`.
                Mutually exclusive with ``part_size``/``swap_parts``
                (sharding multiplexes space, multi-loading time).
            shard_strategy: ``"range"`` or ``"hash"`` partitioning.
            shard_seed: Hash-partition seed.
            replicas: Place this many copies of every shard slice on
                distinct pool devices (requires ``shards=``); returns a
                :class:`~repro.replica.handle.ReplicatedIndexHandle`.
                Shard scans pick the least-loaded live replica and fail
                over past faulted devices (see :mod:`repro.replica`).
            stream_config: :class:`~repro.stream.StreamConfig` governing
                online ``insert``/``delete``/``update`` on the handle
                (segment seal size, compaction thresholds); defaults
                apply when omitted and the handle is mutated.
            model_kwargs: Forwarded to the model factory for string specs.

        Returns:
            The fitted :class:`IndexHandle`.
        """
        handle = self.declare_index(
            model, name=name, config=config, part_size=part_size,
            swap_parts=swap_parts, shards=shards, shard_strategy=shard_strategy,
            shard_seed=shard_seed, replicas=replicas,
            stream_config=stream_config, **model_kwargs,
        )
        return handle.fit(data)

    def declare_index(
        self,
        model: MatchModel | str,
        name: str | None = None,
        config: GenieConfig | None = None,
        part_size: int | None = None,
        swap_parts: bool = False,
        shards: int | None = None,
        shard_strategy: str = "range",
        shard_seed: int = 0,
        replicas: int | None = None,
        stream_config=None,
        **model_kwargs,
    ) -> "IndexHandle":
        """Register an *unfitted* index; call :meth:`IndexHandle.fit` later.

        Exists so wrappers can expose a configured engine before data
        arrives; most callers want :meth:`create_index`.
        """
        self._check_open()
        model = resolve_model(model, **model_kwargs)
        if name is None:
            name = f"{getattr(model, 'name', 'index')}-{self._auto_names}"
            self._auto_names += 1
        if name in self._handles:
            raise ConfigError(f"an index named {name!r} already exists in this session")
        resolved_config = config if config is not None else self.config
        if shards is not None:
            if part_size is not None or swap_parts:
                raise ConfigError(
                    "shards= is mutually exclusive with part_size=/swap_parts=; "
                    "sharding partitions across devices, multi-loading through one"
                )
            if replicas is not None:
                from repro.replica.handle import ReplicatedIndexHandle

                handle: IndexHandle = ReplicatedIndexHandle(
                    self, name, model, resolved_config,
                    shards=shards, replicas=replicas,
                    strategy=shard_strategy, seed=shard_seed,
                )
            else:
                from repro.cluster.executor import ShardedIndexHandle

                handle = ShardedIndexHandle(
                    self, name, model, resolved_config,
                    shards=shards, strategy=shard_strategy, seed=shard_seed,
                )
        else:
            if shard_strategy != "range" or shard_seed != 0:
                raise ConfigError(
                    "shard_strategy=/shard_seed= require shards=N"
                )
            if replicas is not None:
                raise ConfigError("replicas= requires shards=N")
            handle = IndexHandle(
                self, name, model, resolved_config,
                part_size=part_size, swap_parts=swap_parts,
            )
        if stream_config is not None:
            handle.stream_config = stream_config
        self._handles[name] = handle
        return handle

    def index(self, name: str) -> "IndexHandle":
        """Look up a registered index by name."""
        try:
            return self._handles[name]
        except KeyError:
            raise ConfigError(
                f"no index named {name!r}; registered: {list(self._handles)}"
            ) from None

    @property
    def indexes(self) -> tuple[str, ...]:
        """Names of registered indexes, in creation order."""
        return tuple(self._handles)

    def evict(self, name: str) -> None:
        """Evict every resident part of the named index."""
        self.index(name).evict()

    def drop(self, name: str) -> None:
        """Evict and unregister the named index."""
        handle = self.index(name)
        handle.evict()
        del self._handles[name]
        self._notify_invalidated(name)

    def evict_all(self) -> None:
        """Evict every resident part (handles stay registered and usable)."""
        for handle in self._handles.values():
            handle.evict()

    def close(self) -> None:
        """Shut the session down: evict everything and refuse further work.

        Idempotent. Handles stay registered for inspection, but subsequent
        :meth:`create_index` / :meth:`IndexHandle.search` /
        :meth:`IndexHandle.fit` calls raise :class:`ConfigError` — serving
        layers rely on this as the definitive end of a session's lifetime.
        Use :meth:`evict_all` to free device memory while staying open.
        """
        if self._closed:
            return
        self.evict_all()
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigError("session is closed")

    def __enter__(self) -> "GenieSession":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # invalidation hooks (serving-layer caches subscribe here)

    def add_invalidation_hook(self, hook: Callable[[str], None]) -> None:
        """Call ``hook(index_name)`` whenever an index's results go stale.

        Fired by :meth:`drop` and by :meth:`IndexHandle.fit` (a refit
        changes what every query would return). The serve layer's
        query-result cache subscribes to drop exactly the stale entries.
        """
        self._invalidation_hooks.append(hook)

    def _notify_invalidated(self, name: str) -> None:
        if self.plan_cache is not None:
            self.plan_cache.invalidate(name)
        for hook in self._invalidation_hooks:
            hook(name)

    # ------------------------------------------------------------------
    # residency

    @property
    def resident_bytes(self) -> int:
        """Device bytes currently occupied by resident index parts."""
        return sum(part.device_bytes for part in self._resident.values())

    def resident_parts(self) -> list[tuple[str, int]]:
        """``(index_name, part_position)`` pairs, LRU-first."""
        return [(p.handle.name, p.position) for p in self._resident.values()]

    def _ensure_resident(self, part: _IndexPart) -> bool:
        """Make ``part`` device-resident; returns ``True`` if it transferred.

        Evicts LRU parts while the budget is exceeded, then attaches. If
        the device itself runs out of memory despite the budget (queries
        need headroom too), eviction continues until the attach fits or no
        resident part remains.
        """
        key = id(part)
        if key in self._resident:
            self._resident.pop(key)
            self._resident[key] = part  # LRU bump
            return False
        if part.device_bytes > self.memory_budget < self.device.memory.capacity:
            # Only an explicitly constrained budget raises the advisory
            # error; at full capacity the attach below reports the
            # hardware-level GpuOutOfMemoryError, as the engine always has.
            advice = (
                "raise shards= or the memory budget"
                if part.global_ids is not None  # shard parts cannot take part_size
                else "partition the index with part_size"
            )
            raise ConfigError(
                f"index part of {part.device_bytes} bytes exceeds the session's "
                f"memory budget of {self.memory_budget} bytes; {advice}"
            )
        while self._resident and self.resident_bytes + part.device_bytes > self.memory_budget:
            self._evict_lru()
        # Bounded retry (REPRO007): every failed attempt evicts one
        # distinct same-device victim, so residents + 1 attempts suffice
        # by pigeonhole — either the attach fits or no victim remains.
        for _attempt in range(len(self._resident) + 1):
            try:
                part.engine.attach_index(part.index, part.corpus)
                break
            except GpuOutOfMemoryError:
                # Evict LRU-first among parts on the device that actually
                # OOMed: with a multi-device shard pool, evicting another
                # device's residents frees nothing here.
                victim = next(
                    (p for p in self._resident.values()
                     if p.engine.device is part.engine.device),
                    None,
                )
                if victim is None:
                    raise
                self._evict_part(victim)
        self._resident[key] = part
        self._record_event(
            ResidencyEvent("attach", part.handle.name, part.position, part.device_bytes)
        )
        return True

    def _record_event(self, event: ResidencyEvent) -> None:
        self.residency_log.append(event)
        for sink in self._event_sinks:
            sink.append(event)

    def _evict_lru(self) -> None:
        part = next(iter(self._resident.values()))
        self._evict_part(part)

    def _evict_part(self, part: _IndexPart) -> None:
        self._resident.pop(id(part), None)
        if part.engine.index_resident:
            part.engine.release()
        logger.debug(
            "evict index=%s part=%d bytes=%d resident_bytes=%d",
            part.handle.name, part.position, part.device_bytes, self.resident_bytes,
        )
        self._record_event(
            ResidencyEvent("evict", part.handle.name, part.position, part.device_bytes)
        )


class IndexHandle:
    """One named index inside a session: the uniform search surface.

    Obtained from :meth:`GenieSession.create_index`; not constructed
    directly. The handle owns the model (encoders), the adapted engine
    configuration, and the index parts the session swaps through device
    memory.
    """

    def __init__(
        self,
        session: GenieSession,
        name: str,
        model: MatchModel,
        config: GenieConfig,
        part_size: int | None = None,
        swap_parts: bool = False,
    ):
        if part_size is not None and part_size < 1:
            raise ConfigError("part_size must be >= 1")
        self.session = session
        self.name = name
        self.model = model
        adapt = getattr(model, "adapt_config", None)
        self.config = adapt(config) if adapt is not None else config
        self.part_size = part_size
        self.swap_parts = bool(swap_parts)
        self.last_result: SearchResult | None = None
        self.fit_epoch = 0
        self._parts: list[_IndexPart] = []
        # Online-mutation state (repro.stream), attached lazily on the
        # first insert/delete/update; ``stream_config`` tunes its seal
        # and compaction thresholds.
        self.stream_config = None
        self._stream = None
        # The primary engine exists before fit so configuration is
        # inspectable (and legacy wrappers can expose `.engine`).
        self._engine0 = GenieEngine(
            device=session.device, host=session.host, config=self.config
        )

    # ------------------------------------------------------------------
    # introspection

    @property
    def engine(self) -> GenieEngine:
        """The first part's engine (the only one for unpartitioned indexes)."""
        return self._engine0

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has produced at least one part."""
        return bool(self._parts)

    @property
    def num_parts(self) -> int:
        """Number of corpus parts."""
        return len(self._parts)

    @property
    def device_bytes(self) -> int:
        """Device bytes the whole index occupies when fully resident."""
        return sum(part.device_bytes for part in self._all_parts())

    def _all_parts(self) -> list[_IndexPart]:
        """Base parts plus any materialized delta-segment parts."""
        parts = list(self._parts)
        if self._stream is not None:
            parts.extend(self._stream.attached_parts())
        return parts

    @property
    def resident_parts(self) -> int:
        """How many of this index's parts are currently device-resident."""
        return sum(1 for part in self._parts if part.resident)

    @property
    def resident(self) -> bool:
        """Whether every part of this index is device-resident."""
        return bool(self._parts) and self.resident_parts == len(self._parts)

    # ------------------------------------------------------------------
    # lifecycle

    def _prepare_fit(self, data) -> Corpus:
        """Shared fit preamble: lifecycle bookkeeping + corpus encoding.

        Bumps the fit epoch, notifies invalidation hooks (serving caches
        subscribe), encodes the raw data, and clears the previous parts.
        Both the serial and the sharded fit build on this.
        """
        self.session._check_open()
        self.fit_epoch += 1
        self.session._notify_invalidated(self.name)
        corpus = self.model.encode_corpus(data)
        if not isinstance(corpus, Corpus):
            corpus = Corpus(corpus)
        self.evict()
        self._stream = None  # a refit abandons any live mutations
        self._parts = []
        return corpus

    def _part_engine(self, position: int, device: Device | None = None) -> GenieEngine:
        """Engine for part ``position``: part 0 reuses the pre-fit engine."""
        if position == 0:
            return self._engine0
        return GenieEngine(
            device=device if device is not None else self.session.device,
            host=self.session.host, config=self.config,
        )

    def fit(self, data) -> "IndexHandle":
        """Encode ``data``, build the part indexes on the host.

        Unpartitioned indexes are attached to the device immediately
        (paying ``index_transfer``, exactly like the legacy wrappers);
        partitioned indexes defer residency to search time, matching the
        multi-loading protocol where only builds happen offline.
        """
        corpus = self._prepare_fit(data)
        if self.part_size is None:
            slices = [(0, corpus)]
        else:
            slices = [
                (start, Corpus(corpus.keyword_arrays[start : start + self.part_size]))
                for start in range(0, len(corpus), self.part_size)
            ]
        for position, (offset, part_corpus) in enumerate(slices):
            index = InvertedIndex.build(part_corpus, load_balance=self.config.load_balance)
            self.session.host.charge_ops(index.build_ops, stage="index_build")
            self._parts.append(
                _IndexPart(self, position, self._part_engine(position), part_corpus, index, offset)
            )
        if self.part_size is None and self._parts and not self.swap_parts:
            self.session._ensure_resident(self._parts[0])
        return self

    def evict(self) -> None:
        """Release every resident part of this index (delta parts too)."""
        for part in self._all_parts():
            if part.resident:
                self.session._evict_part(part)

    def _rebuild_base(self, corpus: Corpus) -> None:
        """Swap in a freshly built base over ``corpus`` (stream compaction).

        Rebuilds every part index on the host first (charging
        ``index_build``), then replaces the old parts under the session's
        residency machinery — atomic to any observer, since no search
        runs mid-swap in the synchronous session. Deliberately *not*
        :meth:`fit`: no epoch bump, no invalidation hooks (results are
        unchanged by construction; the caller handles plan staleness).
        """
        if self.part_size is None:
            slices = [(0, corpus)]
        else:
            slices = [
                (start, Corpus(corpus.keyword_arrays[start : start + self.part_size]))
                for start in range(0, len(corpus), self.part_size)
            ]
        built = []
        for position, (offset, part_corpus) in enumerate(slices):
            index = InvertedIndex.build(part_corpus, load_balance=self.config.load_balance)
            self.session.host.charge_ops(index.build_ops, stage="index_build")
            built.append((position, offset, part_corpus, index))
        self.evict()
        self._parts = [
            _IndexPart(self, position, self._part_engine(position), part_corpus, index, offset)
            for position, offset, part_corpus, index in built
        ]
        if self.part_size is None and self._parts and not self.swap_parts:
            self.session._ensure_resident(self._parts[0])

    # ------------------------------------------------------------------
    # online mutations (see repro.stream)

    def _stream_state(self):
        self.session._check_open()
        if not self._parts:
            raise QueryError("index must be fitted before mutating")
        if self._stream is None:
            from repro.stream import StreamState

            self._stream = StreamState(self, self.stream_config)
        return self._stream

    def insert(self, objects) -> np.ndarray:
        """Add objects online without refitting; returns their global ids.

        The objects land in mutable delta segments composed with the base
        index at search time — results stay bit-identical to a
        from-scratch refit (see :mod:`repro.stream`). Only models whose
        encoders are corpus-stateless support this
        (``model.encode_increment``); stateful models raise
        :class:`~repro.errors.ConfigError` and must refit.
        """
        return self._stream_state().insert(objects)

    def delete(self, ids) -> None:
        """Remove live objects by global id, online (all-or-nothing)."""
        self._stream_state().delete(ids)

    def update(self, obj_id: int, obj) -> None:
        """Replace one live object's contents, keeping its global id."""
        self._stream_state().update(obj_id, obj)

    def compact(self) -> bool:
        """Fold live deltas and tombstones into a fresh CSR base.

        Returns ``False`` when there is nothing to compact. Automatic
        threshold-driven compaction runs after every mutation unless
        ``stream_config`` disables it; this is the manual trigger.
        """
        self.session._check_open()
        if self._stream is None:
            return False
        return self._stream.compact()

    @property
    def manifest(self):
        """The stream's :class:`~repro.stream.SegmentManifest` (``None``
        before the first mutation)."""
        return self._stream.manifest if self._stream is not None else None

    @property
    def mutation_epoch(self) -> int:
        """Mutations applied since the last fit (0 before any)."""
        return self._stream.manifest.mutation_epoch if self._stream is not None else 0

    def _plan_epoch(self):
        """Plan-cache epoch: the fit epoch, plus the compaction epoch
        once a stream exists (a compaction rewrites the shard keyword
        tables the planner routes against)."""
        if self._stream is None:
            return self.fit_epoch
        return (self.fit_epoch, self._stream.manifest.base_epoch)

    # ------------------------------------------------------------------
    # search

    def search(
        self,
        raw_queries,
        k: int | None = None,
        batch_size: int | None = None,
        route: str | None = None,
        plan: str | None = None,
        trace: bool = False,
        **search_opts,
    ) -> SearchResult:
        """Encode, compile a plan, retrieve (over all parts), merge, verify.

        Every search lowers through the rule-based planner
        (:mod:`repro.plan`): skip-empty queries are elided from the scan,
        range-sharded indexes are shard-pruned, and the merge strategy is
        explicit. :meth:`explain` shows the plan without executing it.

        Args:
            raw_queries: Queries in the model's raw format (texts, points,
                range dicts, keyword sets, ...).
            k: Results per query (engine config default when omitted).
            batch_size: Split the workload into device-sized sub-batches
                (Fig. 11's protocol); one batch when ``None``.
            route: Routing escape hatch for sharded indexes — ``"auto"``
                (default: prune ``"range"`` partitions), ``"pruned"``
                (force pruning, any strategy), ``"broadcast"`` (scan
                every shard).
            plan: Merge-strategy escape hatch for sharded indexes —
                ``"auto"``/``"one-round"`` (each shard returns its full
                top-k) or ``"two-round"`` (the TPUT merge: fetch
                ``ceil(2k/N)`` per shard, top up only where necessary).
            trace: Record an execution span tree on ``result.trace``
                (see :mod:`repro.obs.trace`); off by default — untraced
                searches allocate no spans.
            search_opts: Model-specific options (e.g. the sequence model's
                ``n_candidates`` shortlist width).

        Returns:
            A :class:`SearchResult` aligned with ``raw_queries``; its
            ``plan`` holds the executed plan tree. Results are
            bit-identical under every ``route``/``plan`` choice.

        Raises:
            QueryError: Unfitted index, malformed queries, bad ``k``, or
                a shard-only strategy forced on a serial index.
        """
        self.session._check_open()
        if not self._parts:
            raise QueryError("index must be fitted before searching")
        raw_queries = list(raw_queries)
        if not raw_queries:
            raise QueryError("empty query batch")
        queries = self.encode_queries(raw_queries)
        return self.search_encoded(
            raw_queries, queries, k=k, batch_size=batch_size,
            route=route, plan=plan, trace=trace, **search_opts,
        )

    def explain(
        self,
        raw_queries,
        k: int | None = None,
        route: str | None = None,
        plan: str | None = None,
        **search_opts,
    ) -> PlanNode:
        """Compile the plan :meth:`search` would execute, without running it.

        Same arguments and validation as :meth:`search` (the queries are
        encoded — routing decisions need their keywords), but no device
        work happens and no state changes. The returned
        :class:`~repro.plan.nodes.PlanNode` renders to a stable text tree
        via ``render()`` / ``str()``.
        """
        # The open/fitted checks must precede the encode (an unfitted
        # model has no vocabulary/discretizers to encode against);
        # everything else is _compile's, shared with search_encoded.
        self.session._check_open()
        if not self._parts:
            raise QueryError("index must be fitted before searching")
        queries = self.encode_queries(list(raw_queries))
        _, compiled, _ = self._compile(queries, k, route, plan, search_opts)
        return compiled.root

    def _compile(self, queries, k, route, plan, search_opts):
        """Shared search preamble: validation + plan compilation.

        Both :meth:`search_encoded` and :meth:`explain` funnel through
        here, so an explained plan always reflects exactly what a search
        with the same arguments would validate and execute. Sharded
        compiles consult the session's :class:`~repro.plan.cache.PlanCache`
        first: a hit skips planning entirely (and its ``plan_route``
        charge — the decisions were paid at first compile).

        Returns:
            ``(k, compiled, cache_hit)`` — whether the plan came from the
            cache (trace spans and cache-audit callers read the flag).
        """
        self.session._check_open()
        if not self._parts:
            raise QueryError("index must be fitted before searching")
        if not queries:
            raise QueryError("empty query batch")
        k = int(k if k is not None else self.config.k)
        if k < 1:
            raise QueryError("k must be >= 1")
        retrieval_k = resolve_shortlist_k(self.model, k, search_opts)
        cache = self.session.plan_cache
        shards = self._plan_shards()
        if cache is None or shards is None:
            return k, compile_search(
                self, queries, k=k, retrieval_k=retrieval_k, route=route, plan=plan
            ), False
        norm_route, norm_plan = validate_plan_args(route, plan, sharded=True)
        costed = (
            bool(self.session.cost_coefficients)
            and shards.shard_postings is not None
        )
        needs_buckets = eligibility_needed(norm_route, shards.strategy, costed)
        dirty = self._stream is not None and self._stream.dirty
        shape = (
            self.session._cost_epoch, shards.n_shards, shards.strategy,
            k, retrieval_k, tuple(sorted(search_opts.items())),
            norm_route, norm_plan, dirty,
        )
        plan_epoch = self._plan_epoch()
        try:
            hit = cache.fetch(
                index=self.name, fit_epoch=plan_epoch, shape=shape,
                needs_buckets=needs_buckets, queries=queries,
            )
        except TypeError:  # unhashable search-option values: bypass the cache
            return k, compile_search(
                self, queries, k=k, retrieval_k=retrieval_k, route=route, plan=plan
            ), False
        if hit is not None:
            # Reuse the cached decision, but re-extract this batch's cost
            # features so the reported predicted_cost describes *these*
            # queries, not whichever batch compiled the plan first.
            return k, reprice_plan(self, hit, queries), True
        compiled = compile_search(
            self, queries, k=k, retrieval_k=retrieval_k, route=route, plan=plan
        )
        cache.store(
            index=self.name, fit_epoch=plan_epoch, shape=shape,
            needs_buckets=needs_buckets, queries=queries, compiled=compiled,
        )
        return k, compiled, False

    def encode_queries(self, raw_queries) -> list[Query]:
        """Encode and validate raw queries without searching.

        The encode-once hook for serving layers: a server encodes each
        request at admission (to build exact-match cache keys and fail fast
        on malformed queries) and later passes the encoded queries to
        :meth:`search_encoded` so the coalesced batch pays no second encode.
        """
        raw_queries = list(raw_queries)
        queries = self.model.encode_queries(raw_queries)
        validate = getattr(self.model, "validate_queries", None)
        if validate is not None:
            validate(raw_queries, queries)
        return queries

    def search_encoded(
        self,
        raw_queries,
        queries: list[Query],
        k: int | None = None,
        batch_size: int | None = None,
        route: str | None = None,
        plan: str | None = None,
        trace: bool = False,
        **search_opts,
    ) -> SearchResult:
        """Retrieve/merge/verify pre-encoded queries (see :meth:`search`).

        ``raw_queries`` must align with ``queries`` (models' ``finalize``
        hooks verify against the raw form, e.g. sequence edit distance).

        This is the single execution surface: the batch is compiled by
        :func:`repro.plan.planner.compile_search` and run by
        :func:`repro.plan.executor.execute_plan`, for serial and sharded
        indexes alike (the serve layer's dispatch lands here too).
        """
        k, compiled, plan_cache_hit = self._compile(queries, k, route, plan, search_opts)
        if len(raw_queries) != len(queries):
            raise QueryError("raw_queries and queries must align")
        active_queries = [queries[i] for i in compiled.active]

        span: Span | None = None
        if trace:
            span = Span("search", index=self.name, k=k, queries=len(queries))
            # Plan routing is pre-dispatch host work, off the batch's
            # critical path (it overlaps device execution under pipelined
            # dispatch) — the span sits at t=0 alongside the first scan.
            plan_attrs = {"cache_hit": plan_cache_hit, "merge": compiled.merge}
            if compiled.predicted_cost is not None:
                plan_attrs["predicted_cost"] = compiled.predicted_cost
            host = self.session.host
            span.child(
                "plan",
                duration=compiled.routing_ops / (host.spec.ops_per_second * host.cores),
                **plan_attrs,
            )

        # A private sink observes this search's residency events exactly;
        # the session-level log is bounded and may drop older entries. A
        # second sink collects the failover events the scans emit.
        events: list[ResidencyEvent] = []
        failovers: list = []
        self.session._event_sinks.append(events)
        self.session._failover_sinks.append(failovers)
        profile = StageTimings()
        shard_profiles: list[StageTimings] | None = None
        try:
            if active_queries:
                merged, shard_profiles = execute_plan(
                    compiled, self, active_queries, batch_size, profile, trace=span
                )
            else:
                merged = []
        finally:
            self.session._event_sinks.remove(events)
            self.session._failover_sinks.remove(failovers)

        if span is not None:
            for ev in failovers:
                # Failovers happen before their shard's surviving scan;
                # the span records which device was skipped and what the
                # detection retry cost on the critical path.
                span.child(
                    "failover",
                    duration=ev.penalty,
                    shard=ev.shard,
                    device=ev.device,
                    attempt=ev.attempt,
                    permanent=ev.permanent,
                )
        results = self._scatter(merged, compiled.active, len(queries))

        payload = None
        finalize = getattr(self.model, "finalize", None)
        if finalize is not None:
            host_before = self.session.host.timings.copy()
            payload = finalize(
                raw_queries, queries, results, k=k, host=self.session.host, **search_opts
            )
            finalize_profile = timings_delta(host_before, self.session.host.timings)
            profile.merge(finalize_profile)
            if span is not None:
                span.child(
                    "finalize",
                    start=max((child.end for child in span.children), default=0.0),
                    duration=finalize_profile.query_total(),
                )

        if span is not None:
            span.duration = max((child.end for child in span.children), default=0.0)

        if compiled.shards is not None and shard_profiles is None:
            # Every query was skipped, so no shard ran — but a sharded
            # result keeps the per-shard contract: one (empty) profile
            # per shard, never ().
            shard_profiles = [StageTimings() for _ in range(compiled.shards.n_shards)]
        result = SearchResult(
            results=results,
            profile=profile,
            payload=payload,
            evicted=tuple(ev for ev in events if ev.kind == "evict"),
            swapped_in=sum(1 for ev in events if ev.kind == "attach"),
            shard_profiles=tuple(shard_profiles) if shard_profiles is not None else None,
            plan=compiled.root,
            routing=compiled.routing,
            predicted_cost=compiled.predicted_cost,
            trace=span,
            failovers=tuple(failovers),
        )
        self.last_result = result
        return result

    def _plan_shards(self) -> ShardContext | None:
        """Shard context for the planner; serial handles have none."""
        return None

    def _scan_candidates(self, part: "_IndexPart") -> tuple:
        """Replica candidates for scanning ``part``'s slice, in try order.

        The plan executor dispatches each shard scan to the first live
        candidate. Plain handles have exactly one copy of every slice;
        :class:`~repro.replica.handle.ReplicatedIndexHandle` overrides
        this to return the whole replica group, least-loaded first.
        """
        return (part,)

    @staticmethod
    def _query_engine(
        engine: GenieEngine, queries: list[Query], k: int, batch_size: int | None
    ) -> list[TopKResult]:
        if batch_size is None:
            return engine.query(queries, k=k)
        return engine.query_batched(queries, k=k, batch_size=batch_size)

    @staticmethod
    def _scatter(merged: list[TopKResult], active: list[int], total: int) -> list[TopKResult]:
        if len(active) == total:
            return merged
        results = [
            TopKResult(ids=np.empty(0, dtype=ID_DTYPE), counts=np.empty(0, dtype=ID_DTYPE))
            for _ in range(total)
        ]
        for i, result in zip(active, merged):
            results[i] = result
        return results
