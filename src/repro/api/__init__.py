"""Unified GENIE session API: one search surface for every modality.

This package is the public entry point of the reproduction. It replaces
the four per-modality wrappers (and the separate multi-loading class) with
three concepts:

* :class:`~repro.api.models.MatchModel` — how raw data becomes keywords
  (one adapter per modality, extensible via
  :func:`~repro.api.models.register_model`),
* :class:`~repro.api.session.GenieSession` — the shared device/host with a
  device-memory budget and multi-index residency (attach / LRU-evict),
* :class:`~repro.api.session.IndexHandle` — one named index with the
  uniform ``search(raw_queries, k=..., batch_size=...)`` surface returning
  a :class:`~repro.api.session.SearchResult`.

Paper-section map:

========  ==================================================================
Section   Entry point
========  ==================================================================
II-A      The match-count model: ``MatchModel.encode_corpus`` /
          ``encode_queries`` produce the keyword sets GENIE counts over;
          ``model="raw"`` exposes it directly.
III-D     Multiple loading: ``create_index(..., part_size=...)`` partitions
          a corpus; the session swaps parts through device memory and
          merges per-part top-k exactly (``swap_parts=True`` reproduces the
          paper's protocol, the default keeps parts resident under the
          session's ``memory_budget`` with LRU eviction).
IV        Tau-ANN on LSH signatures: ``model="ann-e2lsh"`` / ``"ann-rbh"``
          / ``"ann-minhash"`` / ``"ann-simhash"`` (payload carries the
          ``c/m`` similarity estimates of Eqn. 7).
V-A       Sequence search: ``model="sequence"`` (shortlist + Algorithm-2
          edit-distance verification, Theorem-5.2 certificates in the
          payload); ``model="ngram"`` for raw common-gram counting.
V-B       Short documents: ``model="document"``.
V-C       Relational tables: ``model="relational"`` with an
          ``AttributeSpec`` schema.
Table IV  Device-memory accounting: the session's ``memory_budget`` bounds
          index residency; per-batch query state is still charged by the
          engine.
========  ==================================================================

Quickstart::

    from repro.api import GenieSession

    session = GenieSession(memory_budget=256 << 20)
    tweets = session.create_index(texts, model="document", name="tweets")
    result = tweets.search(["gpu similarity search"], k=10)
    result[0].as_pairs()        # [(doc_id, shared words), ...]
    result.profile.query_total()  # simulated seconds, per stage inside

Every search compiles to an explicit plan (:mod:`repro.plan`):
``handle.explain(raw_queries, k=...)`` renders it without executing, and
``search(..., route=..., plan=...)`` forces a routing/merge strategy with
bit-identical results.

Deprecation path: the legacy wrappers — ``repro.sa.RelationalIndex``,
``repro.sa.DocumentIndex``, ``repro.sa.SequenceIndex``,
``repro.lsh.TauAnnIndex`` and ``repro.core.MultiLoadGenie`` — remain as
thin shims that each own a single-index session and delegate to this
layer with unchanged results. New code should create a
:class:`GenieSession` directly.
"""

from repro.api.models import (
    MODEL_REGISTRY,
    AnnModel,
    BaseMatchModel,
    DocumentModel,
    MatchModel,
    NgramModel,
    RawModel,
    RelationalModel,
    SequenceModel,
    available_models,
    register_model,
    resolve_model,
)
from repro.api.session import (
    GenieSession,
    IndexHandle,
    ResidencyEvent,
    ResidencyLog,
    SearchResult,
)

__all__ = [
    "GenieSession",
    "IndexHandle",
    "SearchResult",
    "ResidencyEvent",
    "ResidencyLog",
    "MatchModel",
    "BaseMatchModel",
    "RawModel",
    "RelationalModel",
    "DocumentModel",
    "SequenceModel",
    "NgramModel",
    "AnnModel",
    "register_model",
    "resolve_model",
    "available_models",
    "MODEL_REGISTRY",
]
