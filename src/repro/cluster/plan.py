"""Shard planning: partition a corpus across simulated devices.

The paper's multi-loading scheme (Section III-D) time-multiplexes one GPU
over index parts; sharding is its space-multiplexed dual. A
:class:`ShardPlan` splits a corpus into N disjoint slices — one per
simulated device — with each slice keeping a *local* id space (0..m-1,
what its inverted index and engine see) plus the map back to global
object ids. Because the slices partition the objects, an object's match
count is computed entirely within its shard and a candidate merge over
the shards' top-k is exact (the same argument Fig. 6 makes for
multi-loading parts).

Two partition strategies:

* ``"range"`` — contiguous object ranges of near-equal size. Cheapest
  remap (an offset), but inherits any ordering skew in the corpus: if
  heavy-postings objects cluster (Fig. 12's skewed Adult columns, sorted
  data), the shard holding them does most of the scan work while the
  rest idle.
* ``"hash"`` — objects are assigned by a seeded integer hash of their
  global id. Destroys ordering skew, so per-shard postings work evens
  out at the cost of a gather-style remap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.types import ID_DTYPE, Corpus
from repro.errors import ConfigError

#: Partition strategies understood by :meth:`ShardPlan.build`.
PARTITION_STRATEGIES = ("range", "hash")


def check_partition_args(strategy: str, seed: int) -> None:
    """Validate a partition strategy/seed pair.

    Shared by :meth:`ShardPlan.build` and the session handle's
    constructor, so misconfiguration fails at ``create_index`` time
    (before the index name is registered), not at fit.

    Raises:
        ConfigError: Unknown strategy, or a seed outside ``[0, 2**64)``
            (``np.uint64`` would raise a raw OverflowError).
    """
    if strategy not in PARTITION_STRATEGIES:
        raise ConfigError(
            f"unknown shard strategy {strategy!r}; expected one of {PARTITION_STRATEGIES}"
        )
    if not 0 <= int(seed) < 2**64:
        raise ConfigError("shard seed must fit in 64 bits (0 <= seed < 2**64)")

#: 64-bit Fibonacci-hashing multiplier (2^64 / golden ratio, odd).
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def _hash_ids(ids: np.ndarray, seed: int) -> np.ndarray:
    """A seeded 64-bit mix of object ids (deterministic across platforms)."""
    mixed = (ids.astype(np.uint64) + np.uint64(seed)) * _HASH_MULTIPLIER
    mixed ^= mixed >> np.uint64(33)
    mixed *= _HASH_MULTIPLIER
    mixed ^= mixed >> np.uint64(29)
    return mixed


@dataclass
class ShardSlice:
    """One shard of a plan: a corpus slice in its own local id space.

    Attributes:
        position: Shard position within the plan (device index).
        corpus: The shard's objects, locally numbered ``0..len-1``.
        global_ids: Map from local object id to global object id
            (``global_ids[local]``); sorted ascending, so local id order
            preserves global id order and per-shard tie-breaks agree with
            the unsharded index.
    """

    position: int
    corpus: Corpus
    global_ids: np.ndarray
    _keywords: np.ndarray | None = field(default=None, repr=False)
    _posting_counts: np.ndarray | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.corpus)

    def keywords(self) -> np.ndarray:
        """Sorted distinct keywords present in this shard's slice.

        These are the shard's *partition bounds* for query routing: a
        query with no keyword in this set cannot produce a positive match
        count here, so the planner's shard-pruning rule may skip the
        shard without changing results (see
        :func:`repro.plan.planner.route_queries`). Cached after the first
        call; the fitted shard index exposes the same array as its
        ``keyword_array``.
        """
        if self._keywords is None:
            arrays = [arr for arr in self.corpus.keyword_arrays if arr.size]
            self._keywords = (
                np.unique(np.concatenate(arrays))
                if arrays
                else np.empty(0, dtype=ID_DTYPE)
            )
        return self._keywords

    def posting_counts(self) -> np.ndarray:
        """Posting-list length per :meth:`keywords` entry, aligned.

        The cost model's per-shard work features: a query's postings
        touched in this shard is the sum of counts over its keywords
        present here. Seeded from the fitted shard index (exact — the
        index builds one posting per raw (object, keyword) pair, no
        per-object dedup) and computed the same way when unfitted.
        """
        if self._posting_counts is None:
            keywords = self.keywords()
            arrays = [arr for arr in self.corpus.keyword_arrays if arr.size]
            if not arrays or keywords.size == 0:
                self._posting_counts = np.zeros(keywords.size, dtype=np.float64)
            else:
                flat = np.concatenate(arrays)
                self._posting_counts = np.bincount(
                    np.searchsorted(keywords, flat), minlength=keywords.size
                ).astype(np.float64)
        return self._posting_counts


class ShardPlan:
    """A disjoint partition of a corpus over ``n_shards`` shards.

    Build with :meth:`build` (or the strategy-specific constructors); do
    not construct directly unless the slices are known to partition the
    global id space.

    Attributes:
        strategy: ``"range"`` or ``"hash"``.
        n_objects: Global corpus size the plan covers.
        shards: One :class:`ShardSlice` per shard, in position order.
    """

    def __init__(self, shards: list[ShardSlice], strategy: str, n_objects: int):
        self.shards = list(shards)
        self.strategy = strategy
        self.n_objects = int(n_objects)

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def build(
        cls,
        corpus: Corpus,
        n_shards: int,
        strategy: str = "range",
        seed: int = 0,
    ) -> "ShardPlan":
        """Partition ``corpus`` into ``n_shards`` slices.

        Args:
            corpus: The global corpus (anything accepted by
                :class:`~repro.core.types.Corpus` is adopted).
            n_shards: Number of shards (>= 1). Shards may end up empty
                when the corpus is smaller than the shard count.
            strategy: ``"range"`` or ``"hash"``.
            seed: Hash seed (``"hash"`` strategy only).

        Raises:
            ConfigError: Bad shard count or unknown strategy.
        """
        if int(n_shards) < 1:
            raise ConfigError("n_shards must be >= 1")
        check_partition_args(strategy, seed)
        if not isinstance(corpus, Corpus):
            corpus = Corpus(corpus)
        n_shards = int(n_shards)
        n = len(corpus)
        if strategy == "range":
            bounds = np.linspace(0, n, n_shards + 1).astype(np.int64)
            assignments = [np.arange(bounds[s], bounds[s + 1], dtype=ID_DTYPE) for s in range(n_shards)]
        else:
            shard_of = _hash_ids(np.arange(n, dtype=ID_DTYPE), seed) % np.uint64(n_shards)
            assignments = [
                np.nonzero(shard_of == np.uint64(s))[0].astype(ID_DTYPE) for s in range(n_shards)
            ]
        shards = [
            ShardSlice(
                position=s,
                corpus=Corpus([corpus.keyword_arrays[int(g)] for g in global_ids]),
                global_ids=global_ids,
            )
            for s, global_ids in enumerate(assignments)
        ]
        return cls(shards, strategy, n)

    @classmethod
    def build_ranges(cls, corpus: Corpus, bounds) -> "ShardPlan":
        """Partition ``corpus`` into contiguous ranges at explicit bounds.

        The rebalancer's constructor: where :meth:`build` cuts equal-size
        ranges, this cuts at caller-chosen positions (equal *load* rather
        than equal size). The result keeps ``strategy == "range"``, so
        keyword-bounds query routing — and therefore shard pruning —
        keeps working on the rebalanced plan.

        Args:
            corpus: The global corpus.
            bounds: ``n_shards + 1`` non-decreasing ints with
                ``bounds[0] == 0`` and ``bounds[-1] == len(corpus)``;
                shard ``s`` holds global ids ``[bounds[s], bounds[s+1])``.

        Raises:
            ConfigError: Bounds that do not partition the corpus.
        """
        if not isinstance(corpus, Corpus):
            corpus = Corpus(corpus)
        bounds = [int(b) for b in bounds]
        n = len(corpus)
        if len(bounds) < 2 or bounds[0] != 0 or bounds[-1] != n:
            raise ConfigError(
                f"range bounds must run 0..{n}, got {bounds[:1]}..{bounds[-1:]}"
            )
        if any(b > c for b, c in zip(bounds, bounds[1:])):
            raise ConfigError(f"range bounds must be non-decreasing: {bounds}")
        shards = [
            ShardSlice(
                position=s,
                corpus=Corpus(corpus.keyword_arrays[bounds[s] : bounds[s + 1]]),
                global_ids=np.arange(bounds[s], bounds[s + 1], dtype=ID_DTYPE),
            )
            for s in range(len(bounds) - 1)
        ]
        return cls(shards, "range", n)

    # ------------------------------------------------------------------
    # introspection

    def range_bounds(self) -> list[int] | None:
        """The cut points of a contiguous range partition, else ``None``.

        A valid result ``b`` satisfies ``shard s == [b[s], b[s+1])``;
        hash plans (and any non-contiguous layout) return ``None``.
        """
        bounds = [0]
        for shard in self.shards:
            ids = shard.global_ids
            if ids.size and (
                int(ids[0]) != bounds[-1]
                or not np.array_equal(
                    ids, np.arange(ids[0], ids[0] + ids.size, dtype=ID_DTYPE)
                )
            ):
                return None
            bounds.append(bounds[-1] + int(ids.size))
        if bounds[-1] != self.n_objects:
            return None
        return bounds

    def reassemble(self) -> Corpus:
        """The global corpus, rebuilt from the shard slices.

        Exact inverse of construction: object ``g`` comes from whichever
        shard holds global id ``g``. Lets the rebalancer recut a fitted
        plan without the caller keeping the original corpus alive.
        """
        arrays = [None] * self.n_objects
        for shard in self.shards:
            for local, g in enumerate(shard.global_ids):
                arrays[int(g)] = shard.corpus.keyword_arrays[local]
        if any(arr is None for arr in arrays):
            raise ConfigError("cannot reassemble: plan does not cover the corpus")
        return Corpus(arrays)

    @property
    def n_shards(self) -> int:
        """Number of shards (including any empty ones)."""
        return len(self.shards)

    def sizes(self) -> list[int]:
        """Objects per shard, in position order."""
        return [len(shard) for shard in self.shards]

    def entries(self) -> list[int]:
        """Index entries (object, keyword pairs) per shard — scan work."""
        return [shard.corpus.total_entries for shard in self.shards]

    def size_imbalance(self) -> float:
        """``max / mean`` of per-shard entry counts (1.0 = balanced).

        Returns 0.0 for an empty corpus.
        """
        entries = self.entries()
        mean = sum(entries) / max(1, len(entries))
        return max(entries) / mean if mean > 0 else 0.0

    def validate(self) -> None:
        """Check the shards partition the global id space exactly once.

        Raises:
            ConfigError: Ids missing, duplicated, or out of range.
        """
        covered = (
            np.concatenate([s.global_ids for s in self.shards])
            if self.shards
            else np.empty(0, dtype=ID_DTYPE)
        )
        expected = np.arange(self.n_objects, dtype=ID_DTYPE)
        if not np.array_equal(np.sort(covered), expected):
            raise ConfigError("shard plan does not partition the corpus exactly once")
        for shard in self.shards:
            if len(shard.corpus) != shard.global_ids.size:
                raise ConfigError(f"shard {shard.position} corpus/global_ids misaligned")
