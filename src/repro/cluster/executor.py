"""Sharded execution: concurrent per-shard scans, exact global top-k.

The executor is the space-multiplexed dual of Section III-D's
multi-loading: where multi-loading swaps index parts through *one* device
in turn (time on the critical path adds up part by part), sharding gives
every part its *own* simulated device and runs the batch against all
shards concurrently. One query batch costs:

* **scatter** — the encoded batch is broadcast to every shard device
  (each shard engine pays the full ``query_transfer`` on its own PCIe
  link, in parallel),
* **scan** — PR 1's vectorized batch pipeline
  (:func:`repro.core.batch_scan.plan_batch_scan` via
  :meth:`~repro.core.engine.GenieEngine.query`) runs per shard on the
  shard's own device timeline over its slice of the postings,
* **gather** — each shard transfers its per-query top-k candidates back
  (the ``select``-stage result transfer, again per link in parallel),
* **merge** — the host merges the shards' candidates per query with the
  deterministic count-desc / id-asc lexsort already used by the
  multi-loading merge. Shards partition the objects, so every count is
  complete within its shard and the merged top-k is **bit-identical** to
  a single unsharded index (ids, counts, and tie order).

Simulated latency models the concurrency: a batch's profile is the
*slowest shard's* stage profile (the critical path) plus the host-side
``result_merge`` — not the sum over shards. Per-shard profiles are kept
so callers (the serve layer's imbalance counters, the shard-scaling
benchmark) can see how evenly the work spread.

Two entry points:

* :class:`ShardedExecutor` — core-level: owns its devices and engines,
  ``fit``/``query`` like a :class:`~repro.core.engine.GenieEngine`.
* :class:`ShardedIndexHandle` — session-level: the
  :meth:`~repro.api.session.GenieSession.create_index` ``shards=N``
  surface, with every shard participating in the session's residency
  accounting as its own attach/evict unit.
"""

from __future__ import annotations

import numpy as np

from repro.api.session import IndexHandle, _IndexPart
from repro.cluster.plan import ShardPlan, check_partition_args
from repro.replica.rebalance import balanced_range_bounds
from repro.plan.cost import postings_per_keyword
from repro.plan.planner import ShardContext
from repro.core.engine import GenieConfig, GenieEngine
from repro.core.inverted_index import InvertedIndex
from repro.core.types import ID_DTYPE, Corpus, Query, TopKResult
from repro.errors import ConfigError, QueryError
from repro.gpu.device import Device
from repro.gpu.host import HostCpu
from repro.gpu.stats import StageTimings


def merge_shard_results(
    per_shard: list[list[TopKResult]],
    global_id_maps: list[np.ndarray],
    n_queries: int,
    k: int,
    host: HostCpu,
    n_objects: int | None = None,
) -> tuple[list[TopKResult], float]:
    """Merge per-shard top-k candidates into the exact global top-k.

    Args:
        per_shard: One result list (aligned with the query batch) per
            shard that was scanned.
        global_id_maps: Per shard, the local → global object id map its
            results must be remapped through (aligned with ``per_shard``).
        n_queries: Batch size (needed when every shard is empty).
        k: Results to keep per query.
        host: Host CPU charged for the merge (``result_merge`` stage).
        n_objects: Global corpus size; caps the threshold rank at
            ``min(k, n_objects)`` exactly as the unsharded selection does
            when ``k`` exceeds the corpus. ``k`` when omitted.

    Returns:
        ``(results, merge_seconds)``: the merged results (count-desc /
        global-id-asc order, thresholds re-pinned to the global k-th
        count per Theorem 3.1) and the host seconds the merge cost.

    This deliberately parallels the multi-loading merge in the plan
    executor's serial path (:mod:`repro.plan.executor`) rather than
    sharing code with it: the legacy merge keeps its seed-pinned
    semantics (no threshold on merged results, a full re-sort cost
    model), while shards remap through gather maps, re-pin thresholds,
    and charge a heap merge. A tie-order change must be applied to both.
    """
    kk = min(k, int(n_objects)) if n_objects is not None else k
    results: list[TopKResult] = []
    merge_ops = 0.0
    for qi in range(n_queries):
        ids_parts = []
        count_parts = []
        for shard_results, global_ids in zip(per_shard, global_id_maps):
            r = shard_results[qi]
            if r.ids.size:
                ids_parts.append(global_ids[r.ids])
                count_parts.append(r.counts)
        ids = np.concatenate(ids_parts) if ids_parts else np.empty(0, dtype=ID_DTYPE)
        counts = np.concatenate(count_parts) if count_parts else np.empty(0, dtype=ID_DTYPE)
        order = np.lexsort((ids, -counts))[:k]
        top_counts = counts[order]
        # Any object in the global top-k beats its shard-mates under the
        # same order, so it survived its shard's selection: the kk-th
        # merged count is the global kk-th count (Theorem 3.1's AT - 1).
        threshold = int(top_counts[kk - 1]) if 0 < kk <= top_counts.size else 0
        results.append(TopKResult(ids=ids[order], counts=top_counts, threshold=threshold))
        # Charged as an S-way heap merge of the shards' already-sorted
        # candidate lists: O(C log S), not a full O(C log C) re-sort (the
        # lexsort below is an implementation convenience, not the model).
        merge_ops += ids.size * max(1.0, np.log2(max(len(per_shard), 2)))
    merge_seconds = host.charge_ops(merge_ops, stage="result_merge")
    return results, merge_seconds


def critical_path_profile(shard_profiles: list[StageTimings]) -> StageTimings:
    """The slowest shard's profile — the latency of a concurrent scan.

    Shards run on independent device timelines, so a batch completes when
    the slowest shard does; the critical path is one shard's whole stage
    profile, not a stage-wise sum or max over shards. Ties break to the
    earliest shard position (deterministic).
    """
    slowest: StageTimings | None = None
    for profile in shard_profiles:
        if slowest is None or profile.query_total() > slowest.query_total():
            slowest = profile
    return slowest.copy() if slowest is not None else StageTimings()


class ShardedExecutor:
    """Core-level sharded GENIE: N devices, one exact search surface.

    Mirrors :class:`~repro.core.engine.GenieEngine`'s ``fit`` / ``query``
    shape so core workloads and benchmarks can shard without a session.

    Args:
        n_shards: Number of shards (== devices). Derived from ``devices``
            when those are given.
        devices: The shard devices; ``n_shards`` fresh default devices
            when omitted.
        host: Shared simulated host (builds, merges); fresh when omitted.
        config: Engine configuration applied to every shard engine.
        strategy: Partition strategy (see :class:`ShardPlan`).
        seed: Hash-partition seed.
    """

    def __init__(
        self,
        n_shards: int | None = None,
        devices: list[Device] | None = None,
        host: HostCpu | None = None,
        config: GenieConfig | None = None,
        strategy: str = "range",
        seed: int = 0,
    ):
        if devices is not None:
            if n_shards is not None and int(n_shards) != len(devices):
                raise ConfigError("n_shards must match the number of devices")
            n_shards = len(devices)
        if n_shards is None or int(n_shards) < 1:
            raise ConfigError("need n_shards >= 1 (or an explicit device list)")
        self.devices = devices if devices is not None else [Device() for _ in range(int(n_shards))]
        self.host = host if host is not None else HostCpu()
        self.config = config if config is not None else GenieConfig()
        self.strategy = strategy
        self.seed = int(seed)
        self.engines = [
            GenieEngine(device=device, host=self.host, config=self.config)
            for device in self.devices
        ]
        self.plan: ShardPlan | None = None
        self.last_profile: StageTimings | None = None
        self.last_shard_profiles: list[StageTimings] | None = None

    @property
    def n_shards(self) -> int:
        """Number of shards (one engine/device each)."""
        return len(self.engines)

    def fit(self, corpus: Corpus) -> "ShardedExecutor":
        """Partition the corpus and build+attach every shard's index."""
        self.plan = ShardPlan.build(corpus, self.n_shards, self.strategy, self.seed)
        for engine, shard in zip(self.engines, self.plan.shards):
            engine.fit(shard.corpus)
        return self

    def query(
        self, queries: list[Query], k: int | None = None, batch_size: int | None = None
    ) -> list[TopKResult]:
        """Scan every shard concurrently; return the exact global top-k.

        ``last_profile`` holds the batch's critical-path profile (slowest
        shard + host merge); ``last_shard_profiles`` the per-shard slices.

        Raises:
            QueryError: Unfitted executor, empty batch, or bad ``k``.
        """
        if self.plan is None:
            raise QueryError("sharded executor must be fitted before querying")
        queries = list(queries)
        if not queries:
            raise QueryError("empty query batch")
        k = int(k if k is not None else self.config.k)
        if k < 1:
            raise QueryError("k must be >= 1")

        per_shard: list[list[TopKResult]] = []
        shard_profiles: list[StageTimings] = []
        for engine in self.engines:
            if batch_size is None:
                per_shard.append(engine.query(queries, k=k))
            else:
                per_shard.append(engine.query_batched(queries, k=k, batch_size=batch_size))
            shard_profiles.append(engine.last_profile.copy())

        merged, merge_seconds = merge_shard_results(
            per_shard, [shard.global_ids for shard in self.plan.shards],
            len(queries), k, self.host, n_objects=self.plan.n_objects,
        )
        profile = critical_path_profile(shard_profiles)
        profile.add("result_merge", merge_seconds)
        self.last_profile = profile
        self.last_shard_profiles = shard_profiles
        return merged


class ShardedIndexHandle(IndexHandle):
    """A session index whose corpus is partitioned across shard devices.

    Created by :meth:`GenieSession.create_index(..., shards=N)
    <repro.api.session.GenieSession.create_index>`; satisfies the whole
    :class:`~repro.api.session.IndexHandle` search surface. Every shard
    is its own residency unit: it attaches to its own pool device, counts
    toward the session's (aggregate) memory budget, and can be LRU-evicted
    and swapped back in independently. Search results carry per-shard
    profile slices in :attr:`SearchResult.shard_profiles
    <repro.api.session.SearchResult.shard_profiles>`; the result's main
    ``profile`` is the concurrent critical path (slowest shard + merge).

    Execution lowers through the session's query planner
    (:mod:`repro.plan`): this class only contributes the shard *context*
    — partition strategy, per-shard keyword bounds (the routing table
    shard pruning tests queries against), and the local→global id maps —
    while the plan executor runs the routed scans, the one-round or
    two-round-TPUT merge, and the critical-path profile. ``route=`` /
    ``plan=`` on :meth:`~repro.api.session.IndexHandle.search` force a
    strategy; results are bit-identical under all of them.
    """

    def __init__(
        self,
        session,
        name: str,
        model,
        config: GenieConfig,
        shards: int,
        strategy: str = "range",
        seed: int = 0,
    ):
        if int(shards) < 1:
            raise ConfigError("shards must be >= 1")
        check_partition_args(strategy, seed)  # fail before the name registers
        super().__init__(session, name, model, config, part_size=None, swap_parts=False)
        self.n_shards = int(shards)
        self.shard_strategy = strategy
        self.shard_seed = int(seed)
        self.plan: ShardPlan | None = None
        self.rebalance_epoch = 0
        self._last_shard_profiles: tuple[StageTimings, ...] = ()

    # ------------------------------------------------------------------
    # introspection

    @property
    def num_shards(self) -> int:
        """Number of shards the corpus is partitioned into."""
        return self.n_shards

    @property
    def shard_profiles(self) -> tuple[StageTimings, ...]:
        """Per-shard stage profiles of the last search, in shard order.

        ``()`` until a search succeeds — and again after a search
        *fails*, so a monitoring caller never reads a previous search's
        profiles as if they belonged to the failed one.
        """
        return self._last_shard_profiles

    def search_encoded(self, raw_queries, queries, k=None, batch_size=None,
                       route=None, plan=None, trace=False, **search_opts):
        """See :meth:`IndexHandle.search_encoded`; tracks shard profiles."""
        self._last_shard_profiles = ()
        result = super().search_encoded(
            raw_queries, queries, k=k, batch_size=batch_size,
            route=route, plan=plan, trace=trace, **search_opts,
        )
        self._last_shard_profiles = tuple(result.shard_profiles or ())
        return result

    def shard_devices(self) -> list[Device]:
        """The pool devices this index's shards live on, in shard order."""
        return self.session.shard_devices(self.n_shards)

    # ------------------------------------------------------------------
    # lifecycle

    def _pool_size(self) -> int:
        """Devices the session's shard pool must hold for this index."""
        return self.n_shards

    def _place_parts(self, built, devices) -> list[_IndexPart]:
        """Create the parts for freshly built shard indexes.

        One part per shard on its own pool device; the replicated
        subclass overrides this to place R copies per shard. Returns
        every part that should be attached.
        """
        self._parts = [
            _IndexPart(
                self, shard.position,
                self._part_engine(shard.position, devices[shard.position]),
                shard.corpus, index, offset=0, global_ids=shard.global_ids,
            )
            for shard, index in built
        ]
        return list(self._parts)

    def _install_plan(self, plan: ShardPlan) -> None:
        """Build every shard's index and swap the new parts in.

        Shared tail of :meth:`fit`, stream compaction
        (:meth:`_rebuild_base`) and :meth:`rebalance`: every shard index
        is built on the host (charging ``index_build``), the old parts
        are evicted, and the new ones attach to their own pool devices
        (each paying ``index_transfer`` on its own link) under the
        session's residency budget. No epoch bump or invalidation here —
        results are unchanged by construction; callers handle plan
        staleness themselves.
        """
        devices = self.session.shard_devices(self._pool_size())
        built = []
        for shard in plan.shards:
            index = InvertedIndex.build(shard.corpus, load_balance=self.config.load_balance)
            self.session.host.charge_ops(index.build_ops, stage="index_build")
            # The built index materializes the shard's sorted distinct
            # keywords; seed the slice's routing-bounds cache with the
            # same array so the planner's table costs nothing extra. The
            # per-keyword posting lengths (the cost model's work
            # features) come from the same CSR arrays.
            shard._keywords = index.keyword_array
            shard._posting_counts = postings_per_keyword(index)
            built.append((shard, index))
        self.evict()
        self.plan = plan
        for part in self._place_parts(built, devices):
            self.session._ensure_resident(part)

    def fit(self, data) -> "ShardedIndexHandle":
        """Encode ``data``, partition it, build one index per shard.

        Every shard index is built on the host and attached to its own
        pool device immediately; the session may LRU-evict shards later
        under budget pressure, and search swaps them back in per shard.
        """
        corpus = self._prepare_fit(data)
        self._install_plan(
            ShardPlan.build(corpus, self.n_shards, self.shard_strategy, self.shard_seed)
        )
        return self

    def _rebuild_base(self, corpus: Corpus) -> None:
        """Repartition ``corpus`` into fresh shard indexes (compaction).

        Sharded twin of :meth:`IndexHandle._rebuild_base`: same partition
        strategy and seed. No epoch bump or invalidation — results are
        unchanged by construction; the stream state invalidates the plan
        cache itself (the shard keyword tables did change).
        """
        self._install_plan(
            ShardPlan.build(corpus, self.n_shards, self.shard_strategy, self.shard_seed)
        )

    # ------------------------------------------------------------------
    # self-healing

    def rebalance(self, shard_weights) -> bool:
        """Recut a fitted range partition so observed load evens out.

        ``shard_weights`` is one non-negative load figure per shard
        (typically the serve layer's rolling per-shard busy seconds).
        Each shard's weight is spread over its objects as a density, and
        new contiguous range bounds are cut so every shard carries a near
        equal share of the observed load — the hot shard shrinks, its
        neighbours absorb the edges. The plan stays a range partition, so
        keyword-bounds routing (and shard pruning) keeps working.

        Invalidation is scoped: the *plan* cache entries for this index
        are dropped (the routing table changed) and ``rebalance_epoch``
        joins the plan-cache key, but serve-layer *result* caches are
        untouched — a rebalance moves objects between devices without
        changing any answer, which the equivalence tests pin.

        Returns ``True`` if the partition changed. No-ops (``False``)
        for hash partitions, unfitted or streaming handles, degenerate
        weights, and cuts identical to the current bounds.

        Raises:
            ConfigError: Called on an unfitted handle.
        """
        self.session._check_open()
        if self.plan is None:
            raise ConfigError(f"cannot rebalance unfitted index {self.name!r}")
        if self.shard_strategy != "range" or self.n_shards < 2:
            return False
        if self._stream is not None:
            # Live mutations would have to be re-routed mid-flight;
            # compaction folds them into the base first.
            return False
        current = self.plan.range_bounds()
        if current is None:
            return False
        weights = [float(w) for w in shard_weights][: self.n_shards]
        weights += [0.0] * (self.n_shards - len(weights))
        bounds = balanced_range_bounds(self.plan.sizes(), weights)
        if bounds is None or bounds == current:
            return False
        corpus = self.plan.reassemble()
        self._install_plan(ShardPlan.build_ranges(corpus, bounds))
        self.rebalance_epoch += 1
        if self.session.plan_cache is not None:
            self.session.plan_cache.invalidate(self.name)
        return True

    # ------------------------------------------------------------------
    # planning

    def _plan_epoch(self):
        """Plan-cache epoch: the base epoch plus the rebalance counter.

        A rebalance rewrites the shard keyword tables the planner routes
        against without touching the fit epoch (results are unchanged),
        so it must contribute its own component to the cache key.
        """
        return (super()._plan_epoch(), self.rebalance_epoch)

    def _plan_shards(self) -> ShardContext | None:
        """Shard context the query planner compiles against.

        The routing table is each slice's keyword bounds
        (:meth:`ShardSlice.keywords <repro.cluster.plan.ShardSlice.keywords>`),
        seeded at fit time from the shard index's already-materialized
        ``keyword_array`` — no extra pass over the corpus.
        """
        if self.plan is None or not self._parts:
            return None
        return ShardContext(
            n_shards=self.n_shards,
            strategy=self.shard_strategy,
            shard_keywords=tuple(shard.keywords() for shard in self.plan.shards),
            n_objects=self.plan.n_objects,
            shard_postings=tuple(
                shard.posting_counts() for shard in self.plan.shards
            ),
        )
