"""Sharded multi-device execution: partition the corpus, scan in parallel.

``repro.cluster`` is the scale-*out* axis of the reproduction. PR 1 made
one device fast (the vectorized batch pipeline), ``repro.serve`` made it
serve a stream; this package partitions a corpus across **N simulated
devices** and answers every query with an exact global top-k:

* :class:`~repro.cluster.plan.ShardPlan` — object-range or seeded
  hash partitioning into per-shard corpora with local↔global id maps,
* :class:`~repro.cluster.executor.ShardedExecutor` — core-level N-device
  ``fit``/``query`` (per-shard batch scans on independent device
  timelines, scatter/gather transfer costs, deterministic lexsort merge),
* :class:`~repro.cluster.executor.ShardedIndexHandle` — the session
  surface behind ``GenieSession.create_index(..., shards=N)``: per-shard
  residency accounting plus per-shard profile slices on every result.

Results are **bit-identical** to a single unsharded index (ids, counts,
tie order, thresholds): shards partition the objects, so match counts are
complete within each shard and the candidate merge is exact — the same
argument Section III-D makes for multi-loading, applied in space instead
of time. Simulated latency is the *critical path* (slowest shard + host
merge), which is what makes sharding a throughput multiplier.

Quickstart::

    from repro.api import GenieSession

    session = GenieSession()
    docs = session.create_index(texts, model="document", name="tweets",
                                shards=4, shard_strategy="hash")
    result = docs.search(["gpu similarity search"], k=10)
    result.profile.query_total()     # critical path: slowest shard + merge
    [p.query_total() for p in result.shard_profiles]  # per-shard slices
"""

from repro.cluster.executor import (
    ShardedExecutor,
    ShardedIndexHandle,
    critical_path_profile,
    merge_shard_results,
)
from repro.cluster.plan import PARTITION_STRATEGIES, ShardPlan, ShardSlice

__all__ = [
    "ShardPlan",
    "ShardSlice",
    "PARTITION_STRATEGIES",
    "ShardedExecutor",
    "ShardedIndexHandle",
    "merge_shard_results",
    "critical_path_profile",
]
