"""E2LSH: p-stable locality-sensitive hashing for lp norms (Datar et al.).

``h(q) = floor((a . q + b) / w)`` with ``a`` drawn from a p-stable
distribution (Gaussian for l2, Cauchy for l1) and ``b ~ U[0, w)``. The
collision probability is the strictly decreasing ``psi_p`` of Eqn. 11,
which the paper takes as the similarity measure ``sim_lp`` (Eqn. 12) that
GENIE's tau-ANN search then targets.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.lsh.family import LshFamily


def psi_l2(distance: float, width: float) -> float:
    """Collision probability of a Gaussian p-stable function at distance ``d``.

    Closed form of Eqn. 11 for p = 2:
    ``1 - 2*Phi(-w/d) - (2d / (sqrt(2 pi) w)) * (1 - exp(-w^2 / (2 d^2)))``.
    """
    if distance <= 0:
        return 1.0
    ratio = width / distance
    term1 = 1.0 - 2.0 * norm.cdf(-ratio)
    term2 = (2.0 / (np.sqrt(2.0 * np.pi) * ratio)) * (1.0 - np.exp(-(ratio**2) / 2.0))
    return float(term1 - term2)


def psi_l1(distance: float, width: float) -> float:
    """Collision probability of a Cauchy p-stable function at distance ``d``.

    Closed form of Eqn. 11 for p = 1:
    ``2*atan(w/d)/pi - (d / (pi w)) * ln(1 + (w/d)^2)``.
    """
    if distance <= 0:
        return 1.0
    ratio = width / distance
    return float(2.0 * np.arctan(ratio) / np.pi - np.log(1.0 + ratio**2) / (np.pi * ratio))


class E2Lsh(LshFamily):
    """A batch of p-stable LSH functions for l1 or l2.

    Args:
        num_functions: Number of functions ``m``.
        dim: Point dimensionality.
        width: Bucket width ``w`` (the accuracy/time trade-off knob).
        p: 1 (Cauchy projections) or 2 (Gaussian projections).
        seed: RNG seed for the projections.
    """

    def __init__(self, num_functions: int, dim: int, width: float, p: int = 2, seed: int = 0):
        super().__init__(num_functions, seed)
        if p not in (1, 2):
            raise ValueError("p must be 1 or 2")
        if width <= 0:
            raise ValueError("width must be positive")
        self.dim = int(dim)
        self.width = float(width)
        self.p = int(p)
        rng = np.random.default_rng(seed)
        if p == 2:
            self._a = rng.standard_normal((self.dim, self.num_functions))
        else:
            self._a = rng.standard_cauchy((self.dim, self.num_functions))
        self._b = rng.uniform(0.0, self.width, size=self.num_functions)

    def hash_points(self, points: np.ndarray) -> np.ndarray:
        """Signatures ``floor((a.q + b)/w)`` for all points and functions."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {points.shape[1]}")
        projections = points @ self._a + self._b
        return np.floor(projections / self.width).astype(np.int64)

    def distance(self, p: np.ndarray, q: np.ndarray) -> float:
        """The lp distance the family is sensitive to."""
        diff = np.asarray(p, dtype=np.float64) - np.asarray(q, dtype=np.float64)
        return float(np.linalg.norm(diff, ord=self.p))

    def similarity(self, p: np.ndarray, q: np.ndarray) -> float:
        """``sim_lp(p, q) = psi_p(||p - q||_p)`` — Eqn. 12 of the paper."""
        return self.collision_probability(p, q)

    def collision_probability(self, p: np.ndarray, q: np.ndarray) -> float:
        """``psi_p`` evaluated at the pair's lp distance (Eqn. 11)."""
        distance = self.distance(p, q)
        if self.p == 2:
            return psi_l2(distance, self.width)
        return psi_l1(distance, self.width)
