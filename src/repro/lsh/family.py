"""Base interface for LSH families (Section IV of the paper).

A *generic LSH scheme* in the paper's sense is a family of functions with
``Pr[h(p) = h(q)] = sim(p, q)`` (Eqn. 1). Every family here implements:

* ``hash_points`` — signatures for a batch of points, one column per
  function (integers; re-hashing maps them to a bounded bucket domain),
* ``similarity`` — the measure the family is locality-sensitive for, and
* ``collision_probability`` — ``Pr[h(p) = h(q)]`` as a function of that
  similarity/distance, used by tests to validate Eqn. 1 empirically.
"""

from __future__ import annotations

import abc

import numpy as np


class LshFamily(abc.ABC):
    """A set of ``m`` locality-sensitive hash functions over points.

    Attributes:
        num_functions: Number of hash functions ``m``.
    """

    def __init__(self, num_functions: int, seed: int = 0):
        if num_functions < 1:
            raise ValueError("num_functions must be >= 1")
        self.num_functions = int(num_functions)
        self.seed = int(seed)

    @abc.abstractmethod
    def hash_points(self, points: np.ndarray) -> np.ndarray:
        """Hash a batch of points.

        Args:
            points: ``(n, d)`` array (or the family's native point type).

        Returns:
            ``(n, num_functions)`` int64 signature matrix.
        """

    @abc.abstractmethod
    def similarity(self, p: np.ndarray, q: np.ndarray) -> float:
        """The similarity measure this family is locality-sensitive for."""

    @abc.abstractmethod
    def collision_probability(self, p: np.ndarray, q: np.ndarray) -> float:
        """``Pr[h(p) = h(q)]`` for a single random function of the family."""

    def empirical_collision_rate(self, p: np.ndarray, q: np.ndarray) -> float:
        """Fraction of this family's functions on which ``p`` and ``q`` collide."""
        hp = self.hash_points(np.asarray(p)[None, :])
        hq = self.hash_points(np.asarray(q)[None, :])
        return float(np.mean(hp[0] == hq[0]))
