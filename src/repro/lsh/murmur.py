"""MurmurHash3 (x86 32-bit variant), scalar and vectorized.

The paper uses MurmurHash3 as the random-projection function of the
re-hashing mechanism (Section IV-A2). The scalar implementation follows
Appleby's reference; the vectorized versions hash whole numpy arrays with
the same algorithm so the two can be cross-checked.
"""

from __future__ import annotations

import numpy as np

_C1 = np.uint32(0xCC9E2D51)
_C2 = np.uint32(0x1B873593)
_MASK = 0xFFFFFFFF


def _rotl32(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """Reference scalar MurmurHash3_x86_32 over a byte string.

    Args:
        data: Bytes to hash.
        seed: 32-bit seed.

    Returns:
        The 32-bit hash as a non-negative int.
    """
    length = len(data)
    h = seed & _MASK
    n_blocks = length // 4
    for i in range(n_blocks):
        k = int.from_bytes(data[4 * i : 4 * i + 4], "little")
        k = (k * 0xCC9E2D51) & _MASK
        k = _rotl32(k, 15)
        k = (k * 0x1B873593) & _MASK
        h ^= k
        h = _rotl32(h, 13)
        h = (h * 5 + 0xE6546B64) & _MASK
    tail = data[4 * n_blocks :]
    k = 0
    if len(tail) >= 3:
        k ^= tail[2] << 16
    if len(tail) >= 2:
        k ^= tail[1] << 8
    if len(tail) >= 1:
        k ^= tail[0]
        k = (k * 0xCC9E2D51) & _MASK
        k = _rotl32(k, 15)
        k = (k * 0x1B873593) & _MASK
        h ^= k
    h ^= length
    return _fmix32_scalar(h)


def _fmix32_scalar(h: int) -> int:
    h &= _MASK
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK
    h ^= h >> 16
    return h


def _rotl32_vec(x: np.ndarray, r: int) -> np.ndarray:
    return (x << np.uint32(r)) | (x >> np.uint32(32 - r))


def _fmix32_vec(h: np.ndarray) -> np.ndarray:
    h = h ^ (h >> np.uint32(16))
    h = h * np.uint32(0x85EBCA6B)
    h = h ^ (h >> np.uint32(13))
    h = h * np.uint32(0xC2B2AE35)
    return h ^ (h >> np.uint32(16))


def murmur3_int64(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized MurmurHash3_x86_32 of each int64 as an 8-byte little-endian key.

    Bit-identical to ``murmur3_32(value.tobytes(), seed)`` element-wise.

    Args:
        values: Array of int64 keys.
        seed: 32-bit seed.

    Returns:
        ``uint32`` array of hashes.
    """
    vals = np.asarray(values, dtype=np.int64).view(np.uint64)
    low = (vals & np.uint64(_MASK)).astype(np.uint32)
    high = (vals >> np.uint64(32)).astype(np.uint32)
    h = np.full(vals.shape, np.uint32(seed & _MASK), dtype=np.uint32)
    with np.errstate(over="ignore"):
        for block in (low, high):
            k = block * _C1
            k = _rotl32_vec(k, 15)
            k = k * _C2
            h = h ^ k
            h = _rotl32_vec(h, 13)
            h = h * np.uint32(5) + np.uint32(0xE6546B64)
        h = h ^ np.uint32(8)  # key length in bytes
        return _fmix32_vec(h)


def hash_combine(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Reduce a 2-D array of int64 components to one hash per row.

    Used to hash multi-dimensional LSH signatures (e.g. Random Binning
    Hashing's per-dimension grid coordinates) into a single 32-bit value:
    each column is murmur-mixed into a running per-row state.

    Args:
        values: ``(n, d)`` int64 array.
        seed: Seed of the first mixing round.

    Returns:
        ``uint32`` array of length ``n``.
    """
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim == 1:
        arr = arr[:, None]
    state = np.full(arr.shape[0], np.uint32(seed & _MASK), dtype=np.uint32)
    with np.errstate(over="ignore"):
        for j in range(arr.shape[1]):
            mixed = murmur3_int64(arr[:, j], seed=0)
            state = _fmix32_vec(state * np.uint32(31) + mixed)
    return state
