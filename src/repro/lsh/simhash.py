"""Sign random projections (SimHash) for angular similarity.

Charikar's rounding-based family, cited by the paper as the origin of the
``Pr[h(p) = h(q)] = sim(p, q)`` definition: ``h(p) = sign(a . p)`` with a
Gaussian ``a`` collides with probability ``1 - theta(p, q) / pi``.
"""

from __future__ import annotations

import numpy as np

from repro.lsh.family import LshFamily


def angular_similarity(p: np.ndarray, q: np.ndarray) -> float:
    """``1 - theta / pi`` where theta is the angle between the vectors."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    denom = np.linalg.norm(p) * np.linalg.norm(q)
    if denom == 0:
        return 1.0
    cosine = float(np.clip(p @ q / denom, -1.0, 1.0))
    return 1.0 - np.arccos(cosine) / np.pi


class SimHash(LshFamily):
    """A batch of sign-random-projection functions.

    Args:
        num_functions: Number of functions ``m``.
        dim: Point dimensionality.
        seed: RNG seed for the projection directions.
    """

    def __init__(self, num_functions: int, dim: int, seed: int = 0):
        super().__init__(num_functions, seed)
        self.dim = int(dim)
        rng = np.random.default_rng(seed)
        self._a = rng.standard_normal((self.dim, self.num_functions))

    def hash_points(self, points: np.ndarray) -> np.ndarray:
        """Signatures in {0, 1}: the sign bit of each projection."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {points.shape[1]}")
        return (points @ self._a >= 0).astype(np.int64)

    def similarity(self, p: np.ndarray, q: np.ndarray) -> float:
        """Angular similarity ``1 - theta/pi``."""
        return angular_similarity(p, q)

    def collision_probability(self, p: np.ndarray, q: np.ndarray) -> float:
        """Equal to the angular similarity (Goemans-Williamson rounding)."""
        return self.similarity(p, q)
