"""The re-hashing mechanism (Section IV-A2, Fig. 7).

LSH signatures may live in a huge or unbounded domain (RBH signatures are
whole grid-coordinate vectors; E2LSH buckets are unbounded integers). GENIE
needs a bounded keyword domain per function, so each signature is passed
through a random projection ``r_i`` into ``[0, D)``. Projection collisions
add a false-collision rate of ``1/D`` on top of the LSH collision rate —
the ``omega`` term of Theorem 4.1.
"""

from __future__ import annotations

import numpy as np

from repro.lsh.murmur import murmur3_int64


class ReHasher:
    """Per-function random projections from signatures to ``[0, domain)``.

    Args:
        num_functions: Number of LSH functions being re-hashed (each gets
            an independent projection seed).
        domain: Bucket-domain size ``D``.
        seed: Master seed deriving the per-function seeds.
    """

    def __init__(self, num_functions: int, domain: int, seed: int = 0):
        if num_functions < 1:
            raise ValueError("num_functions must be >= 1")
        if domain < 1:
            raise ValueError("domain must be >= 1")
        self.num_functions = int(num_functions)
        self.domain = int(domain)
        rng = np.random.default_rng(seed)
        self._seeds = rng.integers(1, 2**31 - 1, size=self.num_functions)

    def rehash(self, signatures: np.ndarray) -> np.ndarray:
        """Project a signature matrix into the bounded bucket domain.

        Args:
            signatures: ``(n, num_functions)`` int64 LSH signatures.

        Returns:
            ``(n, num_functions)`` int64 buckets in ``[0, domain)``.
        """
        signatures = np.atleast_2d(np.asarray(signatures, dtype=np.int64))
        if signatures.shape[1] != self.num_functions:
            raise ValueError(
                f"expected {self.num_functions} signature columns, got {signatures.shape[1]}"
            )
        buckets = np.empty_like(signatures)
        for j in range(self.num_functions):
            hashed = murmur3_int64(signatures[:, j], seed=int(self._seeds[j]))
            buckets[:, j] = (hashed % np.uint32(self.domain)).astype(np.int64)
        return buckets

    def keywords(self, signatures: np.ndarray) -> np.ndarray:
        """Re-hash and offset each function into its own keyword range.

        The GENIE keyword of function ``i`` with bucket ``b`` is
        ``i * domain + b`` — the ``(i, h_i(p))`` pair of the paper encoded
        as a single integer.
        """
        buckets = self.rehash(signatures)
        offsets = np.arange(self.num_functions, dtype=np.int64) * self.domain
        return buckets + offsets[None, :]
