"""MinHash: the classic LSH family for Jaccard similarity on sets.

The paper lists the Jaccard kernel among the kernelized similarities GENIE
supports through its LSH front-end (Section II-B1); MinHash is its standard
LSH family: ``Pr[min-hash collision] = |A ∩ B| / |A ∪ B|``.
"""

from __future__ import annotations

import numpy as np

from repro.lsh.family import LshFamily
from repro.lsh.murmur import murmur3_int64

_PRIME = (1 << 61) - 1


def jaccard(a, b) -> float:
    """Jaccard similarity of two element iterables."""
    sa, sb = set(map(int, a)), set(map(int, b))
    if not sa and not sb:
        return 1.0
    return len(sa & sb) / len(sa | sb)


class MinHash(LshFamily):
    """A batch of min-wise independent hash functions over integer sets.

    Each function applies a random linear permutation-style hash
    ``(alpha * murmur(x) + beta) mod PRIME`` and keeps the minimum over the
    set's elements.

    Args:
        num_functions: Number of functions ``m``.
        seed: RNG seed for the linear coefficients.
    """

    def __init__(self, num_functions: int, seed: int = 0):
        super().__init__(num_functions, seed)
        rng = np.random.default_rng(seed)
        self._alpha = rng.integers(1, _PRIME, size=self.num_functions, dtype=np.int64)
        self._beta = rng.integers(0, _PRIME, size=self.num_functions, dtype=np.int64)

    def hash_set(self, elements) -> np.ndarray:
        """Signature of one set: the per-function minima."""
        arr = np.asarray(sorted(set(map(int, elements))), dtype=np.int64)
        if arr.size == 0:
            return np.full(self.num_functions, -1, dtype=np.int64)
        base = murmur3_int64(arr).astype(np.int64)  # (s,)
        with np.errstate(over="ignore"):
            table = (base[:, None] * self._alpha[None, :] + self._beta[None, :]) % _PRIME
        return table.min(axis=0)

    def hash_points(self, points) -> np.ndarray:
        """Signatures for a batch of sets (any iterable of iterables)."""
        return np.vstack([self.hash_set(elements) for elements in points])

    def similarity(self, p, q) -> float:
        """Jaccard similarity."""
        return jaccard(p, q)

    def collision_probability(self, p, q) -> float:
        """Equal to the Jaccard similarity, by min-wise independence."""
        return self.similarity(p, q)
