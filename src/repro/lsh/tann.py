"""Tolerance-ANN theory: error bounds and hash-function counts (Section IV-B).

Implements the two ways the paper sizes ``m`` (the number of LSH functions):

* the Hoeffding bound of Theorem 4.1 — ``m = 2 ln(3/delta) / eps^2``
  (2174 functions at eps = delta = 0.06), and
* the much tighter data-independent binomial simulation of Eqn. 9 — the
  smallest ``m`` with ``Pr[|c/m - s| <= eps] >= 1 - delta`` under
  ``c ~ Binomial(m, s)`` (peaks at m = 237 for s = 0.5), which is Fig. 8.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import binom

#: The paper's default tolerance parameters (Section VI-A3).
PAPER_EPS = 0.06
PAPER_DELTA = 0.06


def hoeffding_m(eps: float = PAPER_EPS, delta: float = PAPER_DELTA) -> int:
    """Theorem 4.1's function count: ``ceil(2 ln(3/delta) / eps^2)``."""
    if not 0 < eps < 1 or not 0 < delta < 1:
        raise ValueError("eps and delta must lie in (0, 1)")
    return math.ceil(2.0 * math.log(3.0 / delta) / eps**2)


def success_probability(s: float, m: int, eps: float = PAPER_EPS) -> float:
    """``Pr[|c/m - s| <= eps]`` with ``c ~ Binomial(m, s)`` — Eqn. 9.

    The event ``|c/m - s| <= eps`` corresponds to integer counts ``c`` in
    ``[ceil((s - eps) m), floor((s + eps) m)]``. (Eqn. 9's display writes
    looser floor/ceil limits, but those would make m = 1 trivially succeed;
    the strict limits reproduce the Fig. 8 curve: peak 234 at s = 0.5
    versus the 237 the paper reads off its own simulation.)
    """
    if not 0 <= s <= 1:
        raise ValueError("similarity s must lie in [0, 1]")
    if m < 1:
        raise ValueError("m must be >= 1")
    lo = max(0, math.ceil((s - eps) * m))
    hi = min(m, math.floor((s + eps) * m))
    if hi < lo:
        return 0.0
    return float(binom.cdf(hi, m, s) - (binom.cdf(lo - 1, m, s) if lo > 0 else 0.0))


def required_m(
    s: float,
    eps: float = PAPER_EPS,
    delta: float = PAPER_DELTA,
    m_max: int = 4096,
) -> int:
    """Smallest ``m`` with ``success_probability(s, m, eps) >= 1 - delta``.

    The probability is not monotone in ``m`` (floor effects), so the search
    scans upward like the paper's simulation does.

    Raises:
        ValueError: If no ``m <= m_max`` suffices.
    """
    target = 1.0 - delta
    for m in range(1, m_max + 1):
        if success_probability(s, m, eps) >= target:
            return m
    raise ValueError(f"no m <= {m_max} achieves the ({eps}, {delta}) guarantee at s={s}")


def fig8_curve(
    eps: float = PAPER_EPS,
    delta: float = PAPER_DELTA,
    s_values: np.ndarray | None = None,
) -> list[tuple[float, int]]:
    """The (similarity, required m) series of Fig. 8.

    Args:
        eps: Tolerance.
        delta: Failure probability.
        s_values: Similarity grid; defaults to 0.05..0.95 in steps of 0.05.

    Returns:
        ``(s, m)`` pairs.
    """
    if s_values is None:
        s_values = np.round(np.arange(0.05, 0.96, 0.05), 2)
    return [(float(s), required_m(float(s), eps, delta)) for s in s_values]


def practical_m(eps: float = PAPER_EPS, delta: float = PAPER_DELTA) -> int:
    """The worst-case-over-s required ``m`` — what GENIE configures.

    The maximum of the Fig. 8 curve sits at s = 0.5; the paper reads off
    m = 237 for eps = delta = 0.06.
    """
    return required_m(0.5, eps, delta)


def similarity_estimate(count: int | np.ndarray, m: int):
    """The MLE similarity estimate ``s ≈ c/m`` (Eqn. 7)."""
    if m < 1:
        raise ValueError("m must be >= 1")
    return np.asarray(count, dtype=np.float64) / float(m)


def tau_from_eps(eps: float) -> float:
    """The tau of tau-ANN achieved with per-point error eps (Theorem 4.2: 2*eps)."""
    return 2.0 * eps
