"""Random Binning Hashing for the Laplacian kernel (Rahimi & Recht).

For a shift-invariant kernel ``k`` with ``p(delta) = delta * k''(delta)`` a
probability density, an RBH function imposes a randomly shifted grid: per
dimension a pitch ``delta_j`` is drawn from ``p`` and a shift
``u_j ~ U[0, delta_j)``; the signature is the vector of grid coordinates
``floor((x_j - u_j) / delta_j)`` (Eqn. 2). Collisions happen with expected
probability ``k(p, q)``.

For the Laplacian kernel ``k(p,q) = exp(-||p-q||_1 / sigma)`` the pitch
density works out to ``Gamma(shape=2, scale=sigma)``.

The signature is a whole d-dimensional integer vector — the "huge signature
space" that motivates the paper's re-hashing mechanism. This module hashes
it to one 64-bit integer per function (collision-free for practical
purposes); :mod:`repro.lsh.rehash` then buckets it into ``[0, D)``.
"""

from __future__ import annotations

import numpy as np

from repro.lsh.family import LshFamily
from repro.lsh.murmur import hash_combine


def laplacian_kernel(p: np.ndarray, q: np.ndarray, sigma: float) -> float:
    """``exp(-||p - q||_1 / sigma)``."""
    diff = np.asarray(p, dtype=np.float64) - np.asarray(q, dtype=np.float64)
    return float(np.exp(-np.abs(diff).sum() / sigma))


def estimate_kernel_width(points: np.ndarray, n_samples: int = 1000, seed: int = 0) -> float:
    """The mean pairwise l1 distance of a sample — the paper's sigma heuristic.

    (Jaakkola's rule: set the kernel width to the mean paired distance of a
    random sample.)
    """
    points = np.asarray(points, dtype=np.float64)
    rng = np.random.default_rng(seed)
    n = points.shape[0]
    if n < 2:
        raise ValueError("need at least two points")
    left = rng.integers(0, n, size=n_samples)
    right = rng.integers(0, n, size=n_samples)
    keep = left != right
    if not keep.any():
        keep = np.ones_like(left, dtype=bool)
    distances = np.abs(points[left[keep]] - points[right[keep]]).sum(axis=1)
    return float(distances.mean())


class RandomBinningHash(LshFamily):
    """A batch of RBH functions for the Laplacian kernel.

    Args:
        num_functions: Number of functions ``m``.
        dim: Point dimensionality.
        sigma: Laplacian kernel width.
        seed: RNG seed for pitches and shifts.
    """

    def __init__(self, num_functions: int, dim: int, sigma: float, seed: int = 0):
        super().__init__(num_functions, seed)
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.dim = int(dim)
        self.sigma = float(sigma)
        rng = np.random.default_rng(seed)
        # Pitch per (function, dim): delta ~ Gamma(2, sigma); shift ~ U[0, delta).
        self._pitch = rng.gamma(shape=2.0, scale=self.sigma, size=(self.num_functions, self.dim))
        self._shift = rng.uniform(0.0, 1.0, size=(self.num_functions, self.dim)) * self._pitch

    def grid_coordinates(self, points: np.ndarray) -> np.ndarray:
        """Raw grid signatures: ``(n, m, d)`` integer coordinates (Eqn. 2)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {points.shape[1]}")
        # (n, 1, d) against (m, d) broadcast to (n, m, d).
        cells = np.floor((points[:, None, :] - self._shift[None, :, :]) / self._pitch[None, :, :])
        return cells.astype(np.int64)

    def hash_points(self, points: np.ndarray, chunk: int = 512) -> np.ndarray:
        """Signatures folded to one integer per (point, function).

        The d-dimensional coordinate vector is murmur-combined; equal grid
        cells always fold to equal integers, so LSH collisions survive.
        Points are processed in chunks to bound the ``(n, m, d)``
        intermediate.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        n = points.shape[0]
        folded = np.empty((n, self.num_functions), dtype=np.int64)
        for start in range(0, n, chunk):
            cells = self.grid_coordinates(points[start : start + chunk])
            for j in range(self.num_functions):
                folded[start : start + chunk, j] = hash_combine(
                    cells[:, j, :], seed=j + 1
                ).astype(np.int64)
        return folded

    def similarity(self, p: np.ndarray, q: np.ndarray) -> float:
        """The Laplacian kernel value."""
        return laplacian_kernel(p, q, self.sigma)

    def collision_probability(self, p: np.ndarray, q: np.ndarray) -> float:
        """Expected collision probability equals the kernel (Rahimi & Recht)."""
        return self.similarity(p, q)
