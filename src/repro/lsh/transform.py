"""LSH-to-GENIE transformation and the high-level tau-ANN index.

:class:`LshTransformer` turns points into GENIE objects/queries: point
``p`` becomes ``[r_1(h_1(p)), ..., r_m(h_m(p))]`` with keyword
``i * D + bucket`` for function ``i`` (Section IV-A1).

:class:`TauAnnIndex` is the deprecated user-facing wrapper; the encoding
lives in :class:`repro.api.models.AnnModel` and the engine work in
:class:`repro.api.session.GenieSession`.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import GenieConfig, GenieEngine
from repro.core.types import Corpus, Query, TopKResult
from repro.errors import QueryError
from repro.gpu.device import Device
from repro.gpu.host import HostCpu
from repro.lsh.family import LshFamily
from repro.lsh.rehash import ReHasher

#: Default re-hash bucket domain (the paper uses 8192 for OCR).
DEFAULT_DOMAIN = 8192


class LshTransformer:
    """Points -> GENIE keyword sets, via hash + re-hash.

    Args:
        family: The LSH family supplying ``h_1 .. h_m``.
        domain: Re-hash bucket domain ``D``.
        seed: Seed for the re-hash projections.
    """

    def __init__(self, family: LshFamily, domain: int = DEFAULT_DOMAIN, seed: int = 0):
        self.family = family
        self.domain = int(domain)
        self.rehasher = ReHasher(family.num_functions, self.domain, seed=seed)

    @property
    def num_functions(self) -> int:
        """Number of LSH functions ``m``."""
        return self.family.num_functions

    def keyword_matrix(self, points) -> np.ndarray:
        """``(n, m)`` keyword matrix for a batch of points."""
        return self.rehasher.keywords(self.family.hash_points(points))

    def to_corpus(self, points) -> Corpus:
        """Transform data points into a GENIE corpus."""
        return Corpus(list(self.keyword_matrix(points)))

    def to_queries(self, points) -> list[Query]:
        """Transform query points into GENIE queries (one item per function)."""
        return [Query.from_keywords(row) for row in self.keyword_matrix(points)]


class TauAnnIndex:
    """Deprecated wrapper: tau-ANN search on GENIE (Theorem 4.2).

    Thin shim over :class:`repro.api.session.GenieSession` with an
    :class:`~repro.api.models.AnnModel`; results, the forced
    ``count_bound = m`` and stage timings are identical to the historical
    implementation. New code should call
    ``session.create_index(points, model="ann-e2lsh", ...)``.

    Args:
        family: LSH family matching the target similarity measure.
        domain: Re-hash domain ``D``; larger D lowers the ``1/D`` false-
            collision term of Theorem 4.1.
        device: Simulated GPU; a fresh one when omitted.
        host: Simulated host CPU.
        config: Engine configuration; ``count_bound`` is forced to ``m``.
        seed: Re-hash seed.
    """

    def __init__(
        self,
        family: LshFamily,
        domain: int = DEFAULT_DOMAIN,
        device: Device | None = None,
        host: HostCpu | None = None,
        config: GenieConfig | None = None,
        seed: int = 0,
    ):
        from repro.api.models import AnnModel
        from repro.api.session import GenieSession

        self._model = AnnModel(family, domain=domain, seed=seed)
        self.session = GenieSession(device=device, host=host)
        self.handle = self.session.declare_index(
            self._model, name="tau-ann", config=config or GenieConfig()
        )
        self.transformer = self._model.transformer

    @property
    def engine(self) -> GenieEngine:
        """The underlying engine (kept for experiment/profiling code)."""
        return self.handle.engine

    @property
    def num_functions(self) -> int:
        """Number of LSH functions ``m``."""
        return self._model.num_functions

    def fit(self, points: np.ndarray) -> "TauAnnIndex":
        """Hash, re-hash and index the data points."""
        self.handle.fit(points)
        return self

    def query(self, query_points: np.ndarray, k: int | None = None) -> list[TopKResult]:
        """Batched tau-ANN search; top result per query is the tau-ANN."""
        if not self.handle.fitted:
            raise QueryError("index must be fitted before querying")
        return self.handle.search(query_points, k=k).results

    def search(self, query_points: np.ndarray, k: int | None = None):
        """Search and attach similarity estimates.

        Returns:
            A list of ``(ids, counts, estimates)`` triples, where
            ``estimates = counts / m`` is the MLE of the similarity
            (Eqn. 7).
        """
        if not self.handle.fitted:
            raise QueryError("index must be fitted before querying")
        return self.handle.search(query_points, k=k).payload

    @property
    def points(self) -> np.ndarray:
        """The indexed points (used by evaluations to compute true distances)."""
        return self._model.points
