"""LSH front-end for GENIE: families, re-hashing, tau-ANN search, theory.

Typical use::

    from repro.lsh import E2Lsh, TauAnnIndex, practical_m

    family = E2Lsh(num_functions=practical_m(), dim=128, width=4.0)
    index = TauAnnIndex(family, domain=67).fit(points)
    results = index.query(query_points, k=10)
"""

from repro.lsh.e2lsh import E2Lsh, psi_l1, psi_l2
from repro.lsh.family import LshFamily
from repro.lsh.minhash import MinHash, jaccard
from repro.lsh.murmur import hash_combine, murmur3_32, murmur3_int64
from repro.lsh.rbh import RandomBinningHash, estimate_kernel_width, laplacian_kernel
from repro.lsh.rehash import ReHasher
from repro.lsh.simhash import SimHash, angular_similarity
from repro.lsh.tann import (
    PAPER_DELTA,
    PAPER_EPS,
    fig8_curve,
    hoeffding_m,
    practical_m,
    required_m,
    similarity_estimate,
    success_probability,
    tau_from_eps,
)
from repro.lsh.transform import DEFAULT_DOMAIN, LshTransformer, TauAnnIndex

__all__ = [
    "LshFamily",
    "E2Lsh",
    "psi_l1",
    "psi_l2",
    "RandomBinningHash",
    "laplacian_kernel",
    "estimate_kernel_width",
    "MinHash",
    "jaccard",
    "SimHash",
    "angular_similarity",
    "ReHasher",
    "murmur3_32",
    "murmur3_int64",
    "hash_combine",
    "LshTransformer",
    "TauAnnIndex",
    "DEFAULT_DOMAIN",
    "hoeffding_m",
    "required_m",
    "practical_m",
    "success_probability",
    "fig8_curve",
    "similarity_estimate",
    "tau_from_eps",
    "PAPER_EPS",
    "PAPER_DELTA",
]
