"""Host-CPU cost accounting for the CPU-side baselines and pipeline steps.

CPU competitors in the paper (CPU-Idx, CPU-LSH, AppGram) and GENIE's own
host-side steps (index build, final merge in multi-loading) are charged
against this model so all reported numbers live on one simulated clock.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.gpu.specs import I7_3820, HostSpec
from repro.gpu.stats import StageTimings


class HostCpu:
    """A simulated host CPU with staged timing.

    Args:
        spec: CPU description; defaults to the i7-3820-class profile.
        cores: Cores the workload may use (paper baselines are
            single-threaded, so 1 by default).
    """

    def __init__(self, spec: HostSpec = I7_3820, cores: int = 1):
        if cores < 1 or cores > spec.num_cores:
            raise ValueError(f"cores must be in [1, {spec.num_cores}]")
        self.spec = spec
        self.cores = cores
        self.timings = StageTimings()
        self._stage = "match"

    @contextmanager
    def stage(self, name: str):
        """Scope subsequent charges to pipeline stage ``name``."""
        previous = self._stage
        self._stage = name
        try:
            yield self
        finally:
            self._stage = previous

    def charge_ops(self, n_ops: float, stage: str | None = None) -> float:
        """Charge ``n_ops`` simple operations; returns the seconds added."""
        if n_ops < 0:
            raise ValueError("negative op count")
        seconds = n_ops / (self.spec.ops_per_second * self.cores)
        self.timings.add(stage or self._stage, seconds)
        return seconds

    def charge_bytes(self, nbytes: float, stage: str | None = None) -> float:
        """Charge a memory-bandwidth-bound pass over ``nbytes``."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        seconds = nbytes / self.spec.mem_bandwidth
        self.timings.add(stage or self._stage, seconds)
        return seconds

    def charge_seconds(self, seconds: float, stage: str | None = None) -> None:
        """Charge raw simulated seconds."""
        self.timings.add(stage or self._stage, seconds)

    def reset_timings(self) -> None:
        """Zero all stage timers."""
        self.timings = StageTimings()
