"""Simulated-GPU substrate: device model, memory, kernels, cost accounting.

The paper runs on a real NVIDIA Titan X; this package provides the
functional-plus-analytic simulator that stands in for it (see DESIGN.md for
the substitution argument). Public entry points:

* :class:`~repro.gpu.device.Device` — the device itself,
* :class:`~repro.gpu.host.HostCpu` — the paired host CPU,
* :class:`~repro.gpu.kernel.KernelLaunch` — how kernels describe their cost,
* :mod:`~repro.gpu.specs` — hardware profiles and the cycle-cost model.
"""

from repro.gpu.device import Device
from repro.gpu.host import HostCpu
from repro.gpu.kernel import KernelLaunch, uniform_launch
from repro.gpu.memory import DeviceArray, MemoryManager
from repro.gpu.specs import DEFAULT_COSTS, I7_3820, TITAN_X, CostModel, DeviceSpec, HostSpec, small_device
from repro.gpu.stats import STAGES, KernelStats, StageTimings

__all__ = [
    "Device",
    "HostCpu",
    "KernelLaunch",
    "uniform_launch",
    "DeviceArray",
    "MemoryManager",
    "DeviceSpec",
    "HostSpec",
    "CostModel",
    "TITAN_X",
    "I7_3820",
    "DEFAULT_COSTS",
    "small_device",
    "KernelStats",
    "StageTimings",
    "STAGES",
]
