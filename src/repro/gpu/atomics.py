"""Atomic-operation cost model.

GENIE's match kernel increments per-object counters with ``atomicAdd``.
The dominant cost driver is *address contention*: when many lanes of a warp
hit the same counter, hardware serializes the updates. The helpers here
estimate that serialization from aggregate counts, so vectorized kernels can
charge a faithful cost without simulating each thread.
"""

from __future__ import annotations

import numpy as np


def conflict_count(n_ops: int, n_targets: int, warp_size: int) -> float:
    """Expected serialized retries for ``n_ops`` atomics over ``n_targets``.

    Under a uniform-target approximation, a warp of ``w`` lanes issuing
    atomics to ``t`` distinct addresses sees about ``w / min(w, t)`` rounds
    of serialization; every round beyond the first is a conflict retry for
    each of its participants.

    Args:
        n_ops: Total atomic operations issued.
        n_targets: Distinct addresses receiving them (>= 1).
        warp_size: Lanes per warp.

    Returns:
        Expected number of serialized retries (0 when targets are plentiful).
    """
    if n_ops <= 0:
        return 0.0
    n_targets = max(1, int(n_targets))
    lanes_per_target = warp_size / min(warp_size, n_targets)
    extra_rounds = lanes_per_target - 1.0
    return float(n_ops) * extra_rounds / warp_size * min(warp_size, lanes_per_target)


def conflicts_from_histogram(hits_per_target: np.ndarray, warp_size: int) -> float:
    """Conflict estimate from an exact per-target hit histogram.

    Args:
        hits_per_target: Number of atomic hits each address received.
        warp_size: Lanes per warp.

    Returns:
        Expected serialized retries. Each address with ``h`` hits contributes
        roughly ``h * (min(h, warp_size) - 1) / warp_size`` retries: its hits
        arrive spread over warps, and within a warp they serialize.
    """
    hits = np.asarray(hits_per_target, dtype=np.float64)
    hits = hits[hits > 0]
    if hits.size == 0:
        return 0.0
    per_warp = np.minimum(hits, warp_size)
    return float(np.sum(hits * (per_warp - 1.0) / warp_size))
