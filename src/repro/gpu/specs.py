"""Hardware specifications for the simulated GPU and host CPU.

The paper evaluates GENIE on an NVIDIA GeForce GTX Titan X (12 GB, CUDA 7)
paired with an Intel Core i7-3820. We reproduce that pairing as two small
spec dataclasses. The numbers below are the published characteristics of
those parts; the simulator only uses them through the analytic cost model in
:mod:`repro.gpu.device`, so what matters for reproduction is their *ratios*
(GPU memory bandwidth ~15x CPU bandwidth, thousands of GPU lanes versus a
handful of CPU cores), not the absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass

GIB = 1024**3


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU.

    Attributes:
        name: Human-readable device name.
        num_sms: Number of streaming multiprocessors.
        cores_per_sm: CUDA cores per SM; bounds how many threads of a block
            make progress per cycle.
        clock_hz: Core clock in Hz.
        warp_size: Threads per warp (SIMD width).
        max_threads_per_block: Hard CUDA limit on block size.
        global_mem_bytes: Global memory capacity.
        mem_bandwidth: Global memory bandwidth in bytes/second.
        pcie_bandwidth: Host<->device transfer bandwidth in bytes/second.
        constant_mem_bytes: Constant memory capacity (GPU-LSH stores its
            random vectors here, which caps its hash-function count).
    """

    name: str = "sim-titan-x"
    num_sms: int = 24
    cores_per_sm: int = 128
    clock_hz: float = 1.0e9
    warp_size: int = 32
    max_threads_per_block: int = 1024
    global_mem_bytes: int = 12 * GIB
    mem_bandwidth: float = 336.5e9
    pcie_bandwidth: float = 12.0e9
    constant_mem_bytes: int = 64 * 1024

    @property
    def total_cores(self) -> int:
        """Total CUDA cores across all SMs."""
        return self.num_sms * self.cores_per_sm


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle costs used by the analytic timing model.

    These are coarse but deliberately so: the paper's claims are about
    *relative* costs (one hash-table scan versus a multi-pass k-selection,
    coalesced versus scattered access, atomic contention on hot counters),
    and each of those effects maps onto one knob here.
    """

    cycles_per_op: float = 1.0
    cycles_per_mem_transaction: float = 4.0
    atomic_base_cycles: float = 8.0
    atomic_conflict_cycles: float = 24.0
    divergence_penalty_cycles: float = 16.0
    mem_transaction_bytes: int = 128

    def transactions(self, nbytes: float, coalesced: bool = True) -> float:
        """Number of memory transactions needed to move ``nbytes``.

        Uncoalesced access wastes most of each 128-byte transaction; the
        model charges one transaction per 4-byte word in that case.
        """
        if nbytes <= 0:
            return 0.0
        if coalesced:
            return max(1.0, nbytes / self.mem_transaction_bytes)
        return max(1.0, nbytes / 4.0)


@dataclass(frozen=True)
class HostSpec:
    """Static description of the simulated host CPU (Core i7-3820 class).

    Attributes:
        name: Human-readable name.
        num_cores: Physical cores. CPU baselines in the paper are
            single-threaded, so they use one core unless stated otherwise.
        ops_per_second: Simple operations retired per second per core.
        mem_bandwidth: Main-memory bandwidth in bytes/second.
    """

    name: str = "sim-i7-3820"
    num_cores: int = 4
    ops_per_second: float = 2.0e9
    mem_bandwidth: float = 25.0e9


#: Default device used throughout examples, tests and benchmarks.
TITAN_X = DeviceSpec()

#: Default host CPU paired with :data:`TITAN_X`.
I7_3820 = HostSpec()

#: Default cycle-cost model.
DEFAULT_COSTS = CostModel()


def small_device(mem_bytes: int = 64 * 1024**2) -> DeviceSpec:
    """A deliberately tiny device for tests that exercise memory limits.

    Args:
        mem_bytes: Global memory capacity to give the toy device.

    Returns:
        A :class:`DeviceSpec` identical to :data:`TITAN_X` except for a
        small global memory.
    """
    return DeviceSpec(name="sim-small", global_mem_bytes=int(mem_bytes))
