"""Counters and timing reports produced by the simulated device.

Two layers of accounting exist:

* :class:`KernelStats` — raw operation counts for a single kernel launch
  (memory transactions, atomics, divergence events, ...).
* :class:`StageTimings` — wall-clock-equivalent simulated seconds grouped by
  pipeline stage (``index_build``, ``index_transfer``, ``query_transfer``,
  ``match``, ``select``), mirroring Table I of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Stage names used by the GENIE pipeline, in Table-I order.
STAGES = ("index_build", "index_transfer", "query_transfer", "match", "select")


@dataclass
class KernelStats:
    """Operation counts accumulated during one kernel launch.

    Attributes:
        name: Kernel name, for reporting.
        blocks: Number of thread blocks launched.
        ops: Plain arithmetic/compare operations executed.
        bytes_read: Bytes read from global memory.
        bytes_written: Bytes written to global memory.
        uncoalesced_bytes: Subset of traffic that was scattered (charged at
            one transaction per word).
        atomic_ops: Atomic read-modify-write operations issued.
        atomic_conflicts: Extra serialized retries caused by address
            contention.
        divergent_warps: Warp-serialization events from branch divergence.
        elapsed_seconds: Simulated execution time assigned by the device.
    """

    name: str = ""
    blocks: int = 0
    ops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    uncoalesced_bytes: float = 0.0
    atomic_ops: float = 0.0
    atomic_conflicts: float = 0.0
    divergent_warps: float = 0.0
    elapsed_seconds: float = 0.0

    def merge(self, other: "KernelStats") -> None:
        """Accumulate another launch's counters into this one."""
        self.blocks += other.blocks
        self.ops += other.ops
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.uncoalesced_bytes += other.uncoalesced_bytes
        self.atomic_ops += other.atomic_ops
        self.atomic_conflicts += other.atomic_conflicts
        self.divergent_warps += other.divergent_warps
        self.elapsed_seconds += other.elapsed_seconds

    @property
    def total_bytes(self) -> float:
        """Total global-memory traffic of the launch."""
        return self.bytes_read + self.bytes_written


@dataclass
class StageTimings:
    """Simulated seconds spent in each pipeline stage.

    The mapping mirrors Table I of the paper; unknown stage names are
    allowed so experiments can add their own (e.g. ``verify`` for the
    DBLP edit-distance verification).
    """

    seconds: dict = field(default_factory=dict)

    def add(self, stage: str, seconds: float) -> None:
        """Charge ``seconds`` of simulated time to ``stage``."""
        if seconds < 0:
            raise ValueError(f"negative stage time: {seconds}")
        self.seconds[stage] = self.seconds.get(stage, 0.0) + float(seconds)

    def get(self, stage: str) -> float:
        """Simulated seconds charged to ``stage`` (0.0 if never charged)."""
        return self.seconds.get(stage, 0.0)

    @property
    def total(self) -> float:
        """Total simulated seconds across all stages."""
        return sum(self.seconds.values())

    def query_total(self) -> float:
        """Total excluding the one-off ``index_build`` stage.

        The paper excludes offline index construction from query timings;
        this helper applies the same convention.
        """
        return sum(v for k, v in self.seconds.items() if k != "index_build")

    def merge(self, other: "StageTimings") -> None:
        """Accumulate another report into this one."""
        for stage, seconds in other.seconds.items():
            self.add(stage, seconds)

    def scale(self, factor: float) -> None:
        """Multiply every stage's seconds by ``factor`` (>= 0).

        Models a uniformly degraded device (a ``"slow"`` fault in
        :mod:`repro.replica`): the work is unchanged, the timeline it
        occupies stretches.
        """
        if factor < 0:
            raise ValueError(f"negative scale factor: {factor}")
        for stage in self.seconds:
            self.seconds[stage] = self.seconds[stage] * float(factor)

    def copy(self) -> "StageTimings":
        """An independent copy of this report."""
        return StageTimings(seconds=dict(self.seconds))

    def as_row(self) -> dict:
        """The canonical stages as a flat dict, for table rendering."""
        row = {stage: self.get(stage) for stage in STAGES}
        for stage in self.seconds:
            if stage not in row:
                row[stage] = self.seconds[stage]
        return row


def timings_delta(before: StageTimings, after: StageTimings) -> StageTimings:
    """Per-stage difference ``after - before`` (negative deltas dropped).

    Systems snapshot their clock's timings around a call to report a
    per-call profile while the underlying clock keeps accumulating.
    """
    delta = StageTimings()
    for stage, seconds in after.seconds.items():
        diff = seconds - before.get(stage)
        if diff > 0:
            delta.add(stage, diff)
    return delta
