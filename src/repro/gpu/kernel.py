"""Kernel-launch description for the simulated device.

A kernel launch is summarized as a :class:`KernelLaunch`: per-block work-item
counts plus aggregate traffic and contention counters. The device turns this
into simulated time. Kernels in this package compute their *functional*
results with numpy on the host and describe the *cost* of the equivalent GPU
execution through this record — the "functional simulation, analytic timing"
split described in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class KernelLaunch:
    """Cost description of one kernel launch.

    Attributes:
        name: Kernel name, for profiling output.
        block_items: Work items processed by each block (one entry per
            block). Lists of different length model imbalanced blocks, which
            is what GENIE's load-balancing addresses.
        threads_per_block: Launch configuration.
        cycles_per_item: Compute cycles per work item per lane.
        bytes_read: Coalesced global-memory bytes read.
        bytes_written: Coalesced global-memory bytes written.
        uncoalesced_bytes: Scattered traffic (charged one transaction/word).
        atomic_ops: Atomic read-modify-writes issued.
        atomic_conflicts: Serialized retries from address contention.
        divergent_warps: Warp-serialization events from branch divergence.
        fixed_cycles_per_block: Setup cycles charged to every block.
    """

    name: str
    block_items: np.ndarray
    threads_per_block: int = 256
    cycles_per_item: float = 1.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    uncoalesced_bytes: float = 0.0
    atomic_ops: float = 0.0
    atomic_conflicts: float = 0.0
    divergent_warps: float = 0.0
    fixed_cycles_per_block: float = 32.0

    def __post_init__(self):
        self.block_items = np.asarray(self.block_items, dtype=np.int64)
        if self.block_items.ndim != 1:
            raise ValueError("block_items must be one-dimensional")
        if self.threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")

    @property
    def num_blocks(self) -> int:
        """Blocks in the launch grid."""
        return int(self.block_items.size)

    @property
    def total_items(self) -> int:
        """Total work items across all blocks."""
        return int(self.block_items.sum())


def uniform_launch(name: str, total_items: int, items_per_block: int, **kwargs) -> KernelLaunch:
    """Build a launch that spreads ``total_items`` over equal-sized blocks.

    Args:
        name: Kernel name.
        total_items: Total work items.
        items_per_block: Items handled by each block; the last block takes
            the remainder.
        **kwargs: Forwarded to :class:`KernelLaunch`.

    Returns:
        A :class:`KernelLaunch` with evenly split ``block_items``.
    """
    total_items = int(total_items)
    items_per_block = max(1, int(items_per_block))
    if total_items <= 0:
        return KernelLaunch(name=name, block_items=np.zeros(1, dtype=np.int64), **kwargs)
    n_full, rem = divmod(total_items, items_per_block)
    sizes = [items_per_block] * n_full
    if rem:
        sizes.append(rem)
    return KernelLaunch(name=name, block_items=np.asarray(sizes), **kwargs)
