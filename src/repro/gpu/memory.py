"""Global-memory model of the simulated device.

The memory manager tracks allocations against the device's capacity and
raises :class:`~repro.errors.GpuOutOfMemoryError` when a request would not
fit, which is what forces the multi-loading strategy (Section III-D of the
paper) and bounds the number of in-flight queries (Table IV).

:class:`DeviceArray` pairs a live numpy array with its allocation record.
The simulator is *functional*: kernels read and write the numpy payloads
directly, while the device separately charges simulated time for the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GpuAllocationError, GpuOutOfMemoryError


@dataclass
class Allocation:
    """A live region of simulated global memory."""

    ident: int
    nbytes: int
    label: str
    freed: bool = False


class MemoryManager:
    """Tracks global-memory allocations of a device.

    Args:
        capacity: Device global memory in bytes.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("memory capacity must be positive")
        self.capacity = int(capacity)
        self._used = 0
        self._peak = 0
        self._next_id = 0
        self._live: dict[int, Allocation] = {}

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def peak(self) -> int:
        """High-water mark of allocated bytes."""
        return self._peak

    @property
    def free(self) -> int:
        """Bytes still available."""
        return self.capacity - self._used

    def alloc(self, nbytes: int, label: str = "") -> Allocation:
        """Reserve ``nbytes`` of global memory.

        Raises:
            GpuOutOfMemoryError: If the request exceeds remaining capacity.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise GpuAllocationError(f"negative allocation: {nbytes}")
        if self._used + nbytes > self.capacity:
            raise GpuOutOfMemoryError(nbytes, self._used, self.capacity)
        alloc = Allocation(ident=self._next_id, nbytes=nbytes, label=label)
        self._next_id += 1
        self._live[alloc.ident] = alloc
        self._used += nbytes
        self._peak = max(self._peak, self._used)
        return alloc

    def release(self, alloc: Allocation) -> None:
        """Return an allocation's bytes to the pool.

        Raises:
            GpuAllocationError: On double free or foreign handles.
        """
        if alloc.freed or alloc.ident not in self._live:
            raise GpuAllocationError(f"double or foreign free of {alloc!r}")
        del self._live[alloc.ident]
        alloc.freed = True
        self._used -= alloc.nbytes

    def live_allocations(self) -> list[Allocation]:
        """All currently live allocations (snapshot)."""
        return list(self._live.values())


class DeviceArray:
    """A numpy array resident in simulated device memory.

    Instances are created through :meth:`repro.gpu.device.Device.to_device`
    or :meth:`~repro.gpu.device.Device.alloc_array`; they hold both the
    functional payload (``data``) and the accounting record (``allocation``).
    """

    def __init__(self, data: np.ndarray, allocation: Allocation, manager: MemoryManager):
        self.data = data
        self.allocation = allocation
        self._manager = manager

    @property
    def nbytes(self) -> int:
        """Size of the device allocation in bytes."""
        return self.allocation.nbytes

    @property
    def shape(self):
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def dtype(self):
        """Dtype of the underlying array."""
        return self.data.dtype

    def free(self) -> None:
        """Release the device allocation. The host payload becomes invalid."""
        self._manager.release(self.allocation)
        self.data = None

    @property
    def is_live(self) -> bool:
        """Whether the allocation is still held."""
        return not self.allocation.freed
