"""The simulated GPU device: launch scheduling, transfers, staged timing.

:class:`Device` combines the memory manager, the PCIe transfer model and a
block-over-SM scheduler into one object with the lifecycle of a real device:

* ``to_device`` / ``to_host`` move numpy arrays across the (simulated) bus
  and charge transfer time,
* ``launch`` schedules a :class:`~repro.gpu.kernel.KernelLaunch` over the
  SMs and charges the slowest SM's makespan (or the bandwidth bound, if the
  launch is memory-bound),
* ``stage(name)`` scopes all charges to a pipeline stage so experiments can
  reproduce Table I's per-stage profile.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager

import numpy as np

from repro.gpu.kernel import KernelLaunch
from repro.gpu.memory import DeviceArray, MemoryManager
from repro.gpu.specs import DEFAULT_COSTS, TITAN_X, CostModel, DeviceSpec
from repro.gpu.stats import KernelStats, StageTimings


class Device:
    """A simulated GPU.

    Args:
        spec: Hardware description; defaults to the Titan-X-like profile the
            paper used.
        costs: Cycle-cost model for the analytic timer.
    """

    def __init__(self, spec: DeviceSpec = TITAN_X, costs: CostModel = DEFAULT_COSTS):
        self.spec = spec
        self.costs = costs
        self.memory = MemoryManager(spec.global_mem_bytes)
        self.timings = StageTimings()
        self.kernel_log: list[KernelStats] = []
        self._stage = "match"

    # ------------------------------------------------------------------
    # staging

    @contextmanager
    def stage(self, name: str):
        """Scope subsequent charges to pipeline stage ``name``."""
        previous = self._stage
        self._stage = name
        try:
            yield self
        finally:
            self._stage = previous

    @property
    def current_stage(self) -> str:
        """Stage currently receiving charges."""
        return self._stage

    def charge_seconds(self, seconds: float, stage: str | None = None) -> None:
        """Add raw simulated seconds to a stage (device-side fixed costs)."""
        self.timings.add(stage or self._stage, seconds)

    def reset_timings(self) -> None:
        """Zero all stage timers and the kernel log (memory state is kept)."""
        self.timings = StageTimings()
        self.kernel_log = []

    # ------------------------------------------------------------------
    # memory and transfers

    def alloc_array(self, shape, dtype, label: str = "") -> DeviceArray:
        """Allocate a zero-initialized array in device memory."""
        data = np.zeros(shape, dtype=dtype)
        alloc = self.memory.alloc(data.nbytes, label=label)
        return DeviceArray(data, alloc, self.memory)

    def to_device(self, array: np.ndarray, label: str = "", stage: str | None = None) -> DeviceArray:
        """Copy a host array to the device, charging PCIe transfer time."""
        array = np.ascontiguousarray(array)
        alloc = self.memory.alloc(array.nbytes, label=label)
        self.timings.add(stage or self._stage, array.nbytes / self.spec.pcie_bandwidth)
        return DeviceArray(array.copy(), alloc, self.memory)

    def to_host(self, darray: DeviceArray, stage: str | None = None) -> np.ndarray:
        """Copy a device array back to the host, charging transfer time."""
        self.timings.add(stage or self._stage, darray.data.nbytes / self.spec.pcie_bandwidth)
        return darray.data.copy()

    # ------------------------------------------------------------------
    # kernel execution

    def launch(self, launch: KernelLaunch, stage: str | None = None) -> KernelStats:
        """Schedule a kernel launch and charge its simulated time.

        Blocks are assigned in order to the least-loaded SM (the hardware's
        greedy block scheduler); compute time is the slowest SM's makespan.
        The launch is additionally bounded below by global-memory bandwidth.

        Returns:
            A :class:`KernelStats` record, also appended to ``kernel_log``.
        """
        # Vectorized block_cycles: passes = ceil(items / lanes), zero items
        # cost zero compute. Identical values to the scalar helper.
        lanes = min(launch.threads_per_block, self.spec.cores_per_sm)
        if lanes <= 0:
            raise ValueError("threads_per_block must be positive")
        passes = -(launch.block_items // -lanes)
        per_block = (
            np.where(launch.block_items > 0, passes.astype(np.float64), 0.0)
            * launch.cycles_per_item
            + launch.fixed_cycles_per_block
        )
        makespan = _schedule_blocks(per_block, self.spec.num_sms)

        active_sms = max(1, min(launch.num_blocks, self.spec.num_sms))
        penalty = (
            launch.atomic_ops * self.costs.atomic_base_cycles
            + launch.atomic_conflicts * self.costs.atomic_conflict_cycles
            + launch.divergent_warps * self.costs.divergence_penalty_cycles
        )
        compute_seconds = (makespan + penalty / active_sms) / self.spec.clock_hz

        coalesced = launch.bytes_read + launch.bytes_written
        transactions = self.costs.transactions(coalesced, coalesced=True)
        transactions += self.costs.transactions(launch.uncoalesced_bytes, coalesced=False)
        memory_seconds = transactions * self.costs.mem_transaction_bytes / self.spec.mem_bandwidth

        # A single block streams at roughly one SM's share of the bandwidth;
        # a launch dominated by one huge block cannot hide behind the
        # device-wide bound. This is what makes list splitting (Fig. 4 /
        # Fig. 12) pay off even for memory-bound scans.
        total_items = max(1, launch.total_items)
        max_block_bytes = coalesced * (float(launch.block_items.max()) / total_items)
        per_sm_bandwidth = self.spec.mem_bandwidth / self.spec.num_sms
        memory_seconds = max(memory_seconds, max_block_bytes / per_sm_bandwidth)

        elapsed = max(compute_seconds, memory_seconds)
        stats = KernelStats(
            name=launch.name,
            blocks=launch.num_blocks,
            ops=float(launch.total_items) * launch.cycles_per_item,
            bytes_read=launch.bytes_read,
            bytes_written=launch.bytes_written,
            uncoalesced_bytes=launch.uncoalesced_bytes,
            atomic_ops=launch.atomic_ops,
            atomic_conflicts=launch.atomic_conflicts,
            divergent_warps=launch.divergent_warps,
            elapsed_seconds=elapsed,
        )
        self.kernel_log.append(stats)
        self.timings.add(stage or self._stage, elapsed)
        return stats


def _schedule_blocks(per_block_cycles: np.ndarray, num_sms: int) -> float:
    """Greedy block-over-SM schedule; returns the makespan in cycles.

    Blocks are dispatched in launch order to the SM that frees up first,
    which is how the hardware's block scheduler behaves to a first
    approximation. A single huge block therefore dominates the makespan —
    exactly the imbalance GENIE's list-splitting fixes (Fig. 12).
    """
    if per_block_cycles.size == 0:
        return 0.0
    if per_block_cycles.size <= num_sms:
        return float(per_block_cycles.max())
    loads = [0.0] * num_sms
    heapq.heapify(loads)
    for cycles in per_block_cycles:
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + float(cycles))
    return max(loads)
