"""Warp-level cost helpers: block timing, coalescing, branch divergence.

These small functions translate "what a kernel did" into cycle counts.
GENIE's design arguments (Section III-E of the paper) are exactly about
these effects: postings-list scans are coalesced and uniform, while
priority-queue style competitors suffer scattered access and divergence.
"""

from __future__ import annotations

import math

from repro.gpu.specs import CostModel, DeviceSpec


def block_cycles(
    n_items: int,
    cycles_per_item: float,
    threads_per_block: int,
    spec: DeviceSpec,
) -> float:
    """Compute cycles for one block processing ``n_items`` uniform items.

    A block of T threads runs on one SM, which retires at most
    ``cores_per_sm`` lanes per cycle; items beyond the active lane count are
    processed in additional passes.

    Args:
        n_items: Work items (e.g. postings entries) assigned to the block.
        cycles_per_item: Cost of processing one item on one lane.
        threads_per_block: Threads the block was launched with.
        spec: Device the block runs on.

    Returns:
        Estimated cycles for the block (0 for empty blocks).
    """
    if n_items <= 0:
        return 0.0
    lanes = min(threads_per_block, spec.cores_per_sm)
    if lanes <= 0:
        raise ValueError("threads_per_block must be positive")
    passes = math.ceil(n_items / lanes)
    return passes * cycles_per_item


def coalesced_transactions(n_words: int, costs: CostModel, word_bytes: int = 4) -> float:
    """Memory transactions for a contiguous (coalesced) access pattern."""
    return costs.transactions(n_words * word_bytes, coalesced=True)


def scattered_transactions(n_words: int, costs: CostModel, word_bytes: int = 4) -> float:
    """Memory transactions for a fully scattered access pattern."""
    return costs.transactions(n_words * word_bytes, coalesced=False)


def divergence_events(n_threads: int, taken_fraction: float, warp_size: int) -> float:
    """Expected warp-serialization events for a data-dependent branch.

    A warp serializes when some but not all of its lanes take a branch.
    With lanes taking the branch independently with probability ``p``, a
    warp of ``w`` lanes diverges with probability ``1 - p**w - (1-p)**w``.

    Args:
        n_threads: Threads evaluating the branch.
        taken_fraction: Probability that a single lane takes the branch.
        warp_size: Lanes per warp.

    Returns:
        Expected number of divergent warps (possibly fractional).
    """
    p = min(max(float(taken_fraction), 0.0), 1.0)
    if n_threads <= 0:
        return 0.0
    n_warps = math.ceil(n_threads / warp_size)
    p_diverge = 1.0 - p**warp_size - (1.0 - p) ** warp_size
    return n_warps * p_diverge
