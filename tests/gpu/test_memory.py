"""Tests for the global-memory manager and DeviceArray."""

import numpy as np
import pytest

from repro.errors import GpuAllocationError, GpuOutOfMemoryError
from repro.gpu.device import Device
from repro.gpu.memory import MemoryManager
from repro.gpu.specs import small_device


class TestMemoryManager:
    def test_alloc_tracks_usage(self):
        mm = MemoryManager(1000)
        mm.alloc(400)
        assert mm.used == 400
        assert mm.free == 600

    def test_oom_raises_with_details(self):
        mm = MemoryManager(1000)
        mm.alloc(800)
        with pytest.raises(GpuOutOfMemoryError) as info:
            mm.alloc(300)
        assert info.value.requested == 300
        assert info.value.used == 800
        assert info.value.capacity == 1000

    def test_release_returns_bytes(self):
        mm = MemoryManager(1000)
        a = mm.alloc(600)
        mm.release(a)
        assert mm.used == 0
        mm.alloc(1000)  # now fits

    def test_double_free_rejected(self):
        mm = MemoryManager(1000)
        a = mm.alloc(100)
        mm.release(a)
        with pytest.raises(GpuAllocationError):
            mm.release(a)

    def test_negative_alloc_rejected(self):
        mm = MemoryManager(1000)
        with pytest.raises(GpuAllocationError):
            mm.alloc(-1)

    def test_peak_high_water_mark(self):
        mm = MemoryManager(1000)
        a = mm.alloc(700)
        mm.release(a)
        mm.alloc(100)
        assert mm.peak == 700

    def test_exact_fit_allowed(self):
        mm = MemoryManager(1000)
        mm.alloc(1000)
        assert mm.free == 0

    def test_live_allocations_snapshot(self):
        mm = MemoryManager(1000)
        a = mm.alloc(10, label="x")
        b = mm.alloc(20, label="y")
        mm.release(a)
        live = mm.live_allocations()
        assert [alloc.label for alloc in live] == ["y"]
        assert live[0] is b

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryManager(0)


class TestDeviceArray:
    def test_to_device_roundtrip(self):
        device = Device()
        arr = np.arange(100, dtype=np.int32)
        darr = device.to_device(arr)
        assert np.array_equal(device.to_host(darr), arr)

    def test_to_device_copies(self):
        device = Device()
        arr = np.arange(10, dtype=np.int64)
        darr = device.to_device(arr)
        arr[0] = 999
        assert darr.data[0] == 0

    def test_free_releases_device_memory(self):
        device = Device(small_device(10_000))
        darr = device.to_device(np.zeros(1000, dtype=np.int64))
        used = device.memory.used
        darr.free()
        assert device.memory.used == used - 8000
        assert not darr.is_live

    def test_alloc_array_zeroed(self):
        device = Device()
        darr = device.alloc_array((4, 4), np.float64)
        assert darr.shape == (4, 4)
        assert darr.dtype == np.float64
        assert not darr.data.any()

    def test_oom_on_small_device(self):
        device = Device(small_device(1000))
        with pytest.raises(GpuOutOfMemoryError):
            device.to_device(np.zeros(1000, dtype=np.int64))
