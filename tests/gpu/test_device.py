"""Tests for the Device: launch timing, scheduling, staging, transfers."""

import numpy as np
import pytest

from repro.gpu.device import Device, _schedule_blocks
from repro.gpu.kernel import KernelLaunch, uniform_launch
from repro.gpu.specs import DeviceSpec


def _launch(block_items, **kwargs):
    return KernelLaunch(name="t", block_items=np.asarray(block_items), **kwargs)


class TestScheduler:
    def test_empty(self):
        assert _schedule_blocks(np.array([]), 4) == 0.0

    def test_fewer_blocks_than_sms_is_max(self):
        assert _schedule_blocks(np.array([5.0, 9.0, 2.0]), 24) == 9.0

    def test_greedy_balancing(self):
        # 8 equal blocks on 4 SMs -> 2 per SM.
        assert _schedule_blocks(np.full(8, 3.0), 4) == 6.0

    def test_one_giant_block_dominates(self):
        makespan = _schedule_blocks(np.array([100.0] + [1.0] * 50), 8)
        assert makespan == pytest.approx(100.0, rel=0.2)


class TestLaunchTiming:
    def test_elapsed_positive(self):
        device = Device()
        stats = device.launch(_launch([100, 100], bytes_read=800))
        assert stats.elapsed_seconds > 0.0

    def test_more_work_more_time(self):
        device = Device()
        small = device.launch(uniform_launch("a", 10_000, 256)).elapsed_seconds
        large = device.launch(uniform_launch("b", 10_000_000, 256)).elapsed_seconds
        assert large > small

    def test_memory_bound_launch(self):
        device = Device()
        # Tiny compute, huge traffic: elapsed must respect the bandwidth.
        gigabyte = 1024**3
        stats = device.launch(
            uniform_launch("mem", 1000, 10, cycles_per_item=0.001, bytes_read=gigabyte)
        )
        assert stats.elapsed_seconds >= gigabyte / device.spec.mem_bandwidth

    def test_single_block_capped_by_per_sm_bandwidth(self):
        device = Device()
        nbytes = 10 * 1024**2
        one_block = device.launch(
            _launch([1_000_000], cycles_per_item=0.001, bytes_read=nbytes)
        ).elapsed_seconds
        per_sm = device.spec.mem_bandwidth / device.spec.num_sms
        assert one_block >= nbytes / per_sm

    def test_split_blocks_beat_one_giant_block(self):
        device = Device()
        total = 1_000_000
        giant = device.launch(_launch([total], bytes_read=total * 4)).elapsed_seconds
        split = device.launch(
            uniform_launch("s", total, 4096, bytes_read=total * 4)
        ).elapsed_seconds
        assert split < giant

    def test_uncoalesced_traffic_slower(self):
        device = Device()
        nbytes = 4 * 1024**2
        coalesced = device.launch(
            uniform_launch("c", 1000, 100, bytes_read=nbytes)
        ).elapsed_seconds
        scattered = device.launch(
            uniform_launch("u", 1000, 100, uncoalesced_bytes=nbytes)
        ).elapsed_seconds
        assert scattered > coalesced

    def test_atomic_conflicts_add_time(self):
        device = Device()
        quiet = device.launch(uniform_launch("q", 10_000, 256)).elapsed_seconds
        contended = device.launch(
            uniform_launch("a", 10_000, 256, atomic_conflicts=1e6)
        ).elapsed_seconds
        assert contended > quiet

    def test_kernel_log_grows(self):
        device = Device()
        device.launch(_launch([10]))
        device.launch(_launch([10]))
        assert len(device.kernel_log) == 2


class TestStaging:
    def test_stage_scoping(self):
        device = Device()
        with device.stage("select"):
            device.launch(_launch([100]))
        assert device.timings.get("select") > 0.0
        assert device.timings.get("match") == 0.0

    def test_stage_nesting_restores(self):
        device = Device()
        with device.stage("a"):
            with device.stage("b"):
                pass
            assert device.current_stage == "a"
        assert device.current_stage == "match"

    def test_explicit_stage_argument_wins(self):
        device = Device()
        device.launch(_launch([100]), stage="index_transfer")
        assert device.timings.get("index_transfer") > 0.0

    def test_transfer_charges_pcie_time(self):
        device = Device()
        arr = np.zeros(3_000_000, dtype=np.int32)
        device.to_device(arr, stage="index_transfer")
        expected = arr.nbytes / device.spec.pcie_bandwidth
        assert device.timings.get("index_transfer") == pytest.approx(expected)

    def test_reset_timings(self):
        device = Device()
        device.launch(_launch([100]))
        device.reset_timings()
        assert device.timings.total == 0.0
        assert device.kernel_log == []

    def test_slow_pcie_slows_transfer(self):
        fast = Device(DeviceSpec(pcie_bandwidth=16e9))
        slow = Device(DeviceSpec(pcie_bandwidth=1e9))
        arr = np.zeros(1_000_000, dtype=np.int64)
        fast.to_device(arr)
        slow.to_device(arr)
        assert slow.timings.total > fast.timings.total
