"""Tests for KernelStats and StageTimings."""

import pytest

from repro.gpu.stats import STAGES, KernelStats, StageTimings, timings_delta


class TestKernelStats:
    def test_merge_accumulates(self):
        a = KernelStats(name="k", blocks=2, ops=10, bytes_read=100, elapsed_seconds=1.0)
        b = KernelStats(name="k", blocks=3, ops=5, bytes_written=50, elapsed_seconds=0.5)
        a.merge(b)
        assert a.blocks == 5
        assert a.ops == 15
        assert a.total_bytes == 150
        assert a.elapsed_seconds == 1.5

    def test_total_bytes(self):
        s = KernelStats(bytes_read=30, bytes_written=12)
        assert s.total_bytes == 42


class TestStageTimings:
    def test_add_and_get(self):
        t = StageTimings()
        t.add("match", 1.0)
        t.add("match", 0.5)
        assert t.get("match") == 1.5
        assert t.get("select") == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StageTimings().add("match", -1.0)

    def test_total_and_query_total_exclude_build(self):
        t = StageTimings()
        t.add("index_build", 10.0)
        t.add("match", 2.0)
        t.add("select", 1.0)
        assert t.total == 13.0
        assert t.query_total() == 3.0

    def test_merge(self):
        a = StageTimings()
        a.add("match", 1.0)
        b = StageTimings()
        b.add("match", 2.0)
        b.add("select", 3.0)
        a.merge(b)
        assert a.get("match") == 3.0
        assert a.get("select") == 3.0

    def test_copy_is_independent(self):
        a = StageTimings()
        a.add("match", 1.0)
        b = a.copy()
        b.add("match", 1.0)
        assert a.get("match") == 1.0

    def test_as_row_contains_canonical_stages(self):
        t = StageTimings()
        t.add("verify", 4.0)
        row = t.as_row()
        for stage in STAGES:
            assert stage in row
        assert row["verify"] == 4.0

    def test_custom_stage_names_allowed(self):
        t = StageTimings()
        t.add("result_merge", 0.25)
        assert t.get("result_merge") == 0.25


class TestTimingsDelta:
    def test_delta_reports_only_new_charges(self):
        before = StageTimings()
        before.add("match", 1.0)
        after = before.copy()
        after.add("match", 0.5)
        after.add("select", 0.2)
        delta = timings_delta(before, after)
        assert delta.get("match") == pytest.approx(0.5)
        assert delta.get("select") == pytest.approx(0.2)

    def test_empty_delta(self):
        t = StageTimings()
        t.add("match", 1.0)
        assert timings_delta(t, t.copy()).total == 0.0
