"""Tests for device/host specs and the cycle-cost model."""

import pytest

from repro.gpu.specs import DEFAULT_COSTS, I7_3820, TITAN_X, CostModel, DeviceSpec, small_device


class TestDeviceSpec:
    def test_default_is_titan_x_class(self):
        assert TITAN_X.global_mem_bytes == 12 * 1024**3
        assert TITAN_X.warp_size == 32
        assert TITAN_X.max_threads_per_block == 1024

    def test_total_cores(self):
        assert TITAN_X.total_cores == TITAN_X.num_sms * TITAN_X.cores_per_sm

    def test_spec_is_frozen(self):
        with pytest.raises(AttributeError):
            TITAN_X.num_sms = 1

    def test_small_device_shrinks_only_memory(self):
        tiny = small_device(1024)
        assert tiny.global_mem_bytes == 1024
        assert tiny.num_sms == TITAN_X.num_sms

    def test_custom_spec(self):
        spec = DeviceSpec(num_sms=2, cores_per_sm=64)
        assert spec.total_cores == 128

    def test_host_spec_defaults(self):
        assert I7_3820.num_cores >= 1
        assert I7_3820.ops_per_second > 0


class TestCostModel:
    def test_coalesced_transactions_pack_the_bus(self):
        # 1280 bytes in 128-byte transactions = 10.
        assert DEFAULT_COSTS.transactions(1280, coalesced=True) == 10

    def test_uncoalesced_transactions_per_word(self):
        # 1280 bytes scattered = one transaction per 4-byte word.
        assert DEFAULT_COSTS.transactions(1280, coalesced=False) == 320

    def test_zero_bytes_cost_nothing(self):
        assert DEFAULT_COSTS.transactions(0) == 0.0

    def test_tiny_transfer_rounds_up_to_one_transaction(self):
        assert DEFAULT_COSTS.transactions(4, coalesced=True) == 1.0

    def test_uncoalesced_at_least_as_expensive(self):
        model = CostModel()
        for nbytes in (4, 128, 1000, 4096):
            assert model.transactions(nbytes, coalesced=False) >= model.transactions(
                nbytes, coalesced=True
            )
