"""Tests for warp-level cost helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.specs import DEFAULT_COSTS, TITAN_X
from repro.gpu.warp import (
    block_cycles,
    coalesced_transactions,
    divergence_events,
    scattered_transactions,
)


class TestBlockCycles:
    def test_empty_block_is_free(self):
        assert block_cycles(0, 4.0, 256, TITAN_X) == 0.0

    def test_one_pass_when_items_fit_lanes(self):
        # 128 lanes on an SM; 100 items, 256-thread block -> one pass.
        assert block_cycles(100, 4.0, 256, TITAN_X) == 4.0

    def test_serial_passes_beyond_lanes(self):
        # 1280 items over 128 lanes -> 10 passes.
        assert block_cycles(1280, 2.0, 256, TITAN_X) == 20.0

    def test_small_blocks_use_fewer_lanes(self):
        # 32-thread block only keeps 32 lanes busy.
        assert block_cycles(64, 1.0, 32, TITAN_X) == 2.0

    def test_invalid_threads_rejected(self):
        with pytest.raises(ValueError):
            block_cycles(10, 1.0, 0, TITAN_X)

    @given(st.integers(1, 10**6), st.integers(1, 1024))
    def test_monotone_in_items(self, n_items, threads):
        smaller = block_cycles(n_items, 1.0, threads, TITAN_X)
        larger = block_cycles(n_items + 1, 1.0, threads, TITAN_X)
        assert larger >= smaller


class TestTransactions:
    def test_scattered_never_cheaper(self):
        for words in (1, 32, 1000):
            assert scattered_transactions(words, DEFAULT_COSTS) >= coalesced_transactions(
                words, DEFAULT_COSTS
            )

    def test_coalesced_words_per_transaction(self):
        # 32 4-byte words fill one 128-byte transaction.
        assert coalesced_transactions(32, DEFAULT_COSTS) == 1.0


class TestDivergence:
    def test_uniform_branch_never_diverges(self):
        assert divergence_events(1024, 0.0, 32) == 0.0
        assert divergence_events(1024, 1.0, 32) == 0.0

    def test_mixed_branch_diverges(self):
        assert divergence_events(1024, 0.5, 32) > 0.0

    def test_zero_threads(self):
        assert divergence_events(0, 0.5, 32) == 0.0

    @given(st.floats(0.0, 1.0), st.integers(1, 10_000))
    def test_bounded_by_warp_count(self, p, n_threads):
        events = divergence_events(n_threads, p, 32)
        n_warps = -(-n_threads // 32)
        assert 0.0 <= events <= n_warps

    def test_rare_branch_low_divergence(self):
        # A branch taken ~1e-6 of the time rarely splits a warp.
        rare = divergence_events(10_000, 1e-6, 32)
        common = divergence_events(10_000, 0.5, 32)
        assert rare < common / 10
