"""Tests for KernelLaunch and uniform_launch."""

import numpy as np
import pytest

from repro.gpu.kernel import KernelLaunch, uniform_launch


class TestKernelLaunch:
    def test_basic_properties(self):
        launch = KernelLaunch(name="k", block_items=np.array([10, 20, 30]))
        assert launch.num_blocks == 3
        assert launch.total_items == 60

    def test_two_dimensional_items_rejected(self):
        with pytest.raises(ValueError):
            KernelLaunch(name="k", block_items=np.zeros((2, 2)))

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            KernelLaunch(name="k", block_items=np.array([1]), threads_per_block=0)

    def test_items_coerced_to_int64(self):
        launch = KernelLaunch(name="k", block_items=[1.0, 2.0])
        assert launch.block_items.dtype == np.int64


class TestUniformLaunch:
    def test_even_split(self):
        launch = uniform_launch("k", 100, 25)
        assert list(launch.block_items) == [25, 25, 25, 25]

    def test_remainder_block(self):
        launch = uniform_launch("k", 105, 25)
        assert list(launch.block_items) == [25, 25, 25, 25, 5]

    def test_zero_items_yields_empty_block(self):
        launch = uniform_launch("k", 0, 25)
        assert launch.total_items == 0
        assert launch.num_blocks == 1

    def test_kwargs_forwarded(self):
        launch = uniform_launch("k", 10, 5, bytes_read=99.0, cycles_per_item=7.0)
        assert launch.bytes_read == 99.0
        assert launch.cycles_per_item == 7.0

    def test_items_per_block_floor(self):
        launch = uniform_launch("k", 10, 0)  # clamped to 1 item per block
        assert launch.num_blocks == 10
