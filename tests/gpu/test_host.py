"""Tests for the simulated host CPU."""

import pytest

from repro.gpu.host import HostCpu
from repro.gpu.specs import HostSpec


class TestHostCpu:
    def test_charge_ops_time(self):
        host = HostCpu()
        seconds = host.charge_ops(host.spec.ops_per_second)
        assert seconds == pytest.approx(1.0)
        assert host.timings.get("match") == pytest.approx(1.0)

    def test_charge_bytes_time(self):
        host = HostCpu()
        seconds = host.charge_bytes(host.spec.mem_bandwidth / 2)
        assert seconds == pytest.approx(0.5)

    def test_multicore_speedup(self):
        single = HostCpu(cores=1)
        quad = HostCpu(cores=4)
        assert quad.charge_ops(1e9) == pytest.approx(single.charge_ops(1e9) / 4)

    def test_invalid_cores_rejected(self):
        with pytest.raises(ValueError):
            HostCpu(cores=0)
        with pytest.raises(ValueError):
            HostCpu(HostSpec(num_cores=2), cores=3)

    def test_negative_charges_rejected(self):
        host = HostCpu()
        with pytest.raises(ValueError):
            host.charge_ops(-1)
        with pytest.raises(ValueError):
            host.charge_bytes(-1)

    def test_stage_scoping(self):
        host = HostCpu()
        with host.stage("verify"):
            host.charge_ops(100)
        host.charge_ops(100)
        assert host.timings.get("verify") > 0
        assert host.timings.get("match") > 0

    def test_reset(self):
        host = HostCpu()
        host.charge_ops(100)
        host.reset_timings()
        assert host.timings.total == 0.0
