"""Tests for the atomic-contention estimators."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.atomics import conflict_count, conflicts_from_histogram


class TestConflictCount:
    def test_no_ops_no_conflicts(self):
        assert conflict_count(0, 10, 32) == 0.0

    def test_plentiful_targets_no_conflicts(self):
        assert conflict_count(1000, 10_000, 32) == 0.0

    def test_single_target_serializes(self):
        assert conflict_count(1000, 1, 32) > 0.0

    def test_more_targets_fewer_conflicts(self):
        few = conflict_count(1000, 2, 32)
        many = conflict_count(1000, 16, 32)
        assert many < few


class TestConflictsFromHistogram:
    def test_empty_histogram(self):
        assert conflicts_from_histogram(np.array([]), 32) == 0.0

    def test_all_unique_targets_no_conflicts(self):
        hits = np.ones(1000)
        assert conflicts_from_histogram(hits, 32) == 0.0

    def test_hot_target_generates_conflicts(self):
        hits = np.array([64.0])
        assert conflicts_from_histogram(hits, 32) > 0.0

    def test_zero_entries_ignored(self):
        with_zeros = np.array([0, 0, 5, 0])
        without = np.array([5])
        assert conflicts_from_histogram(with_zeros, 32) == conflicts_from_histogram(without, 32)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50))
    def test_non_negative_and_bounded(self, hits):
        hits_arr = np.asarray(hits, dtype=np.float64)
        conflicts = conflicts_from_histogram(hits_arr, 32)
        assert conflicts >= 0.0
        # Never more retries than total hits times the max per-warp rounds.
        assert conflicts <= hits_arr.sum() * 32

    @given(st.integers(1, 100))
    def test_monotone_in_concentration(self, h):
        # The same hits on one address conflict at least as much as spread
        # over two addresses.
        one = conflicts_from_histogram(np.array([2 * h], dtype=float), 32)
        two = conflicts_from_histogram(np.array([h, h], dtype=float), 32)
        assert one >= two
