"""``IndexHandle.explain()``: exact snapshot of the rendered plan text.

The rendering is part of the public surface (README transcripts, the
``plan_explain`` example, operator tooling); these snapshots pin it.
"""

import pytest

from repro.api import GenieSession
from repro.errors import QueryError

OBJECTS = [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [5, 6]]


def test_explain_serial_snapshot():
    session = GenieSession()
    handle = session.create_index(OBJECTS, model="raw", name="toy")
    assert handle.explain([[0], [5]], k=2).render() == "\n".join([
        "Scan(index='toy', parts=1, queries=2, k=2)",
        "└─ Encode(model='raw', queries=2)",
    ])


def test_explain_multipart_snapshot():
    session = GenieSession()
    handle = session.create_index(
        OBJECTS, model="raw", name="parts", part_size=2, swap_parts=True
    )
    assert handle.explain([[0]], k=2).render() == "\n".join([
        "Merge(one-round, k=2)",
        "└─ Scan(index='parts', parts=3, swap_parts, queries=1, k=2)",
        "   └─ Encode(model='raw', queries=1)",
    ])


def test_explain_routed_shards_snapshot():
    session = GenieSession()
    handle = session.create_index(OBJECTS, model="raw", name="toy", shards=3)
    assert handle.explain([[0], [5], [0, 5]], k=2).render() == "\n".join([
        "Merge(one-round, k=2)",
        "└─ ShardScan(index='toy', strategy='range', shards=3, queries=3, k=2, routed shards=2/3)",
        "   · shard 0 ← eligible queries [0, 2]",
        "   · shard 1 ← (pruned)",
        "   · shard 2 ← eligible queries [1, 2]",
        "   └─ Encode(model='raw', queries=3)",
    ])


def test_explain_two_round_snapshot():
    session = GenieSession()
    handle = session.create_index(OBJECTS, model="raw", name="toy", shards=3)
    rendered = handle.explain(
        [[0], [5]], k=4, route="broadcast", plan="two-round"
    ).render()
    assert rendered == "\n".join([
        "Merge(two-round-tput, k=4, first_round_k=3)",
        "└─ ShardScan(index='toy', strategy='range', shards=3, queries=2, k=3, broadcast)",
        "   └─ Encode(model='raw', queries=2)",
    ])


def test_explain_sequence_finalize_and_elision_snapshot():
    session = GenieSession()
    handle = session.create_index(
        ["abcdef", "bcdefg", "cdefgh"], model="sequence", name="seqs"
    )
    rendered = handle.explain(["bcde", "zzzz"], k=1, n_candidates=2).render()
    assert rendered == "\n".join([
        "Finalize(model='sequence', k=1)",
        "└─ Scan(index='seqs', parts=1, queries=1, k=2)",
        "   └─ Encode(model='sequence', queries=2, elided=[1])",
    ])


def test_explain_matches_executed_plan():
    session = GenieSession()
    handle = session.create_index(OBJECTS, model="raw", name="toy", shards=3)
    queries = [[0], [5]]
    explained = handle.explain(queries, k=2)
    result = handle.search(queries, k=2)
    assert result.plan.render() == explained.render()


def test_explain_does_not_execute():
    session = GenieSession()
    handle = session.create_index(OBJECTS, model="raw", name="toy", shards=2)
    before = {d: d.timings.copy().seconds for d in session.shard_devices(2)}
    mark = session.residency_log.mark()
    handle.explain([[0]], k=1)
    for device, seconds in before.items():
        assert device.timings.seconds == seconds
    assert session.residency_log.since(mark) == []
    assert handle.last_result is None


def test_explain_validates_like_search():
    session = GenieSession()
    handle = session.create_index(OBJECTS, model="raw", name="toy")
    with pytest.raises(QueryError, match="empty query batch"):
        handle.explain([], k=1)
    with pytest.raises(QueryError, match="k must be >= 1"):
        handle.explain([[0]], k=0)
    with pytest.raises(QueryError, match="requires a sharded index"):
        handle.explain([[0]], k=1, route="pruned")
    with pytest.raises(QueryError, match="does not accept search options"):
        handle.explain([[0]], k=1, bogus=3)
