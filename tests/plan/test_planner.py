"""Planner rule tests: elision, routing, merge selection, escape hatches."""

import numpy as np
import pytest

from repro.api import GenieSession
from repro.core.types import Query
from repro.errors import QueryError
from repro.plan import (
    EncodeNode,
    FinalizeNode,
    MergeNode,
    ScanNode,
    ShardScanNode,
    compile_search,
    first_round_k_for,
    route_queries,
    validate_plan_args,
)

OBJECTS = [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [5, 6]]


def sharded_handle(shards=3, strategy="range", **kwargs):
    session = GenieSession()
    return session.create_index(
        OBJECTS, model="raw", name="toy", shards=shards,
        shard_strategy=strategy, **kwargs,
    )


def compile_for(handle, raw_queries, k=2, **kwargs):
    queries = handle.encode_queries(raw_queries)
    return compile_search(handle, queries, k=k, retrieval_k=k, **kwargs)


class TestRouteQueries:
    def test_membership_routing(self):
        queries = [Query.from_keywords([0]), Query.from_keywords([9]),
                   Query.from_keywords([0, 5])]
        shard_keywords = (np.array([0, 1, 2]), np.array([4, 5, 6]))
        routes = route_queries(queries, shard_keywords)
        assert routes[0].tolist() == [0, 2]
        assert routes[1].tolist() == [2]

    def test_empty_query_routes_nowhere(self):
        routes = route_queries([Query(items=[])], (np.array([0, 1]),))
        assert routes[0].size == 0

    def test_empty_shard_gets_nothing(self):
        routes = route_queries(
            [Query.from_keywords([0])], (np.empty(0, dtype=np.int64),)
        )
        assert routes[0].size == 0


class TestRules:
    def test_range_partition_prunes_by_default(self):
        compiled = compile_for(sharded_handle(), [[0], [5]])
        assert compiled.routing.pruned_pairs > 0
        scan = compiled.root.find(ShardScanNode)
        assert not scan.broadcast

    def test_hash_partition_broadcasts_by_default(self):
        compiled = compile_for(sharded_handle(strategy="hash"), [[0], [5]])
        assert compiled.routing.broadcast
        assert all(r.size == 2 for r in compiled.routes)

    def test_hash_partition_can_force_pruning(self):
        # Membership routing is exact for any strategy; forcing it on a
        # hash partition is allowed, it just rarely prunes.
        compiled = compile_for(sharded_handle(strategy="hash"), [[0]], route="pruned")
        scanned = sum(r.size for r in compiled.routes)
        assert scanned <= compiled.routing.n_shards

    def test_forced_broadcast_on_range(self):
        compiled = compile_for(sharded_handle(), [[0]], route="broadcast")
        assert compiled.routing.broadcast
        assert compiled.root.find(ShardScanNode).broadcast

    def test_two_round_merge_opt_in(self):
        compiled = compile_for(sharded_handle(), [[0, 5]], k=2, plan="two-round")
        assert compiled.merge == "two-round-tput"
        assert compiled.first_round_k == first_round_k_for(2, 3) == 1
        merge = compiled.root.find(MergeNode)
        assert merge.strategy == "two-round-tput"
        assert merge.first_round_k == 1
        # The shard scan advertises the round-one width.
        assert compiled.root.find(ShardScanNode).k == 1

    def test_two_round_falls_back_when_nothing_to_save(self):
        compiled = compile_for(sharded_handle(), [[0]], k=1, plan="two-round")
        assert compiled.merge == "one-round"  # ceil(1/3) == 1 == k
        assert compiled.first_round_k is None

    def test_skip_elision(self):
        session = GenieSession()
        handle = session.create_index(
            ["abcdef", "bcdefg", "cdefgh"], model="ngram", name="seqs"
        )
        queries = handle.encode_queries(["bcde", "zzzz"])  # zzzz: no indexed grams
        compiled = compile_search(handle, queries, k=2, retrieval_k=2)
        assert compiled.active == [0]
        assert compiled.root.find(EncodeNode).elided == (1,)

    def test_serial_plan_shapes(self):
        session = GenieSession()
        single = session.create_index(OBJECTS, model="raw", name="one")
        compiled = compile_for(single, [[0]])
        assert compiled.merge == "direct"
        assert isinstance(compiled.root, ScanNode)

        multi = session.create_index(OBJECTS, model="raw", name="parts", part_size=2)
        compiled = compile_for(multi, [[0]])
        assert compiled.merge == "one-round"
        assert isinstance(compiled.root, MergeNode)
        assert compiled.root.find(ScanNode).parts == 3

    def test_finalize_node_for_verifying_models(self):
        session = GenieSession()
        handle = session.create_index(
            ["abcdef", "bcdefg", "cdefgh"], model="sequence", name="seqs"
        )
        queries = handle.encode_queries(["bcde"])
        compiled = compile_search(handle, queries, k=1, retrieval_k=3)
        assert isinstance(compiled.root, FinalizeNode)
        assert compiled.root.k == 1
        assert compiled.root.find(ScanNode).k == 3  # the shortlist width


class TestEscapeHatchValidation:
    def test_unknown_values_rejected(self):
        with pytest.raises(QueryError, match="unknown route"):
            validate_plan_args("sideways", None, sharded=True)
        with pytest.raises(QueryError, match="unknown plan"):
            validate_plan_args(None, "three-round", sharded=True)

    def test_shard_strategies_rejected_on_serial(self):
        with pytest.raises(QueryError, match="requires a sharded index"):
            validate_plan_args("broadcast", None, sharded=False)
        with pytest.raises(QueryError, match="requires a sharded index"):
            validate_plan_args(None, "two-round", sharded=False)

    def test_auto_accepted_and_canonicalized(self):
        # plan="auto" stays "auto" after validation — a calibrated
        # session resolves it per batch (the choice depends on the query
        # shape), so it cannot canonicalize to a fixed merge. Explicit
        # directives normalize to themselves, and distinct directives
        # stay distinct so the server's coalescing lanes never mix a
        # forced plan with a costed one.
        assert validate_plan_args(None, None, sharded=False) == ("auto", "auto")
        assert validate_plan_args("auto", "auto", sharded=False) == ("auto", "auto")
        assert validate_plan_args("auto", "one-round", sharded=False) == ("auto", "one-round")
        assert validate_plan_args(None, "two-round", sharded=True) == ("auto", "two-round")

    def test_search_surface_rejects_bad_directives(self):
        session = GenieSession()
        handle = session.create_index(OBJECTS, model="raw", name="serial")
        with pytest.raises(QueryError, match="requires a sharded index"):
            handle.search([[0]], k=1, route="broadcast")
        sharded = sharded_handle()
        with pytest.raises(QueryError, match="unknown plan"):
            sharded.search([[0]], k=1, plan="tput")


class TestRoutingAccounting:
    def test_routing_decision_charged_to_host_not_profile(self):
        # The membership test is pre-dispatch host work: accounted under
        # the host's plan_route stage (not free), but — like query
        # encoding — off the batch's device critical path.
        handle = sharded_handle()
        host = handle.session.host
        before = host.timings.get("plan_route")
        result = handle.search([[0]], k=2)
        assert host.timings.get("plan_route") > before
        assert "plan_route" not in result.profile.seconds

    def test_broadcast_plans_pay_no_routing(self):
        handle = sharded_handle()
        host = handle.session.host
        handle.search([[0]], k=2, route="broadcast")
        assert host.timings.get("plan_route") == 0.0

    def test_explain_never_pays_routing(self):
        handle = sharded_handle()
        handle.explain([[0]], k=2)
        assert handle.session.host.timings.get("plan_route") == 0.0
