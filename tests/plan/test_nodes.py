"""Plan-IR unit tests: rendering stability, traversal, routing accounting."""

import pytest

from repro.plan import (
    EncodeNode,
    FinalizeNode,
    MergeNode,
    PlanNode,
    RoutingSummary,
    ScanNode,
    ShardScanNode,
)


def make_sharded_plan() -> PlanNode:
    encode = EncodeNode(model="relational", n_queries=4, elided=(3,))
    scan = ShardScanNode(
        index="adult", strategy="range", n_shards=3, n_queries=3, k=5,
        eligible=((0, 2), (), (1,)), broadcast=False, inputs=(encode,),
    )
    merge = MergeNode(strategy="two-round-tput", k=5, first_round_k=2, inputs=(scan,))
    return FinalizeNode(model="relational", k=5, inputs=(merge,))


class TestRender:
    def test_sharded_tree_snapshot(self):
        # The rendering is an API (explain() output is snapshot-tested);
        # change it deliberately.
        expected = "\n".join([
            "Finalize(model='relational', k=5)",
            "└─ Merge(two-round-tput, k=5, first_round_k=2)",
            "   └─ ShardScan(index='adult', strategy='range', shards=3, queries=3, k=5, routed shards=2/3)",
            "      · shard 0 ← eligible queries [0, 2]",
            "      · shard 1 ← (pruned)",
            "      · shard 2 ← eligible queries [1]",
            "      └─ Encode(model='relational', queries=4, elided=[3])",
        ])
        assert make_sharded_plan().render() == expected
        assert str(make_sharded_plan()) == expected

    def test_serial_tree_snapshot(self):
        encode = EncodeNode(model="document", n_queries=2)
        scan = ScanNode(
            index="tweets", parts=1, swap_parts=False, n_queries=2, k=10,
            inputs=(encode,),
        )
        assert scan.render() == "\n".join([
            "Scan(index='tweets', parts=1, queries=2, k=10)",
            "└─ Encode(model='document', queries=2)",
        ])

    def test_multipart_swap_scan_label(self):
        scan = ScanNode(index="big", parts=3, swap_parts=True, n_queries=8, k=4)
        assert scan.label() == "Scan(index='big', parts=3, swap_parts, queries=8, k=4)"

    def test_broadcast_shard_scan_has_no_route_lines(self):
        scan = ShardScanNode(
            index="ocr", strategy="hash", n_shards=2, n_queries=3, k=4,
            eligible=((0, 1, 2), (0, 1, 2)), broadcast=True,
        )
        assert "broadcast" in scan.label()
        assert scan.annotations() == ()
        assert scan.render() == scan.label()

    def test_long_query_lists_are_summarized(self):
        positions = tuple(range(20))
        scan = ShardScanNode(
            index="i", strategy="range", n_shards=2, n_queries=20, k=1,
            eligible=(positions, ()), broadcast=False,
        )
        assert "shard 0 ← eligible 20 queries" in scan.render()


class TestTraversal:
    def test_walk_is_preorder(self):
        root = make_sharded_plan()
        kinds = [type(node).__name__ for node in root.walk()]
        assert kinds == ["FinalizeNode", "MergeNode", "ShardScanNode", "EncodeNode"]

    def test_find(self):
        root = make_sharded_plan()
        assert root.find(ShardScanNode).n_shards == 3
        assert root.find(EncodeNode).elided == (3,)
        assert root.find(ScanNode) is None

    def test_nodes_are_frozen(self):
        node = EncodeNode(model="raw", n_queries=1)
        with pytest.raises(AttributeError):
            node.model = "other"


class TestRoutingSummary:
    def test_pruned_fraction(self):
        routing = RoutingSummary(n_shards=4, n_queries=3, scanned_pairs=9, pruned_pairs=3)
        assert routing.pruned_fraction == pytest.approx(0.25)
        assert not routing.broadcast

    def test_broadcast_and_empty(self):
        assert RoutingSummary(2, 3, scanned_pairs=6, pruned_pairs=0).broadcast
        assert RoutingSummary(2, 3, scanned_pairs=6, pruned_pairs=0).pruned_fraction == 0.0
        assert RoutingSummary(2, 0, scanned_pairs=0, pruned_pairs=0).pruned_fraction == 0.0


def test_long_elided_lists_are_summarized():
    node = EncodeNode(model="ngram", n_queries=600, elided=tuple(range(400)))
    assert node.label() == "Encode(model='ngram', queries=600, elided=400 queries)"
    short = EncodeNode(model="ngram", n_queries=4, elided=(1, 3))
    assert short.label() == "Encode(model='ngram', queries=4, elided=[1, 3])"
