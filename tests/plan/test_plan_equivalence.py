"""Property suite: every planner strategy is bit-identical to serial search.

The planner's contract (extending PR 4's shard-equivalence suite to
planned execution): shard-pruned, forced-broadcast, and two-round-TPUT
plans must reproduce the *serial* ``IndexHandle.search`` answer exactly —
same ids, same counts, same count-desc / id-asc tie order, same
thresholds, same model payloads — across every modality, both partition
strategies, and any shard count. Only the simulated time may differ.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import GenieSession
from repro.core.types import Query
from repro.plan import COEFFICIENT_NAMES
from repro.sa.relational import AttributeSpec

#: Every (route, plan) strategy combination the planner can execute.
STRATEGIES = (
    {"route": None, "plan": None},                     # rule-chosen (pruned on range)
    {"route": "pruned", "plan": None},                 # forced pruning
    {"route": "broadcast", "plan": None},              # forced broadcast
    {"route": None, "plan": "two-round"},              # TPUT merge
    {"route": "broadcast", "plan": "two-round"},       # TPUT without routing
)


def assert_bit_identical(reference, planned):
    assert len(reference.results) == len(planned.results)
    for ref, got in zip(reference.results, planned.results):
        assert np.array_equal(ref.ids, got.ids), (ref.ids, got.ids)
        assert np.array_equal(ref.counts, got.counts)
        assert got.ids.dtype == ref.ids.dtype
        assert ref.threshold == got.threshold


corpora = st.lists(st.lists(st.integers(0, 15), max_size=6), min_size=1, max_size=25)
query_batches = st.lists(
    st.lists(st.lists(st.integers(0, 25), max_size=4), max_size=4),
    min_size=1,
    max_size=5,
)


@settings(max_examples=50, deadline=None)
@given(
    raw_objects=corpora,
    raw_queries=query_batches,
    n_shards=st.integers(1, 5),
    strategy=st.sampled_from(["range", "hash"]),
    mode=st.sampled_from(STRATEGIES),
    k=st.integers(1, 8),
)
def test_planned_equals_serial_property(raw_objects, raw_queries, n_shards, strategy, mode, k):
    queries = [Query(items=items) for items in raw_queries]
    reference = (
        GenieSession()
        .create_index(raw_objects, model="raw", name="ref")
        .search(queries, k=k)
    )
    handle = GenieSession().create_index(
        raw_objects, model="raw", name="sharded",
        shards=n_shards, shard_strategy=strategy, shard_seed=3,
    )
    planned = handle.search(queries, k=k, **mode)
    assert_bit_identical(reference, planned)
    assert planned.routing is not None
    assert len(planned.shard_profiles) == n_shards


# ----------------------------------------------------------------------
# fixed-seed modality grid


def _relational_workload(rng):
    n = 80
    age = np.sort(rng.uniform(18, 90, size=n))  # sorted: range shards get age bands
    job = rng.integers(0, 4, size=n)
    data = {"age": age, "job": job}
    schema = [AttributeSpec("age", "numeric", bins=24), AttributeSpec("job", "categorical")]
    queries = [{"age": (a, a + 4.0)} for a in rng.uniform(18, 85, size=8)]
    return dict(data=data, model="relational", queries=queries,
                kwargs={"schema": schema})


def _document_workload(rng):
    words = ["gpu", "index", "fox", "dog", "honey", "park", "query", "batch",
             "shard", "plan", "merge", "cache"]
    docs = [" ".join(rng.choice(words, size=5, replace=False)) for _ in range(60)]
    queries = [" ".join(rng.choice(words, size=3, replace=False)) for _ in range(8)]
    return dict(data=docs, model="document", queries=queries, kwargs={})


def _sequence_workload(rng):
    alphabet = np.array(list("acgt"))
    seqs = ["".join(rng.choice(alphabet, size=12)) for _ in range(50)]
    queries = ["".join(rng.choice(alphabet, size=10)) for _ in range(6)] + ["zzzz"]
    return dict(data=seqs, model="sequence", queries=queries, kwargs={},
                opts={"n_candidates": 8})


def _ngram_workload(rng):
    alphabet = np.array(list("acgt"))
    seqs = ["".join(rng.choice(alphabet, size=12)) for _ in range(50)]
    queries = ["".join(rng.choice(alphabet, size=8)) for _ in range(6)] + ["zzzz"]
    return dict(data=seqs, model="ngram", queries=queries, kwargs={})


def _ann_workload(rng):
    points = rng.normal(size=(60, 8))
    queries = rng.normal(size=(6, 8))
    return dict(data=points, model="ann-e2lsh", queries=queries,
                kwargs={"num_functions": 16, "dim": 8, "width": 4.0,
                        "seed": 0, "domain": 67})


WORKLOADS = {
    "relational": _relational_workload,
    "document": _document_workload,
    "sequence": _sequence_workload,
    "ngram": _ngram_workload,
    "ann": _ann_workload,
}


def _assert_payload_identical(model, reference, planned):
    if reference.payload is None:
        assert planned.payload is None
        return
    assert len(reference.payload) == len(planned.payload)
    for ref, got in zip(reference.payload, planned.payload):
        if model == "sequence":
            assert ref.matches == got.matches
            assert ref.certified == got.certified
        else:  # ann: (ids, counts, counts/m) triples
            for a, b in zip(ref, got):
                assert np.array_equal(a, b)


@pytest.mark.parametrize("modality", sorted(WORKLOADS))
@pytest.mark.parametrize("strategy", ["range", "hash"])
@pytest.mark.parametrize("n_shards", [2, 4])
def test_modality_grid_bit_identical(modality, strategy, n_shards):
    spec = WORKLOADS[modality](np.random.default_rng(7))
    opts = spec.get("opts", {})

    serial = GenieSession().create_index(
        spec["data"], model=spec["model"], name="ref", **spec["kwargs"]
    )
    reference = serial.search(spec["queries"], k=5, **opts)

    handle = GenieSession().create_index(
        spec["data"], model=spec["model"], name="planned",
        shards=n_shards, shard_strategy=strategy, **spec["kwargs"],
    )
    for mode in STRATEGIES:
        planned = handle.search(spec["queries"], k=5, **mode, **opts)
        assert_bit_identical(reference, planned)
        _assert_payload_identical(spec["model"], reference, planned)


def test_routing_actually_prunes_on_sorted_range_data():
    # The grid above proves correctness; this pins that the range-sharded
    # relational workload really exercises the pruning rule (a vacuous
    # broadcast-everything equivalence would prove nothing). Pruning is
    # batch-granular, so it shows on band-local batches — the serving
    # shape — not on one mixed batch spanning every age band.
    spec = _relational_workload(np.random.default_rng(7))
    handle = GenieSession().create_index(
        spec["data"], model=spec["model"], name="adult",
        shards=4, **spec["kwargs"],
    )
    mixed = handle.search(spec["queries"], k=5)
    assert mixed.routing.broadcast  # bands cover every shard together

    pruned_total = 0
    routed_busy = broadcast_busy = 0.0
    for query in spec["queries"]:
        routed = handle.search([query], k=5)
        broadcast = handle.search([query], k=5, route="broadcast")
        assert broadcast.routing.pruned_pairs == 0
        pruned_total += routed.routing.pruned_pairs
        # A scanned shard's launch is identical to its broadcast launch,
        # so the critical path can only shrink (up to float accumulation
        # noise in the device's running stage totals); pruned shards stop
        # paying their scan entirely (aggregate device seconds drop).
        routed_busy += sum(p.query_total() for p in routed.shard_profiles)
        broadcast_busy += sum(p.query_total() for p in broadcast.shard_profiles)
        assert routed.profile.query_total() <= broadcast.profile.query_total() * (1 + 1e-9)
    assert pruned_total > 0
    assert routed_busy < broadcast_busy


# ----------------------------------------------------------------------
# costed "auto" under adversarial calibration

#: Deliberately wrong coefficient dicts. The planner's invariant is that
#: pricing only ever *selects among exact candidates*, so no calibration
#: — absurd, negative, degenerate, or partial — can change results.
MISCALIBRATIONS = (
    {name: 1.0 for name in COEFFICIENT_NAMES},      # everything costs seconds
    {name: -1.0 for name in COEFFICIENT_NAMES},     # negative: clamps to free
    {name: 0.0 for name in COEFFICIENT_NAMES},      # all candidates tie
    {"scan.hot": 5e3},                              # partial: missing keys read 0
    {"topup.const": -7.0, "topup.concentration": 99.0,
     "scan.gated": 1e6, "merge.ops": -3.0},         # inconsistent mixture
)


@pytest.mark.parametrize("coefficients", MISCALIBRATIONS,
                         ids=["huge", "negative", "zero", "partial", "mixed"])
@pytest.mark.parametrize("strategy", ["range", "hash"])
def test_miscalibrated_auto_stays_bit_identical(coefficients, strategy):
    rng = np.random.default_rng(11)
    objects = [np.unique(rng.integers(0, 24, size=4)).tolist() for _ in range(60)]
    batches = [[np.sort(rng.choice(24, size=3, replace=False)).tolist()
                for _ in range(4)] for _ in range(3)]
    reference_handle = GenieSession().create_index(objects, model="raw", name="ref")

    session = GenieSession()
    session.cost_coefficients = coefficients
    handle = session.create_index(
        objects, model="raw", name="sharded", shards=4, shard_strategy=strategy,
    )
    for batch in batches:
        for k in (1, 5):
            reference = reference_handle.search(batch, k=k)
            assert_bit_identical(reference, handle.search(batch, k=k))


def test_two_round_merge_tops_up_only_when_needed():
    # All mass in one shard: the busy shard must top up (its round-one
    # threshold can't rule out unfetched candidates), while shards with
    # fewer than first_round_k candidates are complete and never rescan.
    objects = [[0, 1, 2]] * 10 + [[9]]  # shard bounds split heavy prefix
    handle = GenieSession().create_index(
        objects, model="raw", name="skew", shards=2,
    )
    reference = GenieSession().create_index(
        objects, model="raw", name="ref"
    ).search([[0, 1, 2]], k=6)
    planned = handle.search([[0, 1, 2]], k=6, plan="two-round")
    assert_bit_identical(reference, planned)
