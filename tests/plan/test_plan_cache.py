"""PlanCache: warm shapes skip planning; every world change invalidates.

The cache's contract is twofold. Performance: a repeated query *shape*
(same directives, ``k``, options, and per-query shard eligibility)
reuses the compiled plan and pays zero further ``plan_route`` host
work. Correctness: anything the planner's output is a function of —
refits, drops, re-declared shard layouts, recalibration — must miss or
invalidate, never serve a stale plan.
"""

import numpy as np
import pytest

from repro.api import GenieSession
from repro.errors import ConfigError
from repro.plan import PlanCache
from repro.serve import BatchPolicy, GenieServer

OBJECTS = [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [5, 6]]


def banded_corpus(n_objects=800, n_bands=8, seed=0):
    rng = np.random.default_rng(seed)
    return [[i // (n_objects // n_bands), int(rng.integers(1000, 5000))]
            for i in range(n_objects)]


def make_sharded(session, name="band", shards=4, **kwargs):
    return session.create_index(
        banded_corpus(), model="raw", name=name, shards=shards,
        shard_strategy="range", **kwargs,
    )


class TestCacheConstruction:
    def test_capacity_validated(self):
        with pytest.raises(ConfigError, match="capacity"):
            PlanCache(capacity=0)
        with pytest.raises(ConfigError, match="bucket capacity"):
            PlanCache(bucket_capacity=0)

    def test_stats_surface(self):
        cache = PlanCache(capacity=3)
        assert cache.stats() == {
            "capacity": 3, "entries": 0, "plan_cache_size": 0, "buckets": 0,
            "hits": 0, "misses": 0, "evictions": 0, "invalidations": 0,
        }

    def test_plan_cache_size_gauge_tracks_entries(self):
        session = GenieSession()
        handle = make_sharded(session)
        assert session.plan_cache.stats()["plan_cache_size"] == 0
        handle.search([[1, 2]], k=5)
        handle.search([[1, 2]], k=6)
        stats = session.plan_cache.stats()
        assert stats["plan_cache_size"] == stats["entries"] == 2
        session.close()

    def test_session_toggle(self):
        assert GenieSession().plan_cache is not None
        assert GenieSession(plan_cache_size=None).plan_cache is None
        assert GenieSession(plan_cache_size=0).plan_cache is None
        assert GenieSession(plan_cache_size=7).plan_cache.capacity == 7


class TestHitsAndMisses:
    def test_repeated_shape_hits_and_pays_no_more_routing(self):
        session = GenieSession()
        handle = make_sharded(session)
        cache = session.plan_cache
        handle.search([[1, 2]], k=5)
        assert cache.stats()["misses"] == 1
        charged = session.host.timings.get("plan_route")
        assert charged > 0.0
        again = handle.search([[1, 2]], k=5)
        assert cache.stats()["hits"] == 1
        # The hit skipped the routing pass entirely: no new host charge.
        assert session.host.timings.get("plan_route") == charged
        assert again.routing.pruned_pairs > 0  # the cached plan still prunes
        session.close()

    def test_hit_returns_identical_results(self):
        session = GenieSession()
        handle = make_sharded(session)
        first = handle.search([[2, 3]], k=4)
        second = handle.search([[2, 3]], k=4)
        assert session.plan_cache.stats()["hits"] == 1
        for ref, got in zip(first.results, second.results):
            assert np.array_equal(ref.ids, got.ids)
            assert np.array_equal(ref.counts, got.counts)
        session.close()

    def test_cold_query_bucket_is_a_miss_then_warm(self):
        # A never-seen keyword tuple has no memoized eligibility bucket:
        # the batch must recompile (a wrong reused route would drop
        # results), and the fresh compile warms the bucket.
        session = GenieSession()
        handle = make_sharded(session)
        handle.search([[1, 2]], k=5)
        handle.search([[5, 6]], k=5)   # cold bucket -> miss
        assert session.plan_cache.stats()["hits"] == 0
        assert session.plan_cache.stats()["misses"] == 2
        handle.search([[5, 6]], k=5)
        assert session.plan_cache.stats()["hits"] == 1
        session.close()

    def test_k_is_part_of_the_shape(self):
        session = GenieSession()
        handle = make_sharded(session)
        handle.search([[1, 2]], k=5)
        handle.search([[1, 2]], k=6)
        stats = session.plan_cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 2
        session.close()

    def test_directives_are_part_of_the_shape(self):
        session = GenieSession()
        handle = make_sharded(session)
        handle.search([[1, 2]], k=5)
        handle.search([[1, 2]], k=5, route="broadcast")
        handle.search([[1, 2]], k=5, plan="two-round")
        stats = session.plan_cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 3
        session.close()

    def test_serial_indexes_bypass_the_cache(self):
        # Serial plans have no routing decision to memoize.
        session = GenieSession()
        handle = session.create_index(OBJECTS, model="raw", name="serial")
        handle.search([[0]], k=2)
        handle.search([[0]], k=2)
        stats = session.plan_cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        session.close()

    def test_disabled_cache_still_serves(self):
        session = GenieSession(plan_cache_size=None)
        handle = make_sharded(session)
        first = handle.search([[1, 2]], k=5)
        second = handle.search([[1, 2]], k=5)
        assert np.array_equal(first.results[0].ids, second.results[0].ids)
        session.close()


class TestRepricedHits:
    """A cache hit reuses the plan *choice*, not the first batch's price.

    The cache key stores per-query ``(alive, shard-mask)`` signatures —
    not the keywords themselves — so two batches with different work
    volumes (e.g. ``[[0]]`` vs ``[[0, 1]]`` on the banded corpus: both
    keywords live only in shard 0) collide on one entry. The hit must
    re-extract the new batch's cost features so ``predicted_cost`` stays
    honest, while still charging nothing to ``plan_route``.
    """

    # Hand-rolled coefficients: postings dominate, so batches touching
    # different posting volumes must price differently.
    COEFFS = {
        "scan.const": 1e-6, "scan.queries": 1e-7, "scan.keywords": 1e-7,
        "scan.postings": 1e-8, "scan.gated": 1e-9, "scan.hot": 1e-7,
        "scan.width": 1e-9, "merge.const": 1e-7, "merge.ops": 1e-9,
        "topup.const": 1e-7, "topup.concentration": 1e-7,
    }

    def _costed_session(self):
        session = GenieSession()
        handle = make_sharded(session)
        session.cost_coefficients = dict(self.COEFFS)
        return session, handle

    def test_colliding_batches_share_one_entry(self):
        session, handle = self._costed_session()
        handle.search([[0]], k=5)
        handle.search([[0, 1]], k=5)  # cold bucket: miss, overwrites
        stats = session.plan_cache.stats()
        assert stats["misses"] == 2 and stats["entries"] == 1
        session.close()

    def test_hit_reprices_for_the_new_batch(self):
        session, handle = self._costed_session()
        small = handle.search([[0]], k=5)
        big = handle.search([[0, 1]], k=5)
        assert small.predicted_cost is not None
        assert big.predicted_cost is not None
        assert small.predicted_cost != big.predicted_cost
        # Both shapes now hit the single shared entry; each must report
        # its *own* batch's predicted cost, not the stored plan's.
        warm_small = handle.search([[0]], k=5)
        warm_big = handle.search([[0, 1]], k=5)
        assert session.plan_cache.stats()["hits"] == 2
        assert warm_small.predicted_cost == pytest.approx(small.predicted_cost)
        assert warm_big.predicted_cost == pytest.approx(big.predicted_cost)
        session.close()

    def test_repricing_charges_no_planning_host_work(self):
        session, handle = self._costed_session()
        handle.search([[0]], k=5)
        handle.search([[0, 1]], k=5)
        charged = session.host.timings.get("plan_route")
        handle.search([[0]], k=5)  # hit + reprice
        assert session.host.timings.get("plan_route") == charged
        session.close()

    def test_hit_results_identical_under_repricing(self):
        session, handle = self._costed_session()
        first = handle.search([[0, 1]], k=5)
        handle.search([[0]], k=5)
        second = handle.search([[0, 1]], k=5)
        for ref, got in zip(first.results, second.results):
            assert np.array_equal(ref.ids, got.ids)
            assert np.array_equal(ref.counts, got.counts)
        session.close()


class TestInvalidation:
    def test_refit_misses_and_invalidates(self):
        session = GenieSession()
        handle = make_sharded(session)
        handle.search([[1, 2]], k=5)
        assert len(session.plan_cache) == 1
        handle.fit(banded_corpus(seed=1))  # epoch bump fires the hook
        assert len(session.plan_cache) == 0
        assert session.plan_cache.stats()["invalidations"] == 1
        handle.search([[1, 2]], k=5)
        stats = session.plan_cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 2
        session.close()

    def test_drop_invalidates_only_that_index(self):
        session = GenieSession()
        make_sharded(session, name="a")
        make_sharded(session, name="b")
        session.index("a").search([[1, 2]], k=5)
        session.index("b").search([[1, 2]], k=5)
        assert len(session.plan_cache) == 2
        session.drop("a")
        assert len(session.plan_cache) == 1
        session.index("b").search([[1, 2]], k=5)
        assert session.plan_cache.stats()["hits"] == 1
        session.close()

    def test_redeclared_shard_count_misses(self):
        # Dropping and re-declaring under the same name with a different
        # layout must not resurrect the old plan.
        session = GenieSession()
        handle = make_sharded(session, shards=4)
        four = handle.search([[1, 2]], k=5)
        assert four.routing.n_shards == 4
        session.drop("band")
        handle = make_sharded(session, shards=2)
        two = handle.search([[1, 2]], k=5)
        assert two.routing.n_shards == 2
        assert session.plan_cache.stats()["hits"] == 0
        session.close()

    def test_recalibration_flushes_every_plan(self):
        session = GenieSession()
        handle = make_sharded(session)
        handle.search([[1, 2]], k=5)
        assert len(session.plan_cache) == 1
        session.cost_coefficients = {"merge.ops": 1e-9}
        assert len(session.plan_cache) == 0
        session.close()

    def test_residency_eviction_keeps_plans_valid(self):
        # Eviction moves parts off the device; the *plan* is unchanged.
        # The evicted shard swaps back in during execution and the warm
        # plan still answers correctly.
        session = GenieSession()
        handle = make_sharded(session)
        first = handle.search([[1, 2]], k=5)
        session.evict("band")
        second = handle.search([[1, 2]], k=5)
        assert session.plan_cache.stats()["hits"] == 1
        assert np.array_equal(first.results[0].ids, second.results[0].ids)
        assert np.array_equal(first.results[0].counts, second.results[0].counts)
        session.close()


class TestEviction:
    def test_lru_eviction_at_capacity(self):
        session = GenieSession(plan_cache_size=2)
        handle = make_sharded(session)
        handle.search([[1, 2]], k=3)
        handle.search([[1, 2]], k=4)
        handle.search([[1, 2]], k=5)  # evicts the k=3 plan
        stats = session.plan_cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        handle.search([[1, 2]], k=3)  # must recompile
        assert session.plan_cache.stats()["hits"] == 0
        handle.search([[1, 2]], k=5)  # still resident (MRU)
        assert session.plan_cache.stats()["hits"] == 1
        session.close()

    def test_hits_refresh_recency(self):
        session = GenieSession(plan_cache_size=2)
        handle = make_sharded(session)
        handle.search([[1, 2]], k=3)
        handle.search([[1, 2]], k=4)
        handle.search([[1, 2]], k=3)  # hit bumps k=3 to MRU
        handle.search([[1, 2]], k=5)  # evicts k=4, not k=3
        handle.search([[1, 2]], k=3)
        assert session.plan_cache.stats()["hits"] == 2
        session.close()


class TestServedTraffic:
    def _band_server(self, **kwargs):
        session = GenieSession()
        make_sharded(session, name="adult")
        kwargs.setdefault("cache_size", None)
        return GenieServer(session, policy=BatchPolicy.fifo(), **kwargs)

    def test_steady_state_lane_stops_paying_plan_route(self):
        server = self._band_server()
        session = server.session
        server.submit("adult", [1, 2], k=5)
        warm = session.host.timings.get("plan_route")
        assert warm > 0.0
        for _ in range(5):
            server.submit("adult", [1, 2], k=5)
        server.drain()
        # Five warm batches, zero additional host planning seconds.
        assert session.host.timings.get("plan_route") == warm
        assert server.snapshot()["plan_cache_hits"] == 5

    def test_snapshot_reports_plan_cache_counters(self):
        server = self._band_server()
        server.submit("adult", [1, 2], k=5)
        server.submit("adult", [1, 2], k=5)
        server.session.drop("adult")
        server.drain()
        snap = server.snapshot()
        assert snap["plan_cache_hits"] == 1
        assert snap["plan_cache_misses"] == 1
        assert snap["plan_cache_invalidations"] == 1
        server.close()

    def test_snapshot_counters_default_zero_without_a_cache(self):
        session = GenieSession(plan_cache_size=None)
        session.create_index(
            banded_corpus(), model="raw", name="adult", shards=4,
            shard_strategy="range",
        )
        server = GenieServer(session, policy=BatchPolicy.fifo(), cache_size=None)
        server.submit("adult", [1, 2], k=5)
        server.drain()
        snap = server.snapshot()
        assert snap["plan_cache_hits"] == 0
        assert snap["plan_cache_misses"] == 0
        assert snap["plan_cache_invalidations"] == 0
        server.close()
