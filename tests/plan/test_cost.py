"""Cost model v2: pricing math, calibration plumbing, and costed ``auto``.

The heavy end-to-end accuracy bounds (prediction error <= 25%, the
1.3x TPUT win) live in ``benchmarks/test_cost_model.py`` — this module
pins the *semantics*: what the model computes, what calibration
persists, and which plan a calibrated ``auto`` picks on each traffic
shape. Tests inject :data:`CALIBRATED` (captured once from
``calibrate_session(seed=0)`` on the default device) instead of
recalibrating — the full probe replay builds production-scale LSH
indexes and belongs in the benchmark tier.
"""

import numpy as np
import pytest

import repro.plan.cost as cost_mod
from repro.api import GenieSession
from repro.plan import (
    COEFFICIENT_NAMES,
    CostModel,
    MergeNode,
    ShardScanNode,
    calibrate_session,
    concentration,
    serial_share,
)

#: Representative calibrated coefficients (``calibrate_session(seed=0)``
#: on the default device spec). Magnitudes mirror the simulated device's
#: cycle costs; the exact values only matter in that they reproduce the
#: calibrated planner's choices deterministically.
CALIBRATED = {
    "scan.const": 3.415766e-08,
    "scan.queries": 1.671276e-07,
    "scan.keywords": -5.056548e-09,
    "scan.postings": -4.490359e-11,
    "scan.gated": 2.739848e-11,
    "scan.hot": 1.792756e-08,
    "scan.width": 2.938658e-10,
    "merge.const": 7.290849e-24,
    "merge.ops": 5.000000e-10,
    "topup.const": 1.886245e-01,
    "topup.concentration": 9.583689e-01,
}


def banded_corpus(n_objects=1600, n_bands=8, seed=0):
    # Object i carries its band id plus one cold filler keyword: range
    # shards become contiguous bands and a single-band query is the
    # concentrated serving shape (prunes to ~2 shards, chi -> 1).
    rng = np.random.default_rng(seed)
    return [[i // (n_objects // n_bands), int(rng.integers(1000, 5000))]
            for i in range(n_objects)]


def lsh_handle(session, n_points=1200, dim=16, n_queries=16, seed=0):
    """Hash-sharded e2lsh over Gaussian points: the even-spread shape."""
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n_points, dim))
    handle = session.create_index(
        points, model="ann-e2lsh", num_functions=32, dim=dim, width=4.0,
        seed=0, domain=512, name="ann", shards=8, shard_strategy="hash",
    )
    picks = rng.choice(n_points, size=n_queries, replace=False)
    queries = list(points[picks] + 0.01 * rng.normal(size=(n_queries, dim)))
    return handle, queries


class TestCostModelMath:
    def test_missing_coefficients_read_zero(self):
        model = CostModel({})
        assert not model.calibrated
        assert model.scan_seconds(4, 10.0, 1000.0, 10) == 0.0
        assert model.merge_seconds(500.0, 4) == 0.0
        assert model.topup_fraction(0.5) == 0.0

    def test_calibrated_requires_every_name(self):
        full = {name: 1.0 for name in COEFFICIENT_NAMES}
        assert CostModel(full).calibrated
        partial = dict(full)
        del partial["scan.gated"]
        assert not CostModel(partial).calibrated

    def test_negative_predictions_clamp_to_zero(self):
        model = CostModel({name: -1.0 for name in COEFFICIENT_NAMES})
        assert model.scan_seconds(4, 10.0, 1000.0, 10) == 0.0
        assert model.merge_seconds(500.0, 4) == 0.0

    def test_topup_fraction_clips_to_unit_interval(self):
        model = CostModel({"topup.const": 0.2, "topup.concentration": 1.0})
        assert model.topup_fraction(0.5) == pytest.approx(0.7)
        assert model.topup_fraction(2.0) == 1.0
        assert model.topup_fraction(-1.0) == 0.0

    def test_two_round_price_combines_both_rounds(self):
        # Width-only scan model + 50% top-up: price must be round one
        # plus half a full round, and both TPUT merges must be charged.
        model = CostModel({"scan.width": 1.0, "merge.ops": 1.0,
                           "topup.const": 0.5})
        price = model.price(
            n_queries=1, keywords=0.0, shard_postings=[100.0, 100.0],
            n_shards=2, retrieval_k=10, merge="two-round-tput",
            first_round_k=2,
        )
        assert price.scan_seconds == pytest.approx(2.0 + 0.5 * 10.0)
        # round-one merge: 2 shards * 1 query * k=2 candidates; round
        # two adds the topped-up share of the full fan-in (fan-in log2).
        assert price.merge_seconds == pytest.approx((4 + (4 + 0.5 * 20)) * 1.0)
        one = model.price(
            n_queries=1, keywords=0.0, shard_postings=[100.0, 100.0],
            n_shards=2, retrieval_k=10, merge="one-round",
        )
        assert one.scan_seconds == pytest.approx(10.0)
        assert one.merge_seconds == pytest.approx(20.0)

    def test_merge_fan_in_has_log2_floor(self):
        model = CostModel({"merge.ops": 1.0})
        assert model.merge_seconds(8.0, 1) == pytest.approx(8.0)
        assert model.merge_seconds(8.0, 8) == pytest.approx(24.0)


class TestFeatureHelpers:
    def test_serial_share_is_excess_over_saturated(self):
        # A saturated launch (blocks >= SMs) pays nothing extra; a
        # single-block launch pays nearly its whole postings load.
        assert serial_share(2400.0, 24, 24) == 0.0
        assert serial_share(2400.0, 48, 24) == 0.0
        assert serial_share(2400.0, 1, 24) == pytest.approx(2400.0 * (1 - 1 / 24))
        vec = serial_share(np.array([100.0, 100.0]), np.array([1, 24]), 24)
        assert vec[1] == 0.0 and vec[0] > 0.0

    def test_concentration_bounds(self):
        assert concentration([10.0]) == 1.0
        assert concentration([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.25)
        assert concentration([10.0, 0.0, 0.0, 0.0]) == pytest.approx(1.0)


class TestCalibrationPlumbing:
    def test_calibrate_session_persists_finite_coefficients(self):
        session = GenieSession()
        epoch_before = session._cost_epoch
        coefficients = calibrate_session(session, seed=0)
        assert set(coefficients) == set(COEFFICIENT_NAMES)
        assert all(np.isfinite(v) for v in coefficients.values())
        assert session.cost_coefficients == coefficients
        assert session._cost_epoch == epoch_before + 1
        # Calibration probes ran on a *scratch* session: this session's
        # device and host never moved.
        assert session.device.timings.query_total() == 0.0
        assert session.host.timings.query_total() == 0.0
        session.close()

    def test_calibrate_cost_model_is_the_session_spelling(self, monkeypatch):
        sentinel = {name: 1.0 for name in COEFFICIENT_NAMES}
        monkeypatch.setattr(cost_mod, "calibrate_coefficients",
                            lambda **kwargs: dict(sentinel))
        session = GenieSession()
        assert session.calibrate_cost_model() == sentinel
        assert session.cost_coefficients == sentinel
        session.close()

    def test_assigning_coefficients_bumps_epoch_and_flushes_plans(self):
        session = GenieSession()
        handle = session.create_index(
            banded_corpus(), model="raw", name="band", shards=4,
            shard_strategy="range",
        )
        handle.search([[1, 2]], k=5)
        assert len(session.plan_cache) == 1
        epoch = session._cost_epoch
        session.cost_coefficients = CALIBRATED
        assert session._cost_epoch == epoch + 1
        assert len(session.plan_cache) == 0
        session.cost_coefficients = None
        assert session.cost_coefficients is None
        assert session._cost_epoch == epoch + 2
        session.close()


class TestCostedAuto:
    def test_even_spread_lsh_auto_picks_two_round(self):
        session = GenieSession()
        session.cost_coefficients = CALIBRATED
        handle, queries = lsh_handle(session)
        plan = handle.explain(queries, k=50)
        merge = plan.find(MergeNode)
        scan = plan.find(ShardScanNode)
        assert merge.strategy == "two-round-tput"
        assert merge.first_round_k == scan.k == 13  # ceil(2*50/8)
        session.close()

    def test_banded_range_auto_picks_pruned_one_round(self):
        session = GenieSession()
        session.cost_coefficients = CALIBRATED
        handle = session.create_index(
            banded_corpus(), model="raw", name="band", shards=4,
            shard_strategy="range",
        )
        result = handle.search([[1, 2]], k=10)
        assert result.plan.find(MergeNode).strategy == "one-round"
        assert not result.plan.find(ShardScanNode).broadcast
        assert result.routing.pruned_pairs > 0
        session.close()

    def test_cost_lines_appear_only_when_calibrated(self):
        session = GenieSession()
        handle = session.create_index(
            banded_corpus(), model="raw", name="band", shards=4,
            shard_strategy="range",
        )
        assert "cost≈" not in handle.explain([[1, 2]], k=10).render()
        session.cost_coefficients = CALIBRATED
        rendered = handle.explain([[1, 2]], k=10).render()
        assert "cost≈" in rendered
        session.close()

    def test_predicted_cost_reported_only_when_calibrated(self):
        session = GenieSession()
        handle = session.create_index(
            banded_corpus(), model="raw", name="band", shards=4,
            shard_strategy="range",
        )
        assert handle.search([[1, 2]], k=10).predicted_cost is None
        session.cost_coefficients = CALIBRATED
        result = handle.search([[1, 2]], k=10)
        assert result.predicted_cost is not None
        assert result.predicted_cost > 0.0
        session.close()

    def test_costed_explain_still_pays_no_routing(self):
        # Pricing adds a feature pass to *executed* searches (charged to
        # plan_route); explain remains entirely free.
        session = GenieSession()
        session.cost_coefficients = CALIBRATED
        handle = session.create_index(
            banded_corpus(), model="raw", name="band", shards=4,
            shard_strategy="range",
        )
        handle.explain([[1, 2]], k=10)
        assert session.host.timings.get("plan_route") == 0.0
        # A fresh shape pays the (routing + pricing) pass when executed…
        handle.search([[3, 4]], k=10)
        charged = session.host.timings.get("plan_route")
        assert charged > 0.0
        # …but a shape explain() already compiled is warm in the plan
        # cache: the search reuses it and pays nothing further.
        handle.search([[1, 2]], k=10)
        assert session.host.timings.get("plan_route") == charged
        session.close()

    def test_uncalibrated_auto_keeps_the_rules(self):
        # Without coefficients "auto" must fall back to the PR-5 rules:
        # range partitions prune, hash partitions broadcast, merge stays
        # one-round — bit-for-bit the same plans as before this PR.
        session = GenieSession()
        ranged = session.create_index(
            banded_corpus(), model="raw", name="band", shards=4,
            shard_strategy="range",
        )
        plan = ranged.explain([[1, 2]], k=10)
        assert plan.find(MergeNode).strategy == "one-round"
        assert not plan.find(ShardScanNode).broadcast

        hashed = session.create_index(
            banded_corpus(), model="raw", name="hashed", shards=4,
            shard_strategy="hash",
        )
        plan = hashed.explain([[1, 2]], k=10)
        assert plan.find(MergeNode).strategy == "one-round"
        assert plan.find(ShardScanNode).broadcast
        session.close()

    def test_costed_auto_is_bit_identical_to_forced_plans(self):
        session = GenieSession()
        session.cost_coefficients = CALIBRATED
        handle, queries = lsh_handle(session, n_points=600, n_queries=8)
        auto = handle.search(queries, k=20)
        forced_one = handle.search(queries, k=20, plan="one-round")
        forced_two = handle.search(queries, k=20, plan="two-round")
        for other in (forced_one, forced_two):
            for ref, got in zip(auto.results, other.results):
                assert np.array_equal(ref.ids, got.ids)
                assert np.array_equal(ref.counts, got.counts)
                assert ref.threshold == got.threshold
        session.close()
