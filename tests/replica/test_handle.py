"""ReplicatedIndexHandle: placement, failover, healing, availability."""

import numpy as np
import pytest

from repro.api import GenieSession
from repro.errors import AvailabilityError, ConfigError
from repro.replica import FaultEvent, FaultPlan

N, VOCAB, K = 400, 200, 5


def make_data(seed=0, n=N):
    rng = np.random.default_rng(seed)
    return [
        np.unique(rng.choice(VOCAB, size=10, replace=False)).astype(np.int64)
        for _ in range(n)
    ]


def make_queries(seed=1, count=12):
    rng = np.random.default_rng(seed)
    return [
        np.sort(rng.choice(VOCAB, size=6, replace=False)).astype(np.int64)
        for _ in range(count)
    ]


def build(session, shards=4, replicas=2, **kw):
    return session.create_index(
        make_data(), model="raw", name="idx", shards=shards,
        replicas=replicas, **kw,
    )


def results_of(handle, queries):
    out = []
    for q in queries:
        r = handle.search([q], k=K)
        out.append(
            (
                tuple(np.asarray(r.ids).ravel()),
                tuple(np.asarray(r.counts).ravel()),
            )
        )
    return out


class TestPlacement:
    def test_chained_declustering_layout(self):
        with GenieSession() as session:
            handle = build(session, shards=4, replicas=2)
            assert handle.replica_layout() == {
                0: (0, 1), 1: (1, 2), 2: (2, 3), 3: (3, 0),
            }

    def test_groups_span_distinct_devices(self):
        with GenieSession() as session:
            handle = build(session, shards=3, replicas=3)
            for devices in handle.replica_layout().values():
                assert len(set(devices)) == len(devices) == 3

    def test_pool_covers_replicas_beyond_shards(self):
        with GenieSession() as session:
            handle = build(session, shards=2, replicas=3)
            assert handle._pool_size() == 3
            for devices in handle.replica_layout().values():
                assert len(set(devices)) == 3

    def test_each_replica_is_its_own_residency_unit(self):
        with GenieSession() as session:
            handle = build(session, shards=4, replicas=2)
            parts = [p for g in handle._replica_parts for p in g]
            assert len(parts) == 8
            assert len({id(p) for p in parts}) == 8

    def test_replicas_must_be_positive(self):
        with GenieSession() as session:
            with pytest.raises(ConfigError):
                build(session, shards=2, replicas=0)

    def test_replicas_require_shards(self):
        with GenieSession() as session:
            with pytest.raises(ConfigError, match="shards"):
                session.create_index(
                    make_data(), model="raw", name="idx", replicas=2
                )


class TestFailover:
    def test_results_match_unreplicated_sharded(self):
        queries = make_queries()
        with GenieSession() as a, GenieSession() as b:
            plain = a.create_index(make_data(), model="raw", name="idx", shards=4)
            repl = build(b, shards=4, replicas=2)
            assert results_of(plain, queries) == results_of(repl, queries)

    def test_failover_is_bit_identical_and_priced(self):
        queries = make_queries()
        with GenieSession() as healthy, GenieSession() as faulty:
            expected = results_of(build(healthy), queries)
            handle = build(faulty)
            faulty.inject_faults(FaultPlan([FaultEvent(device=1, start=0.0)]))
            assert results_of(handle, queries) == expected
            r = handle.search([queries[0]], k=K)
            assert r.failovers
            assert all(ev.device == 1 for ev in r.failovers)
            assert all(ev.penalty > 0 for ev in r.failovers)

    def test_failover_penalty_lands_on_critical_path(self):
        with GenieSession() as session:
            handle = build(session)
            q = make_queries(count=1)
            before = handle.search(q, k=K).profile.get("failover_retry")
            session.inject_faults(FaultPlan([FaultEvent(device=1, start=0.0)]))
            after = handle.search(q, k=K).profile.get("failover_retry")
            assert before == 0.0
            assert after > 0.0

    def test_slow_device_stretches_but_preserves_results(self):
        queries = make_queries()
        with GenieSession() as healthy, GenieSession() as slowed:
            expected = results_of(build(healthy), queries)
            handle = build(slowed)
            slowed.inject_faults(
                FaultPlan([
                    FaultEvent(device=0, start=0.0, kind="slow", factor=8.0)
                ])
            )
            assert results_of(handle, queries) == expected

    def test_single_replica_down_raises_availability_error(self):
        with GenieSession() as session:
            handle = build(session, shards=4, replicas=1)
            session.inject_faults(FaultPlan([FaultEvent(device=1, start=0.0)]))
            broad = np.arange(VOCAB, dtype=np.int64)  # hits every shard
            with pytest.raises(AvailabilityError) as err:
                handle.search([broad], k=K)
            assert err.value.shard == 1
            assert err.value.devices == (1,)

    def test_whole_group_down_raises_for_two_replicas(self):
        with GenieSession() as session:
            handle = build(session, shards=4, replicas=2)
            session.inject_faults(
                FaultPlan([
                    FaultEvent(device=1, start=0.0),
                    FaultEvent(device=2, start=0.0),
                ])
            )
            broad = np.arange(VOCAB, dtype=np.int64)
            with pytest.raises(AvailabilityError) as err:
                handle.search([broad], k=K)
            assert sorted(err.value.devices) == [1, 2]

    def test_transient_outage_recovers(self):
        with GenieSession() as session:
            from repro.serve.clock import VirtualClock

            clock = VirtualClock()
            handle = build(session)
            session.inject_faults(
                FaultPlan([FaultEvent(device=1, start=0.0, end=1.0)]),
                clock=clock,
            )
            q = make_queries(count=1)
            assert handle.search(q, k=K).failovers
            clock.advance_to(2.0)
            assert not handle.search(q, k=K).failovers


class TestReReplication:
    def test_re_replicate_restores_group_width(self):
        with GenieSession() as session:
            handle = build(session, shards=4, replicas=2)
            session.inject_faults(FaultPlan([FaultEvent(device=1, start=0.0)]))
            placed = handle.re_replicate()
            assert placed == 2  # device 1 hosted shard 0 r1 and shard 1 r0
            layout = handle.replica_layout()
            assert all(1 not in devices for devices in layout.values())
            assert all(len(set(d)) == 2 for d in layout.values())

    def test_healed_index_serves_without_failover(self):
        queries = make_queries()
        with GenieSession() as healthy, GenieSession() as faulty:
            expected = results_of(build(healthy), queries)
            handle = build(faulty)
            faulty.inject_faults(FaultPlan([FaultEvent(device=1, start=0.0)]))
            handle.re_replicate()
            assert results_of(handle, queries) == expected
            assert not handle.search([queries[0]], k=K).failovers

    def test_transient_outage_does_not_re_replicate(self):
        with GenieSession() as session:
            handle = build(session)
            session.inject_faults(
                FaultPlan([FaultEvent(device=1, start=0.0, end=10.0)])
            )
            assert handle.re_replicate() == 0

    def test_no_faults_no_op(self):
        with GenieSession() as session:
            handle = build(session)
            assert handle.re_replicate() == 0

    def test_re_replicate_is_idempotent(self):
        with GenieSession() as session:
            handle = build(session)
            session.inject_faults(FaultPlan([FaultEvent(device=1, start=0.0)]))
            assert handle.re_replicate() > 0
            assert handle.re_replicate() == 0


class TestLoadSteering:
    def test_scan_prefers_least_loaded_replica(self):
        with GenieSession() as session:
            handle = build(session, shards=4, replicas=2)
            part = handle._replica_parts[0][0]
            # Pile synthetic busy seconds onto device 0; the group
            # (devices 0, 1) must now lead with the replica on 1.
            session.device_load.record(0, 10.0)
            candidates = handle._scan_candidates(part)
            first = session.device_position(candidates[0].engine.device)
            assert first == 1

    def test_delta_parts_pass_through(self):
        with GenieSession() as session:
            handle = build(session)
            other = handle._replica_parts[0][0]

            class Fake:
                pass

            fake = Fake()
            assert handle._scan_candidates(fake) == (fake,)
            assert other in handle._scan_candidates(other)
