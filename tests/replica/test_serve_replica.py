"""Served replication: failover counters, healing, policy-driven recuts."""

import numpy as np

from repro.api import GenieSession
from repro.replica import FaultEvent, FaultPlan, RebalancePolicy
from repro.serve import BatchPolicy, GenieServer

K = 5
VOCAB = 300


def make_data(seed=0, n=600):
    rng = np.random.default_rng(seed)
    return [
        np.unique(rng.choice(VOCAB, size=10, replace=False)).astype(np.int64)
        for _ in range(n)
    ]


def make_queries(seed=1, count=24):
    rng = np.random.default_rng(seed)
    return [
        np.sort(rng.choice(VOCAB, size=6, replace=False)).astype(np.int64)
        for _ in range(count)
    ]


def serve_all(server, queries, advance=1e-5):
    futures = []
    for q in queries:
        futures.append(server.submit("idx", q, k=K))
        server.advance(advance)
    server.drain()
    return [
        (
            tuple(np.asarray(f.result().ids).ravel()),
            tuple(np.asarray(f.result().counts).ravel()),
        )
        for f in futures
    ]


def make_server(session, **kw):
    kw.setdefault("policy", BatchPolicy.micro(max_batch=8, max_wait=1e-4))
    kw.setdefault("cache_size", None)
    return GenieServer(session, **kw)


class TestServedFailover:
    def test_kill_one_device_zero_failed_futures_identical_results(self):
        queries = make_queries()
        with GenieSession() as healthy, GenieSession() as faulty:
            healthy.create_index(
                make_data(), model="raw", name="idx", shards=4, replicas=2
            )
            expected = serve_all(make_server(healthy), queries)

            faulty.create_index(
                make_data(), model="raw", name="idx", shards=4, replicas=2
            )
            faulty.inject_faults(FaultPlan([FaultEvent(device=1, start=0.0)]))
            server = make_server(faulty)
            got = serve_all(server, queries)
            assert got == expected
            snap = server.metrics.snapshot()
            assert snap["replica_failovers"] > 0
            server.close()

    def test_permanent_failure_triggers_re_replication(self):
        with GenieSession() as session:
            handle = session.create_index(
                make_data(), model="raw", name="idx", shards=4, replicas=2
            )
            session.inject_faults(FaultPlan([FaultEvent(device=1, start=0.0)]))
            server = make_server(session)
            serve_all(server, make_queries())
            snap = server.metrics.snapshot()
            assert snap["replica_re_replications"] == 2
            layout = handle.replica_layout()
            assert all(1 not in devices for devices in layout.values())
            server.close()

    def test_transient_failure_heals_itself_without_copies(self):
        with GenieSession() as session:
            session.create_index(
                make_data(), model="raw", name="idx", shards=4, replicas=2
            )
            session.inject_faults(
                FaultPlan([FaultEvent(device=1, start=0.0, end=2e-4)])
            )
            server = make_server(session)
            serve_all(server, make_queries())
            snap = server.metrics.snapshot()
            assert snap["replica_failovers"] > 0
            assert snap["replica_re_replications"] == 0
            # past the outage window the device serves again
            assert server.metrics.replica_failovers == snap["replica_failovers"]
            server.close()

    def test_fault_clock_is_auto_wired_to_server(self):
        with GenieSession() as session:
            session.create_index(
                make_data(), model="raw", name="idx", shards=4, replicas=2
            )
            injector = session.inject_faults(
                FaultPlan([FaultEvent(device=0, start=0.0)])
            )
            assert injector.clock is None
            server = make_server(session)
            assert injector.clock is server.clock
            server.close()


def narrow_band_rows(n=1200, span=30, seed=0):
    rng = np.random.default_rng(seed)
    base = np.sort(rng.integers(0, n, size=n))
    return [
        np.unique(rng.integers(b, b + span, size=8)).astype(np.int64)
        for b in base
    ]


class TestServedRebalance:
    def _skewed_workload(self, n=1200):
        rng = np.random.default_rng(4)
        hot = [
            np.sort(rng.choice(n // 4, size=6, replace=False)).astype(np.int64)
            for _ in range(40)
        ]
        cold = [
            np.sort(rng.choice(n - 50, size=6, replace=False)).astype(np.int64)
            for _ in range(8)
        ]
        return hot + cold

    def test_policy_recuts_hot_shard_and_preserves_results(self):
        rows = narrow_band_rows()
        queries = self._skewed_workload()
        with GenieSession() as session:
            handle = session.create_index(
                rows, model="raw", name="idx", shards=4
            )
            expected = [
                tuple(np.asarray(handle.search([q], k=K).ids).ravel())
                for q in queries
            ]
            policy = RebalancePolicy(threshold=1.25, min_window=8, cooldown=16)
            server = make_server(session, rebalance=policy)
            got = serve_all(server, queries * 3)
            snap = server.metrics.snapshot()
            assert snap["replica_rebalances"] >= 1
            assert handle.rebalance_epoch >= 1
            sizes = [len(p.corpus) for p in handle._parts]
            assert max(sizes) > min(sizes)  # recut followed the skew
            for i, (ids, _counts) in enumerate(got):
                assert ids == expected[i % len(queries)]
            server.close()

    def test_rebalance_resets_rolling_window(self):
        rows = narrow_band_rows()
        queries = self._skewed_workload()
        with GenieSession() as session:
            session.create_index(rows, model="raw", name="idx", shards=4)
            policy = RebalancePolicy(threshold=1.25, min_window=8, cooldown=64)
            server = make_server(session, rebalance=policy)
            serve_all(server, queries * 3)
            metrics = server.metrics
            if metrics.replica_rebalances:
                # post-fire observations only: the window was rebuilt
                # from scratch after the recut
                assert metrics.rolling_window_batches < metrics.sharded_batches
            server.close()

    def test_no_policy_means_no_rebalance(self):
        rows = narrow_band_rows()
        with GenieSession() as session:
            handle = session.create_index(rows, model="raw", name="idx", shards=4)
            server = make_server(session)
            serve_all(server, self._skewed_workload() * 3)
            assert server.metrics.replica_rebalances == 0
            assert handle.rebalance_epoch == 0
            server.close()
