"""Property suite: fault-injected serving is bit-identical to fault-free.

The availability contract, stated as a property: for any seeded
:class:`FaultPlan` that keeps at most ``replicas - 1`` devices down at
once, serving a workload through a replicated index produces *exactly*
the ids, counts, and tie order the fault-free run produces — failures
move latency (retry penalties, slow factors), never results. With a
single replica the same plans instead surface a clean
:class:`AvailabilityError` whenever a scanned shard's only device is
down — never a hang, never a silently dropped future.
"""

import itertools

import numpy as np
import pytest

from repro.api import GenieSession
from repro.errors import AvailabilityError
from repro.replica import FaultEvent, FaultPlan
from repro.serve import BatchPolicy, GenieServer

K = 5
VOCAB = 240
HORIZON = 1e-3  # virtual seconds; outages cycle well inside a drain


def make_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    return [
        np.unique(rng.choice(VOCAB, size=9, replace=False)).astype(np.int64)
        for _ in range(n)
    ]


def make_queries(count=20, seed=1):
    rng = np.random.default_rng(seed)
    return [
        np.sort(rng.choice(VOCAB, size=6, replace=False)).astype(np.int64)
        for _ in range(count)
    ]


def serve_results(session, queries):
    server = GenieServer(
        session,
        policy=BatchPolicy.micro(max_batch=8, max_wait=1e-4),
        cache_size=None,
    )
    futures = []
    for q in queries:
        futures.append(server.submit("idx", q, k=K))
        server.advance(HORIZON / (2 * len(queries)))
    server.drain()
    out = []
    for f in futures:
        r = f.result()  # zero failed futures is part of the property
        out.append(
            (
                tuple(np.asarray(r.ids).ravel()),
                tuple(np.asarray(r.counts).ravel()),
                float(np.asarray(r.threshold).ravel()[0])
                if np.asarray(r.threshold).size
                else None,
            )
        )
    server.close()
    return out


CASES = [
    pytest.param(strategy, shards, replicas, seed,
                 id=f"{strategy}-s{shards}-r{replicas}-seed{seed}")
    for strategy, shards, replicas, seed in itertools.product(
        ("range", "hash"), (1, 2, 4), (2, 3), (11, 23)
    )
]


class TestFaultTransparency:
    @pytest.mark.parametrize("strategy,shards,replicas,seed", CASES)
    def test_bit_identical_under_random_faults(
        self, strategy, shards, replicas, seed
    ):
        data, queries = make_data(), make_queries()
        with GenieSession() as clean, GenieSession() as faulty:
            clean.create_index(
                data, model="raw", name="idx", shards=shards,
                replicas=replicas, shard_strategy=strategy,
            )
            expected = serve_results(clean, queries)

            faulty.create_index(
                data, model="raw", name="idx", shards=shards,
                replicas=replicas, shard_strategy=strategy,
            )
            pool = max(shards, replicas)
            plan = FaultPlan.random(
                n_devices=pool, horizon=HORIZON, seed=seed,
                max_down=replicas - 1, mean_outage=HORIZON / 4,
                slow_fraction=0.3,
            )
            faulty.inject_faults(plan)
            assert serve_results(faulty, queries) == expected

    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_direct_search_matches_too(self, seed):
        # The property holds below the serve layer as well: plain
        # handle.search under a static outage equals the fault-free run.
        data, queries = make_data(), make_queries()
        with GenieSession() as clean, GenieSession() as faulty:
            h0 = clean.create_index(
                data, model="raw", name="idx", shards=4, replicas=2
            )
            expected = [
                tuple(np.asarray(h0.search([q], k=K).ids).ravel())
                for q in queries
            ]
            h1 = faulty.create_index(
                data, model="raw", name="idx", shards=4, replicas=2
            )
            rng = np.random.default_rng(seed)
            victim = int(rng.integers(4))
            faulty.inject_faults(
                FaultPlan([FaultEvent(device=victim, start=0.0)])
            )
            got = [
                tuple(np.asarray(h1.search([q], k=K).ids).ravel())
                for q in queries
            ]
            assert got == expected


class TestSingleReplicaFailsClean:
    @pytest.mark.parametrize("victim", [0, 1, 3])
    def test_availability_error_names_the_dead_group(self, victim):
        with GenieSession() as session:
            handle = session.create_index(
                make_data(), model="raw", name="idx", shards=4, replicas=1
            )
            session.inject_faults(
                FaultPlan([FaultEvent(device=victim, start=0.0)])
            )
            broad = np.arange(VOCAB, dtype=np.int64)
            with pytest.raises(AvailabilityError) as err:
                handle.search([broad], k=K)
            assert err.value.shard == victim  # range shard s on device s
            assert err.value.devices == (victim,)

    def test_served_single_replica_failure_is_a_failed_future_not_a_hang(self):
        with GenieSession() as session:
            session.create_index(
                make_data(), model="raw", name="idx", shards=4, replicas=1
            )
            session.inject_faults(FaultPlan([FaultEvent(device=2, start=0.0)]))
            server = GenieServer(session, policy=BatchPolicy.fifo())
            broad = np.arange(VOCAB, dtype=np.int64)
            future = server.submit("idx", broad, k=K)
            server.drain()
            with pytest.raises(AvailabilityError):
                future.result()
            server.close()

    def test_pruned_shards_keep_serving_around_a_dead_one(self):
        # Range routing elides the dead shard for queries whose keywords
        # cannot live there — those still answer.
        rng = np.random.default_rng(0)
        base = np.sort(rng.integers(0, 1000, size=1000))
        rows = [
            np.unique(rng.integers(b, b + 25, size=8)).astype(np.int64)
            for b in base
        ]
        with GenieSession() as session:
            handle = session.create_index(
                rows, model="raw", name="idx", shards=4, replicas=1
            )
            session.inject_faults(FaultPlan([FaultEvent(device=3, start=0.0)]))
            low = np.arange(40, dtype=np.int64)  # far from shard 3's range
            result = handle.search([low], k=K)
            assert np.asarray(result.ids).size
