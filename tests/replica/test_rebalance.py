"""Rebalancing: load-weighted cuts, the policy gates, online recutting."""

import numpy as np
import pytest

from repro.api import GenieSession
from repro.errors import ConfigError
from repro.replica import RebalancePolicy, balanced_range_bounds
from repro.serve.metrics import ServeMetrics

K = 5


class TestBalancedRangeBounds:
    def test_uniform_weights_keep_even_cuts(self):
        bounds = balanced_range_bounds([25, 25, 25, 25], [1.0, 1.0, 1.0, 1.0])
        assert bounds == [0, 25, 50, 75, 100]

    def test_hot_shard_shrinks(self):
        bounds = balanced_range_bounds([50, 50], [9.0, 1.0])
        assert bounds is not None
        hot = bounds[1] - bounds[0]
        cold = bounds[2] - bounds[1]
        assert hot < cold
        assert bounds[0] == 0 and bounds[-1] == 100

    def test_cold_shards_keep_a_floor_share(self):
        bounds = balanced_range_bounds([40, 40, 40], [10.0, 0.0, 0.0])
        assert bounds is not None
        sizes = np.diff(bounds)
        assert all(sizes >= 1)
        # the zero-traffic shards are floored, not starved to one object
        assert sizes[1] > 1 and sizes[2] > 1

    def test_every_shard_gets_at_least_one_object(self):
        bounds = balanced_range_bounds([2, 2, 2], [100.0, 0.0, 0.0])
        assert bounds is not None
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_degenerate_inputs_return_none(self):
        assert balanced_range_bounds([100], [1.0]) is None
        assert balanced_range_bounds([1, 0], [1.0, 1.0]) is None
        assert balanced_range_bounds([50, 50], [0.0, 0.0]) is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            balanced_range_bounds([10, 10], [1.0])
        with pytest.raises(ConfigError):
            balanced_range_bounds([10, -1], [1.0, 1.0])


class TestRebalancePolicy:
    def _metrics_with_window(self, batches, seconds):
        metrics = ServeMetrics()
        for _ in range(batches):
            metrics.record_batch(1, sum(seconds), 0, 0, shard_seconds=seconds)
        return metrics

    def test_fires_past_threshold_with_full_window(self):
        policy = RebalancePolicy(threshold=1.25, min_window=4, cooldown=8)
        metrics = self._metrics_with_window(4, [4.0, 1.0, 1.0, 1.0])
        assert policy.should_rebalance(metrics)

    def test_warmup_gate(self):
        policy = RebalancePolicy(threshold=1.25, min_window=4, cooldown=8)
        metrics = self._metrics_with_window(3, [4.0, 1.0, 1.0, 1.0])
        assert not policy.should_rebalance(metrics)

    def test_threshold_gate(self):
        policy = RebalancePolicy(threshold=1.25, min_window=4, cooldown=8)
        metrics = self._metrics_with_window(4, [1.1, 1.0, 1.0, 1.0])
        assert not policy.should_rebalance(metrics)

    def test_cooldown_gate(self):
        policy = RebalancePolicy(threshold=1.25, min_window=2, cooldown=10)
        metrics = self._metrics_with_window(4, [4.0, 1.0, 1.0, 1.0])
        assert policy.should_rebalance(metrics)
        policy.note_fired(metrics)
        assert not policy.should_rebalance(metrics)
        for _ in range(10):
            metrics.record_batch(1, 7.0, 0, 0, shard_seconds=[4.0, 1.0, 1.0, 1.0])
        assert policy.should_rebalance(metrics)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RebalancePolicy(threshold=0.9)
        with pytest.raises(ConfigError):
            RebalancePolicy(min_window=0)
        with pytest.raises(ConfigError):
            RebalancePolicy(cooldown=-1)


def narrow_band_rows(n=1200, span=30, seed=0):
    """Rows whose keywords cluster near their sort position — real range
    pruning, and low-band queries land on the low shards only."""
    rng = np.random.default_rng(seed)
    base = np.sort(rng.integers(0, n, size=n))
    return [
        np.unique(rng.integers(b, b + span, size=8)).astype(np.int64)
        for b in base
    ]


class TestOnlineRebalance:
    def _build(self, session, shards=4, **kw):
        return session.create_index(
            narrow_band_rows(), model="raw", name="idx", shards=shards, **kw
        )

    def _queries(self, lo, hi, count=16, seed=3):
        rng = np.random.default_rng(seed)
        return [
            np.sort(rng.choice(np.arange(lo, hi), size=6, replace=False)).astype(np.int64)
            for _ in range(count)
        ]

    def test_recut_moves_objects_and_preserves_results(self):
        queries = self._queries(0, 400)
        with GenieSession() as session:
            handle = self._build(session)
            before_sizes = [len(p.corpus) for p in handle._parts]
            expected = [
                tuple(np.asarray(handle.search([q], k=K).ids).ravel())
                for q in queries
            ]
            assert handle.rebalance([10.0, 1.0, 1.0, 1.0])
            after_sizes = [len(p.corpus) for p in handle._parts]
            assert after_sizes != before_sizes
            assert after_sizes[0] < before_sizes[0]  # hot range split
            assert sum(after_sizes) == sum(before_sizes)
            got = [
                tuple(np.asarray(handle.search([q], k=K).ids).ravel())
                for q in queries
            ]
            assert got == expected

    def test_rebalance_bumps_epoch_and_invalidates_plans(self):
        with GenieSession() as session:
            handle = self._build(session)
            q = self._queries(0, 400, count=1)
            handle.search(q, k=K)
            epoch_before = handle._plan_epoch()
            assert handle.rebalance([10.0, 1.0, 1.0, 1.0])
            assert handle.rebalance_epoch == 1
            assert handle._plan_epoch() != epoch_before
            handle.search(q, k=K)  # recompiles against the new cuts

    def test_identical_weights_are_a_no_op(self):
        with GenieSession() as session:
            handle = self._build(session)
            assert not handle.rebalance([1.0, 1.0, 1.0, 1.0])
            assert handle.rebalance_epoch == 0

    def test_replicated_handle_rebalances_all_replicas(self):
        queries = self._queries(0, 400)
        with GenieSession() as session:
            handle = self._build(session, replicas=2)
            expected = [
                tuple(np.asarray(handle.search([q], k=K).ids).ravel())
                for q in queries
            ]
            assert handle.rebalance([10.0, 1.0, 1.0, 1.0])
            layout = handle.replica_layout()
            assert all(len(set(d)) == 2 for d in layout.values())
            got = [
                tuple(np.asarray(handle.search([q], k=K).ids).ravel())
                for q in queries
            ]
            assert got == expected

    def test_hash_sharding_refuses(self):
        with GenieSession() as session:
            handle = session.create_index(
                narrow_band_rows(), model="raw", name="idx", shards=4,
                shard_strategy="hash",
            )
            assert not handle.rebalance([10.0, 1.0, 1.0, 1.0])

    def test_pending_stream_mutations_refuse(self):
        with GenieSession() as session:
            handle = self._build(session)
            handle.insert([np.array([3, 4, 5], dtype=np.int64)])
            assert not handle.rebalance([10.0, 1.0, 1.0, 1.0])

    def test_unfitted_handle_raises(self):
        with GenieSession() as session:
            handle = session.declare_index(model="raw", name="idx", shards=4)
            with pytest.raises(ConfigError):
                handle.rebalance([1.0, 2.0])
