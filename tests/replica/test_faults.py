"""FaultPlan/FaultInjector: seeded schedules, status math, retry pricing."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.replica import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    STATUS_DOWN,
    STATUS_SLOW,
    STATUS_UP,
)


class TestFaultEvent:
    def test_transient_window(self):
        ev = FaultEvent(device=1, start=2.0, end=5.0)
        assert not ev.active(1.9)
        assert ev.active(2.0)
        assert ev.active(4.999)
        assert not ev.active(5.0)
        assert not ev.permanent

    def test_permanent_has_no_end(self):
        ev = FaultEvent(device=0, start=1.0)
        assert ev.permanent
        assert ev.active(1e9)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultEvent(device=-1, start=0.0)
        with pytest.raises(ConfigError):
            FaultEvent(device=0, start=2.0, end=1.0)
        with pytest.raises(ConfigError):
            FaultEvent(device=0, start=0.0, kind="meltdown")
        with pytest.raises(ConfigError):
            FaultEvent(device=0, start=0.0, kind="slow", factor=0.5)


class TestFaultPlanState:
    def test_crash_dominates_slow(self):
        plan = FaultPlan([
            FaultEvent(device=0, start=0.0, end=10.0, kind="slow", factor=3.0),
            FaultEvent(device=0, start=2.0, end=4.0),
        ])
        assert plan.state(0, 1.0) == (STATUS_SLOW, 3.0)
        assert plan.state(0, 3.0)[0] == STATUS_DOWN
        assert plan.state(0, 5.0) == (STATUS_SLOW, 3.0)
        assert plan.state(0, 11.0) == (STATUS_UP, 1.0)

    def test_overlapping_slowdowns_take_max_factor(self):
        plan = FaultPlan([
            FaultEvent(device=2, start=0.0, end=10.0, kind="slow", factor=2.0),
            FaultEvent(device=2, start=1.0, end=3.0, kind="slow", factor=6.0),
        ])
        assert plan.state(2, 2.0) == (STATUS_SLOW, 6.0)
        assert plan.state(2, 5.0) == (STATUS_SLOW, 2.0)

    def test_down_devices_and_permanence(self):
        plan = FaultPlan([
            FaultEvent(device=0, start=1.0),
            FaultEvent(device=3, start=0.0, end=2.0),
        ])
        assert plan.down_devices(1.5) == (0, 3)
        assert plan.down_devices(2.5) == (0,)
        assert plan.permanently_down(0, 1.5)
        assert not plan.permanently_down(3, 1.5)

    def test_untouched_device_is_up(self):
        plan = FaultPlan([FaultEvent(device=0, start=0.0)])
        assert plan.state(7, 0.0) == (STATUS_UP, 1.0)


class TestRandomPlans:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(n_devices=4, horizon=1.0, seed=7, max_down=2)
        b = FaultPlan.random(n_devices=4, horizon=1.0, seed=7, max_down=2)
        assert a.events == b.events
        assert a.events  # a nonempty schedule, or the test is vacuous

    def test_different_seed_different_plan(self):
        a = FaultPlan.random(n_devices=4, horizon=1.0, seed=7)
        b = FaultPlan.random(n_devices=4, horizon=1.0, seed=8)
        assert a.events != b.events

    @pytest.mark.parametrize("max_down", [1, 2])
    def test_concurrent_crashes_never_exceed_max_down(self, max_down):
        plan = FaultPlan.random(
            n_devices=4, horizon=2.0, seed=3, max_down=max_down
        )
        probes = np.linspace(0.0, 2.0, 400)
        worst = max(len(plan.down_devices(t)) for t in probes)
        assert worst <= max_down

    def test_slow_fraction_produces_slowdowns(self):
        plan = FaultPlan.random(
            n_devices=4, horizon=2.0, seed=5, slow_fraction=1.0, slow_factor=3.0
        )
        assert plan.events
        assert all(ev.kind == "slow" for ev in plan.events)


class TestInjector:
    def test_retry_penalty_is_deterministic_per_context(self):
        a = FaultInjector(FaultPlan([]), seed=4)
        b = FaultInjector(FaultPlan([]), seed=4)
        assert a.retry_penalty_for(2, 0) == b.retry_penalty_for(2, 0)
        assert a.retry_penalty_for(2, 0) != a.retry_penalty_for(2, 1)
        assert a.retry_penalty_for(2, 0) != a.retry_penalty_for(3, 0)

    def test_penalty_within_jitter_band(self):
        inj = FaultInjector(FaultPlan([]), retry_penalty=1e-3, retry_jitter=0.5)
        for shard in range(4):
            p = inj.retry_penalty_for(shard, 0)
            assert 0.5e-3 <= p <= 1.5e-3

    def test_without_clock_time_is_zero(self):
        inj = FaultInjector(FaultPlan([FaultEvent(device=0, start=1.0)]))
        assert inj.now() == 0.0
        assert inj.state(0)[0] == STATUS_UP  # fault starts later

    def test_negative_device_is_always_up(self):
        inj = FaultInjector(FaultPlan([FaultEvent(device=0, start=0.0)]))
        assert inj.state(-1) == (STATUS_UP, 1.0)
