"""Tests for Span trees and the Tracer: structure, export, sampling."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs import Span, Tracer


def _sample_tree():
    root = Span("request", start=1.0, duration=0.5, seq=7, index="docs")
    root.child("admit", start=1.0)
    batch = root.child("batch", start=1.2, duration=0.3, batch_size=2)
    batch.child("scan", start=1.2, duration=0.2, shard=1)
    return root


class TestSpan:
    def test_end_and_child_attachment(self):
        root = _sample_tree()
        assert root.end == pytest.approx(1.5)
        assert [child.name for child in root.children] == ["admit", "batch"]

    def test_walk_is_preorder_with_depths(self):
        walked = [(depth, span.name) for depth, span in _sample_tree().walk()]
        assert walked == [(0, "request"), (1, "admit"), (1, "batch"), (2, "scan")]

    def test_find(self):
        root = _sample_tree()
        assert root.find("scan").attrs["shard"] == 1
        assert root.find("nope") is None

    def test_shift_moves_the_whole_subtree(self):
        root = _sample_tree()
        root.shift(10.0)
        assert root.start == pytest.approx(11.0)
        assert root.find("scan").start == pytest.approx(11.2)

    def test_copy_is_deep(self):
        root = _sample_tree()
        dup = root.copy()
        dup.find("scan").attrs["shard"] = 99
        dup.find("batch").child("extra")
        assert root.find("scan").attrs["shard"] == 1
        assert len(root.find("batch").children) == 1

    def test_to_dict_round_trips_structure(self):
        tree = _sample_tree().to_dict()
        assert tree["name"] == "request"
        assert tree["attrs"] == {"seq": 7, "index": "docs"}
        assert tree["children"][1]["children"][0]["name"] == "scan"

    def test_render_connectors_and_attrs(self):
        text = _sample_tree().render()
        lines = text.splitlines()
        assert lines[0].startswith("request [")
        assert "seq=7" in lines[0]
        assert lines[1].startswith("├─ admit")
        assert lines[2].startswith("└─ batch")
        assert lines[3].startswith("   └─ scan")

    def test_render_keeps_microsecond_durations_visible(self):
        # A fixed ms decimal format would print 2 µs as "0.000 ms".
        span = Span("tiny", start=0.0, duration=2e-6)
        assert "+ 0.002 ms" in span.render()


class TestTracerSampling:
    def test_sample_every_one_traces_all(self):
        tracer = Tracer(sample_every=1)
        assert all(tracer.sampled(seq) for seq in range(5))

    def test_one_in_n_is_deterministic_on_seq(self):
        tracer = Tracer(sample_every=3)
        picks = [tracer.sampled(seq) for seq in range(7)]
        assert picks == [True, False, False, True, False, False, True]

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            Tracer(sample_every=0)
        with pytest.raises(ConfigError):
            Tracer(keep=0)


class TestTracerStore:
    def test_keep_bounds_retained_traces(self):
        tracer = Tracer(keep=2)
        for seq in range(5):
            tracer.record(Span("request", seq=seq))
        assert tracer.total_traces == 5
        assert [span.attrs["seq"] for span in tracer.traces] == [3, 4]


class TestChromeExport:
    def test_events_carry_pid_tid_micros_and_depth(self):
        tracer = Tracer()
        tracer.record(_sample_tree())
        events = tracer.chrome_trace_events()
        assert [event["name"] for event in events] == [
            "request", "admit", "batch", "scan"]
        root_event = events[0]
        assert root_event["ph"] == "X"
        assert root_event["pid"] == 7          # request seq
        assert root_event["ts"] == pytest.approx(1.0e6)   # µs
        assert root_event["dur"] == pytest.approx(0.5e6)
        assert root_event["args"]["depth"] == 0
        scan_event = events[-1]
        assert scan_event["tid"] == 1          # shard lane
        assert scan_event["args"]["depth"] == 2

    def test_export_writes_loadable_json(self, tmp_path):
        tracer = Tracer()
        tracer.record(_sample_tree())
        path = tmp_path / "trace.json"
        text = tracer.export_chrome_trace(path)
        payload = json.loads(path.read_text())
        assert json.loads(text) == payload
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == 4

    def test_export_is_deterministic(self):
        def build():
            tracer = Tracer()
            tracer.record(_sample_tree())
            return tracer.export_chrome_trace()
        assert build() == build()
