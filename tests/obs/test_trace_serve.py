"""End-to-end request tracing through GenieServer on the virtual clock.

The acceptance contract: a served request against a sharded, streamed
index exports a Chrome trace covering admission → queueing → planning →
per-shard scans → delta scans → merge, and the export is bit-identical
across repeated runs of the same seeded workload.
"""

import json

import numpy as np
import pytest

from repro.api import GenieSession
from repro.serve import BatchPolicy, GenieServer
from repro.stream import StreamConfig


def _docs(n=40):
    words = ["gpu", "index", "search", "fast", "cat", "dog", "tree", "blue",
             "red", "green", "warp", "batch", "queue", "cache", "merge", "scan"]
    rng = np.random.default_rng(0)
    return [" ".join(rng.choice(words, size=4, replace=False)) for _ in range(n)]


DOCS = _docs()


def make_server(**kwargs):
    session = GenieSession()
    session.create_index(DOCS, model="document", name="tweets")
    kwargs.setdefault("cache_size", None)
    kwargs.setdefault("policy", BatchPolicy.fifo())
    return GenieServer(session, **kwargs)


def serve_streamed_sharded_workload():
    """One seeded workload: sharded + streamed index, traced end to end."""
    session = GenieSession()
    session.create_index(
        [[i, i + 1] for i in range(16)], model="raw", name="events",
        shards=2, stream_config=StreamConfig(auto_compact=False))
    session.index("events").insert([[3, 50], [7, 50]])
    session.index("events").delete([0])
    server = GenieServer(session, policy=BatchPolicy.fifo(),
                         cache_size=None, trace_sample=1)
    # Keywords live in both range shards (3 → shard 0, 12 → shard 1), so
    # the plan scans both and the trace shows two shard lanes.
    future = server.submit("events", (3, 12), k=4)
    server.drain()
    server.close()
    return server, future


class TestTracedSearch:
    def test_direct_search_trace_has_plan_and_scan(self):
        session = GenieSession()
        session.create_index(DOCS, model="document", name="tweets")
        result = session.index("tweets").search([DOCS[0]], k=3, trace=True)
        assert result.trace is not None
        assert result.trace.name == "search"
        assert result.trace.find("plan") is not None
        assert result.trace.find("scan") is not None

    def test_untraced_search_has_no_trace(self):
        session = GenieSession()
        session.create_index(DOCS, model="document", name="tweets")
        result = session.index("tweets").search([DOCS[0]], k=3)
        assert result.trace is None


class TestServedTraceShape:
    def test_request_trace_covers_the_request_lifecycle(self):
        server = make_server(trace_sample=1)
        future = server.submit("tweets", DOCS[0], k=3)
        server.drain()
        root = future.metadata.trace
        assert root is not None and root.name == "request"
        for stage in ("admit", "queue_wait", "batch"):
            assert root.find(stage) is not None, stage
        assert root.find("search") is not None  # execution subtree rode along
        assert root.find("plan").attrs["cache_hit"] is False
        server.close()

    def test_sharded_streamed_trace_covers_all_stages(self):
        server, future = serve_streamed_sharded_workload()
        root = future.metadata.trace
        names = {span.name for _, span in root.walk()}
        for stage in ("admit", "queue_wait", "batch", "plan",
                      "base_scan", "delta_scan", "tombstone_filter",
                      "merge"):
            assert stage in names, stage
        # Two shards scanned in parallel: distinct shard lanes.
        shards = {span.attrs["shard"] for _, span in root.walk()
                  if span.name == "base_scan"}
        assert shards == {0, 1}
        # Span tree is well-formed: children fit inside their parent.
        for _, span in root.walk():
            for child in span.children:
                assert child.start >= span.start - 1e-12
                assert child.end <= span.end + 1e-12

    def test_chrome_export_is_bit_identical_across_runs(self):
        server_a, _ = serve_streamed_sharded_workload()
        server_b, _ = serve_streamed_sharded_workload()
        text_a = server_a.tracer.export_chrome_trace()
        text_b = server_b.tracer.export_chrome_trace()
        assert text_a == text_b
        events = json.loads(text_a)["traceEvents"]
        assert {event["name"] for event in events} >= {
            "request", "admit", "queue_wait", "batch",
            "plan", "base_scan", "delta_scan", "merge"}

    def test_span_tree_is_deterministic_across_runs(self):
        server_a, future_a = serve_streamed_sharded_workload()
        server_b, future_b = serve_streamed_sharded_workload()
        assert future_a.metadata.trace.to_dict() == future_b.metadata.trace.to_dict()
        assert future_a.metadata.trace.render() == future_b.metadata.trace.render()

    def test_cache_hit_requests_get_a_short_trace(self):
        server = make_server(trace_sample=1, cache_size=8)
        server.submit("tweets", DOCS[0], k=3)
        server.drain()
        warm = server.submit("tweets", DOCS[0], k=3)
        root = warm.metadata.trace
        assert warm.metadata.cache_hit
        assert root.find("cache_lookup").attrs["hit"] is True
        assert root.find("batch") is None  # never queued or executed
        server.close()


class TestSampling:
    def test_one_in_n_traces_only_matching_seqs(self):
        server = make_server(trace_sample=3)
        futures = [server.submit("tweets", DOCS[i], k=2) for i in range(7)]
        server.drain()
        traced = [f.metadata.trace is not None for f in futures]
        assert traced == [True, False, False, True, False, False, True]
        assert server.tracer.total_traces == 3
        server.close()

    def test_unsampled_requests_allocate_no_spans(self):
        server = make_server(trace_sample=1000)
        server.submit("tweets", DOCS[0], k=2)  # seq 0: sampled
        futures = [server.submit("tweets", DOCS[i], k=2) for i in range(1, 5)]
        server.drain()
        for future in futures:
            assert future.metadata.trace is None
        assert server.tracer.total_traces == 1
        server.close()

    def test_tracing_disabled_by_default(self):
        server = make_server()
        future = server.submit("tweets", DOCS[0], k=2)
        server.drain()
        assert server.tracer is None
        assert future.metadata.trace is None
        assert server.snapshot()["traces"] == 0
        server.close()

    def test_snapshot_counts_recorded_traces(self):
        server = make_server(trace_sample=1)
        for i in range(3):
            server.submit("tweets", DOCS[i], k=2)
        server.drain()
        assert server.snapshot()["traces"] == 3
        server.close()


class TestCompactionSpans:
    def test_compaction_records_a_standalone_span(self):
        session = GenieSession()
        session.create_index(
            [[i, i + 1] for i in range(8)], model="raw", name="events",
            stream_config=StreamConfig(auto_compact=False))
        server = GenieServer(session, policy=BatchPolicy.fifo(),
                             cache_size=None, trace_sample=1)
        session.index("events").insert([[3, 90]])
        session.index("events").compact()
        spans = [span for span in server.tracer.traces
                 if span.name == "compaction"]
        assert len(spans) == 1
        assert spans[0].attrs["segments"] == 1
        assert spans[0].duration > 0.0
        server.close()
