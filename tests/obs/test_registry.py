"""Tests for the typed metric primitives in repro.obs.registry."""

import pytest

from repro.errors import ConfigError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("hits")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_value_is_settable_for_legacy_augmented_assignment(self):
        # ServeMetrics call sites do ``metrics.rejected += 1``; the
        # property descriptor routes that through Counter.value.
        counter = Counter("rejected")
        counter.value += 3
        assert counter.value == 3


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("depth")
        gauge.set(7)
        gauge.set(2)
        assert gauge.value == 2


class TestHistogram:
    def test_exact_until_max_bins(self):
        hist = Histogram("sizes", max_bins=4)
        for value in (1, 2, 3, 1):
            hist.observe(value)
        assert hist.as_dict() == {1: 2, 2: 1, 3: 1}
        assert hist.clamped == 0

    def test_clamps_new_values_to_nearest_bin_once_full(self):
        # Regression for unbounded cardinality: with max_bins distinct
        # values seen, a novel value must fold into the nearest existing
        # bin instead of growing the dict.
        hist = Histogram("sizes", max_bins=3)
        for value in (10, 20, 30):
            hist.observe(value)
        hist.observe(21)  # nearest is 20
        hist.observe(25)  # equidistant 20/30: ties go to the lower bin
        hist.observe(1000)  # clamps to 30
        assert set(hist.as_dict()) == {10, 20, 30}
        assert hist.as_dict()[20] == 3
        assert hist.as_dict()[30] == 2
        assert hist.clamped == 3

    def test_mean_stays_exact_despite_clamping(self):
        hist = Histogram("sizes", max_bins=2)
        for value in (1, 3, 100):
            hist.observe(value)
        # 100 clamped into a bin, but total/count accumulate raw values.
        assert hist.mean == pytest.approx((1 + 3 + 100) / 3)
        assert hist.count == 3
        assert len(hist) == 2

    def test_percentile_uses_bin_values(self):
        hist = Histogram("sizes")
        for value in (1, 2, 2, 8):
            hist.observe(value)
        assert hist.percentile(50.0) == 2
        assert hist.percentile(100.0) == 8

    def test_rejects_bad_max_bins(self):
        with pytest.raises(ConfigError):
            Histogram("sizes", max_bins=0)


class TestMetricsRegistry:
    def test_snapshot_in_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a").set(1.5)
        registry.histogram("h").observe(3)
        snap = registry.snapshot()
        assert list(snap) == ["b", "a", "h"]
        assert snap == {"b": 0, "a": 1.5, "h": {3: 1}}

    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigError, match="already registered"):
            registry.gauge("x")

    def test_get_returns_the_live_instrument(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        registry.get("x").inc()
        assert counter.value == 1
