"""ServeMetrics back-compat: the registry refactor must not move a key.

``ServeMetrics.snapshot()`` is the dashboard contract every earlier PR
exported; rebuilding it on ``MetricsRegistry`` primitives must keep each
legacy key present with the same type and meaning, merely *adding* the
new observability keys.
"""

import numpy as np

from repro.api import GenieSession
from repro.serve import BatchPolicy, GenieServer, ServeMetrics

LEGACY_KEYS = [
    "submitted", "completed", "rejected", "failed",
    "cache_hits", "cache_misses",
    "batches", "mean_batch_size", "batch_size_histogram",
    "swap_ins", "evictions", "busy_seconds",
    "sharded_batches", "routed_batches", "pruned_shard_fraction",
    "shard_busy_seconds", "shard_imbalance",
    "elapsed_seconds", "throughput_qps",
    "plan_cache_hits", "plan_cache_misses",
    "plan_cache_invalidations", "plan_cache_size",
    "delta_postings", "compactions",
    "latency_p50", "latency_p95", "latency_p99",
    "queue_time_p50", "queue_time_p95", "queue_time_p99",
]

NEW_KEYS = [
    "rejected_by_reason", "cost_drift_p50", "cost_drift_p90",
    "cost_drift_samples",
]


def _docs(n=24):
    words = ["gpu", "index", "search", "fast", "cat", "dog", "tree", "blue",
             "red", "green", "warp", "batch", "queue", "cache", "merge", "scan"]
    rng = np.random.default_rng(0)
    return [" ".join(rng.choice(words, size=4, replace=False)) for _ in range(n)]


DOCS = _docs()


class TestSnapshotKeys:
    def test_every_legacy_key_survives_the_refactor(self):
        snapshot = ServeMetrics().snapshot()
        missing = [key for key in LEGACY_KEYS if key not in snapshot]
        assert not missing, f"legacy snapshot keys lost: {missing}"

    def test_new_observability_keys_present(self):
        snapshot = ServeMetrics().snapshot()
        for key in NEW_KEYS:
            assert key in snapshot, key
        assert snapshot["rejected_by_reason"] == {}
        assert snapshot["cost_drift_p50"] == 0.0

    def test_idle_metrics_values_match_the_seed_contract(self):
        snapshot = ServeMetrics().snapshot()
        assert snapshot["submitted"] == 0
        assert snapshot["batch_size_histogram"] == {}
        assert snapshot["throughput_qps"] == 0.0
        assert snapshot["latency_p50"] == 0.0


class TestServedSnapshotValues:
    def test_served_workload_populates_legacy_and_new_keys(self):
        session = GenieSession()
        session.create_index(DOCS, model="document", name="tweets")
        server = GenieServer(session, policy=BatchPolicy.micro(max_batch=4, max_wait=1.0),
                             cache_size=None)
        for query in DOCS[:8]:
            server.submit("tweets", query, k=3)
        server.drain()
        snapshot = server.metrics.snapshot()
        assert snapshot["submitted"] == 8
        assert snapshot["completed"] == 8
        assert snapshot["batches"] == 2
        assert snapshot["batch_size_histogram"] == {4: 2}
        assert snapshot["mean_batch_size"] == 4.0
        # Calibrated planning is off by default here, so drift has no
        # predictions to compare — samples stay 0, gauges stay 0.0.
        assert snapshot["cost_drift_samples"] >= 0
        assert isinstance(snapshot["rejected_by_reason"], dict)
        server.close()

    def test_batch_histogram_is_the_bounded_primitive(self):
        metrics = ServeMetrics()
        assert metrics.batch_size_histogram.max_bins == 128
        for size in range(300):
            metrics.record_batch(size=size + 1, service_seconds=0.0,
                                 swap_ins=0, evictions=0)
        assert len(metrics.batch_size_histogram) == 128
        assert metrics.batch_size_histogram.count == 300
