"""Tests for DriftTracker: relative error, skip rules, rolling window."""

import pytest

from repro.errors import ConfigError
from repro.obs import DriftTracker


class TestRecord:
    def test_relative_error(self):
        drift = DriftTracker()
        drift.record(predicted=1.2, observed=1.0)
        drift.record(predicted=0.5, observed=1.0)
        assert list(drift.errors) == [pytest.approx(0.2), pytest.approx(0.5)]
        assert drift.samples == 2

    def test_perfect_prediction_is_zero_error(self):
        drift = DriftTracker()
        drift.record(predicted=3.0, observed=3.0)
        assert drift.p50 == 0.0
        assert drift.p90 == 0.0

    def test_non_positive_observed_is_skipped_not_infinite(self):
        drift = DriftTracker()
        drift.record(predicted=1.0, observed=0.0)
        drift.record(predicted=1.0, observed=-2.0)
        drift.record(predicted=None, observed=1.0)
        drift.record(predicted=1.0, observed=None)
        assert len(drift) == 0
        assert drift.skipped == 4
        assert drift.p50 == 0.0  # empty window reports 0, not NaN


class TestWindow:
    def test_old_errors_age_out(self):
        drift = DriftTracker(window=2)
        drift.record(9.0, 1.0)   # error 8.0 — will age out
        drift.record(1.5, 1.0)   # error 0.5
        drift.record(1.5, 1.0)   # error 0.5
        assert drift.p90 == pytest.approx(0.5)
        assert drift.samples == 3  # lifetime count keeps going

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigError):
            DriftTracker(window=0)


class TestPercentiles:
    def test_nearest_rank(self):
        drift = DriftTracker()
        for predicted in (1.1, 1.2, 1.3, 1.4):
            drift.record(predicted, 1.0)
        assert drift.percentile(50.0) == pytest.approx(0.2)
        assert drift.percentile(100.0) == pytest.approx(0.4)
