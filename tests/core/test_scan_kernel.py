"""Tests for the match-kernel planner and launch assembly."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inverted_index import InvertedIndex
from repro.core.load_balance import LoadBalanceConfig
from repro.core.match_count import match_counts_all
from repro.core.scan_kernel import build_match_launch, build_select_launch, plan_query_scan
from repro.core.types import Corpus, Query
from repro.gpu.specs import TITAN_X


def _corpus():
    return Corpus([[1, 2, 3], [2, 3], [3, 4], [1, 4]])


class TestPlanQueryScan:
    def test_counts_match_reference(self):
        corpus = _corpus()
        index = InvertedIndex.build(corpus)
        query = Query(items=[[1, 2], [3]])
        plan = plan_query_scan(index, query, 0, k=2)
        assert np.array_equal(plan.counts, match_counts_all(query, corpus))

    def test_one_block_per_item_without_lb(self):
        index = InvertedIndex.build(_corpus())
        query = Query(items=[[1], [3], [4]])
        plan = plan_query_scan(index, query, 0, k=2)
        assert plan.block_sizes.size == 3

    def test_lb_splits_blocks(self):
        objects = [[7] for _ in range(64)]
        lb = LoadBalanceConfig(max_sublist_len=8, max_lists_per_block=2)
        index = InvertedIndex.build(Corpus(objects), load_balance=lb)
        query = Query(items=[[7]])
        plan = plan_query_scan(index, query, 0, k=2)
        # 64 entries -> 8 sublists -> 4 blocks of 2 sublists (16 entries).
        assert plan.block_sizes.tolist() == [16, 16, 16, 16]

    def test_unmatched_keywords_yield_empty_plan(self):
        index = InvertedIndex.build(_corpus())
        plan = plan_query_scan(index, Query(items=[[99]]), 0, k=2)
        assert plan.counts.sum() == 0
        assert plan.block_sizes.tolist() == [0]

    @settings(max_examples=25)
    @given(
        st.lists(st.lists(st.integers(0, 15), max_size=5), min_size=1, max_size=20),
        st.lists(st.lists(st.integers(0, 15), min_size=1, max_size=4), min_size=1, max_size=4),
    )
    def test_counts_equal_reference_on_random_input(self, raw_objects, raw_items):
        corpus = Corpus(raw_objects)
        index = InvertedIndex.build(corpus)
        query = Query(items=raw_items)
        plan = plan_query_scan(index, query, 0, k=3)
        assert np.array_equal(plan.counts, match_counts_all(query, corpus))


class TestLaunchAssembly:
    def _plans(self):
        index = InvertedIndex.build(_corpus())
        return [
            plan_query_scan(index, Query(items=[[1], [3]]), 0, k=2),
            plan_query_scan(index, Query(items=[[2, 4]]), 1, k=2),
        ]

    def test_match_launch_covers_all_blocks(self):
        plans = self._plans()
        launch = build_match_launch(plans, TITAN_X, 256, use_cpq=True)
        assert launch.num_blocks == sum(p.block_sizes.size for p in plans)
        assert launch.total_items == sum(int(p.block_sizes.sum()) for p in plans)

    def test_cpq_launch_has_gate_traffic(self):
        plans = self._plans()
        cpq = build_match_launch(plans, TITAN_X, 256, use_cpq=True)
        table = build_match_launch(plans, TITAN_X, 256, use_cpq=False)
        assert cpq.uncoalesced_bytes > 0
        assert table.uncoalesced_bytes == 0
        assert cpq.name != table.name

    def test_select_launch_one_block_per_query(self):
        plans = self._plans()
        launch = build_select_launch(plans, ht_capacity=64, k=2, threads_per_block=128)
        assert launch.num_blocks == 2
        assert launch.total_items == 128
