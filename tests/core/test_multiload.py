"""Tests for the multi-loading strategy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import GenieConfig, GenieEngine
from repro.core.multiload import MultiLoadGenie
from repro.core.types import Corpus, Query
from repro.errors import ConfigError, QueryError


def _counts(result):
    return sorted(result.counts.tolist(), reverse=True)


class TestMultiLoad:
    def test_partitioning(self):
        corpus = Corpus([[i % 5] for i in range(10)])
        engine = MultiLoadGenie(part_size=3).fit(corpus)
        assert engine.num_parts == 4

    def test_results_match_single_index(self):
        corpus = Corpus([[i % 6, 6 + (i % 4)] for i in range(30)])
        queries = [Query.from_keywords([0, 6]), Query.from_keywords([3, 8])]
        single = GenieEngine(config=GenieConfig(k=5)).fit(corpus)
        multi = MultiLoadGenie(config=GenieConfig(k=5), part_size=7).fit(corpus)
        for s, m in zip(single.query(queries), multi.query(queries)):
            assert _counts(s) == _counts(m)

    def test_global_ids_restored(self):
        # Object 25 (in the second part) must be reported with its global id.
        corpus = Corpus([[0]] * 20 + [[1]] * 10)
        multi = MultiLoadGenie(config=GenieConfig(k=1), part_size=20).fit(corpus)
        result = multi.query([Query.from_keywords([1])])[0]
        assert 20 <= int(result.ids[0]) < 30

    def test_profile_includes_transfer_and_merge(self):
        corpus = Corpus([[i % 3] for i in range(12)])
        multi = MultiLoadGenie(config=GenieConfig(k=2), part_size=4).fit(corpus)
        multi.query([Query.from_keywords([0])])
        assert multi.last_profile.get("index_transfer") > 0
        assert multi.last_profile.get("result_merge") > 0

    def test_errors(self):
        with pytest.raises(ConfigError):
            MultiLoadGenie(part_size=0)
        with pytest.raises(QueryError):
            MultiLoadGenie().query([Query.from_keywords([0])])
        corpus = Corpus([[0]])
        multi = MultiLoadGenie(part_size=1).fit(corpus)
        with pytest.raises(QueryError):
            multi.query([])

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.lists(st.integers(0, 9), max_size=4), min_size=2, max_size=25),
        st.lists(st.integers(0, 9), min_size=1, max_size=5),
        st.integers(1, 8),
        st.integers(1, 4),
    )
    def test_equivalence_random(self, raw_objects, keywords, part_size, k):
        corpus = Corpus(raw_objects)
        query = Query.from_keywords(keywords)
        single = GenieEngine(config=GenieConfig(k=k)).fit(corpus)
        multi = MultiLoadGenie(config=GenieConfig(k=k), part_size=part_size).fit(corpus)
        assert _counts(single.query([query])[0]) == _counts(multi.query([query])[0])
