"""Tests for the inverted index (List Array + Position Map)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inverted_index import InvertedIndex
from repro.core.load_balance import LoadBalanceConfig
from repro.core.types import Corpus


def _index(objects, lb=None):
    return InvertedIndex.build(Corpus(objects), load_balance=lb)


class TestBasicLookups:
    def test_spans_and_gather(self):
        index = _index([[1, 2], [2, 3]])
        assert index.postings_for_keyword(2).tolist() == [0, 1]
        assert index.postings_for_keyword(99).size == 0

    def test_spans_for_keywords_concatenates(self):
        index = _index([[1], [2]])
        spans = index.spans_for_keywords(np.array([1, 2]))
        assert index.gather(spans).tolist() == [0, 1]

    def test_gather_empty(self):
        index = _index([[1]])
        assert index.gather([]).size == 0

    def test_n_objects(self):
        assert _index([[1], [], [2]]).n_objects == 3

    def test_validate_passes_on_fresh_index(self):
        _index([[1, 2, 3], [2, 4]]).validate()


class TestPositionMapImmutability:
    def test_mutating_returned_spans_cannot_corrupt_lookups(self):
        index = _index([[1, 2], [2, 3], [2]])
        truth = index.spans_for_keyword(2)
        stolen = index.spans_for_keyword(2)
        stolen.clear()
        stolen.append((999, 1000))
        assert index.spans_for_keyword(2) == truth
        assert index.postings_for_keyword(2).tolist() == [0, 1, 2]

    def test_mutating_spans_for_keywords_result_is_harmless(self):
        index = _index([[1], [2], [1, 2]])
        spans = index.spans_for_keywords(np.array([1, 2]))
        truth = list(spans)
        spans.reverse()
        spans.append((5, 6))
        assert index.spans_for_keywords(np.array([1, 2])) == truth

    def test_position_map_view_is_read_only(self):
        index = _index([[1, 2], [2]])
        view = index._position_map
        with pytest.raises(TypeError):
            view[2] = [(0, 1)]
        with pytest.raises(TypeError):
            del view[2]
        # Values are tuples: in-place mutation is impossible too.
        assert all(isinstance(spans, tuple) for spans in view.values())

    def test_spans_agree_with_csr_truth_after_mutation_attempts(self):
        index = _index([[k] for k in [7] * 10 + [8] * 3], lb=LoadBalanceConfig(max_sublist_len=4))
        index.spans_for_keyword(7).append((0, 0))  # discarded copy
        rows, found = index.keyword_rows(np.array([7]))
        assert found.all()
        span_rows, _ = index.span_rows_for_keyword_rows(rows)
        csr_spans = [
            (int(index.span_starts[r]), int(index.span_ends[r])) for r in span_rows
        ]
        assert index.spans_for_keyword(7) == csr_spans


class TestLoadBalance:
    def test_long_list_is_split(self):
        objects = [[7] for _ in range(100)]
        plain = _index(objects)
        split = _index(objects, lb=LoadBalanceConfig(max_sublist_len=16))
        assert plain.num_lists == 1
        assert split.num_lists == 7  # ceil(100 / 16)
        assert split.max_list_len <= 16

    def test_split_index_returns_same_postings(self):
        objects = [[7] for _ in range(50)] + [[8, 7]]
        plain = _index(objects)
        split = _index(objects, lb=LoadBalanceConfig(max_sublist_len=8))
        assert np.array_equal(plain.postings_for_keyword(7), split.postings_for_keyword(7))
        split.validate()

    def test_short_lists_untouched(self):
        index = _index([[1], [2]], lb=LoadBalanceConfig(max_sublist_len=4096))
        assert index.num_lists == 2


class TestSizes:
    def test_device_bytes_is_list_array(self):
        index = _index([[1, 2], [3]])
        assert index.device_bytes() == index.list_array.nbytes

    def test_host_bytes_grows_with_splitting(self):
        objects = [[7] for _ in range(100)]
        plain = _index(objects)
        split = _index(objects, lb=LoadBalanceConfig(max_sublist_len=10))
        assert split.host_bytes() > plain.host_bytes()


@settings(max_examples=30)
@given(
    st.lists(st.lists(st.integers(0, 20), max_size=6), min_size=1, max_size=30),
    st.integers(1, 8),
)
def test_split_and_plain_agree_on_every_keyword(raw_objects, max_len):
    corpus = Corpus(raw_objects)
    plain = InvertedIndex.build(corpus)
    split = InvertedIndex.build(corpus, load_balance=LoadBalanceConfig(max_sublist_len=max_len))
    split.validate()
    for kw in range(21):
        assert np.array_equal(plain.postings_for_keyword(kw), split.postings_for_keyword(kw))
