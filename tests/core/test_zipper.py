"""Tests for the Gate (ZipperArray + AuditThreshold)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.zipper import Gate
from repro.errors import ConfigError, InvariantError, ReproError


class TestGateBasics:
    def test_initial_threshold_is_one(self):
        assert Gate(k=3, count_bound=10).audit_threshold == 1

    def test_low_count_rejected(self):
        gate = Gate(k=1, count_bound=5)
        gate.offer(1)  # passes, AT -> 2
        assert gate.offer(1) is False

    def test_at_advances_when_k_reached(self):
        gate = Gate(k=2, count_bound=5)
        assert gate.offer(1)
        assert gate.audit_threshold == 1
        assert gate.offer(1)
        assert gate.audit_threshold == 2

    def test_out_of_bound_count_rejected(self):
        gate = Gate(k=1, count_bound=3)
        with pytest.raises(ConfigError):
            gate.offer(4)

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            Gate(k=0, count_bound=3)
        with pytest.raises(ConfigError):
            Gate(k=1, count_bound=0)


class TestPaperExample31:
    """Walk the Gate through Example 3.1's update sequence (k = 1)."""

    def test_trace(self):
        gate = Gate(k=1, count_bound=3)
        # Scanning (A,[1,2]): O1 reaches 1, passes; ZA[1]=1 >= k -> AT=2.
        assert gate.offer(1) is True
        assert gate.audit_threshold == 2
        # O2 and O3 reach 1 < AT: rejected.
        assert gate.offer(1) is False
        assert gate.offer(1) is False
        # Scanning (B,[1,1]): O2 reaches 2 >= AT, passes; AT -> 3.
        assert gate.offer(2) is True
        assert gate.audit_threshold == 3
        # Scanning (C,[2,3]): O2 reaches 3 >= AT, passes; AT -> 4.
        assert gate.offer(3) is True
        assert gate.audit_threshold == 4
        # O3 reaches 2 < AT: rejected.
        assert gate.offer(2) is False


@settings(max_examples=50)
@given(
    st.integers(1, 5),
    st.integers(2, 8),
    st.lists(st.integers(0, 19), min_size=1, max_size=300),
)
def test_lemma_3_1_invariant_and_threshold(k, bound, objects):
    """Lemma 3.1 + Theorem 3.1: after any update stream, AT-1 equals the
    k-th largest simulated count."""
    gate = Gate(k=k, count_bound=bound)
    counts = np.zeros(20, dtype=np.int64)
    for obj in objects:
        if counts[obj] >= bound:
            continue  # count bound respected by construction
        counts[obj] += 1
        gate.offer(int(counts[obj]))
        gate.check_invariant()
    kth = np.sort(counts)[::-1][k - 1] if counts.size >= k else 0
    assert gate.audit_threshold - 1 == kth


class TestInvariantError:
    """check_invariant raises InvariantError (not assert) on corruption.

    Regression for the two former ``assert`` statements, which were
    stripped under ``python -O`` and uncatchable as ReproError.
    """

    def test_healthy_gate_passes(self):
        gate = Gate(k=2, count_bound=5)
        gate.offer(1)
        gate.check_invariant()

    def test_za_at_corruption_raises_invariant_error(self):
        gate = Gate(k=2, count_bound=5)
        gate._za[gate.audit_threshold] = gate.k  # simulate ZA[AT] >= k
        with pytest.raises(InvariantError, match=r"ZA\[AT\] must stay below k"):
            gate.check_invariant()

    def test_za_below_at_corruption_raises_invariant_error(self):
        gate = Gate(k=1, count_bound=5)
        assert gate.offer(1)  # AT -> 2
        gate._za[gate.audit_threshold - 1] = 0  # simulate ZA[AT-1] < k
        with pytest.raises(InvariantError, match=r"ZA\[AT-1\] must have reached k"):
            gate.check_invariant()

    def test_invariant_error_is_a_repro_error(self):
        gate = Gate(k=2, count_bound=5)
        gate._za[gate.audit_threshold] = gate.k
        with pytest.raises(ReproError):
            gate.check_invariant()
