"""Tests for vectorized selection and c-PQ cost derivation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import audit_threshold_from_counts, derive_cpq_cost, topk_from_counts


class TestTopkFromCounts:
    def test_ordering_count_desc_id_asc(self):
        result = topk_from_counts(np.array([3, 5, 5, 1]), k=3)
        assert result.as_pairs() == [(1, 5), (2, 5), (0, 3)]

    def test_zero_counts_excluded(self):
        result = topk_from_counts(np.array([0, 2, 0]), k=3)
        assert result.as_pairs() == [(1, 2)]

    def test_empty(self):
        assert len(topk_from_counts(np.array([]), k=3)) == 0
        assert len(topk_from_counts(np.array([1, 2]), k=0)) == 0

    def test_threshold_is_kth_count(self):
        result = topk_from_counts(np.array([9, 7, 5, 3]), k=2)
        assert result.threshold == 7

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=80), st.integers(1, 12))
    def test_matches_full_sort(self, counts, k):
        counts_arr = np.asarray(counts, dtype=np.int64)
        result = topk_from_counts(counts_arr, k)
        order = np.lexsort((np.arange(counts_arr.size), -counts_arr))
        expected = [
            (int(i), int(counts_arr[i])) for i in order[:k] if counts_arr[i] > 0
        ]
        assert result.as_pairs() == expected


class TestAuditThreshold:
    def test_matches_kth_plus_one(self):
        counts = np.array([4, 1, 3, 3])
        assert audit_threshold_from_counts(counts, 2) == 4  # kth=3 -> AT=4

    def test_k_exceeds_n(self):
        assert audit_threshold_from_counts(np.array([5]), 3) == 6

    def test_empty(self):
        assert audit_threshold_from_counts(np.array([]), 3) == 1

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=60), st.integers(1, 10))
    def test_definition(self, counts, k):
        counts_arr = np.asarray(counts, dtype=np.int64)
        at = audit_threshold_from_counts(counts_arr, k)
        kk = min(k, counts_arr.size)
        kth = np.sort(counts_arr)[::-1][kk - 1]
        assert at == kth + 1


class TestDeriveCpqCost:
    def test_fields_consistent(self):
        counts = np.array([5, 3, 0, 1])
        state = derive_cpq_cost(counts, k=2)
        assert state.updates == 9
        assert state.audit_threshold == 4
        assert 0 < state.ht_entries <= 3
        assert state.gate_passes >= 0

    def test_ht_entries_bounded_by_theorem(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 10, size=500)
        k = 7
        state = derive_cpq_cost(counts, k=k)
        assert state.ht_entries <= k * state.audit_threshold
        assert state.ht_entries <= int(np.count_nonzero(counts))

    def test_all_zero(self):
        state = derive_cpq_cost(np.zeros(10, dtype=np.int64), k=3)
        assert state.updates == 0
        assert state.audit_threshold == 1
        assert state.ht_entries == 0
