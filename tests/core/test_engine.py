"""Tests for the GENIE engine: correctness against the reference model,
the GEN-SPQ variant, memory behaviour, and profiling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import GenieConfig, GenieEngine, per_query_device_bytes
from repro.core.load_balance import LoadBalanceConfig
from repro.core.match_count import brute_force_topk
from repro.core.types import Corpus, Query
from repro.errors import ConfigError, GpuOutOfMemoryError, QueryError
from repro.gpu.device import Device
from repro.gpu.specs import small_device

FIG1 = Corpus([[1, 12, 21], [2, 11, 22], [1, 13, 23]])
Q1 = Query(items=[[1, 2], [11], [22, 23]])


def _counts(result):
    return sorted(result.counts.tolist(), reverse=True)


class TestCorrectness:
    def test_paper_example_top1(self):
        engine = GenieEngine(config=GenieConfig(k=1)).fit(FIG1)
        result = engine.query([Q1])[0]
        assert result.as_pairs() == [(1, 3)]
        assert result.threshold == 3

    def test_batch_queries(self):
        engine = GenieEngine(config=GenieConfig(k=2)).fit(FIG1)
        q2 = Query(items=[[1]])
        results = engine.query([Q1, q2])
        assert results[0].as_pairs()[0] == (1, 3)
        assert results[1].as_pairs() == [(0, 1), (2, 1)]

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.lists(st.integers(0, 12), max_size=6), min_size=1, max_size=15),
        st.lists(
            st.lists(st.lists(st.integers(0, 12), min_size=1, max_size=3), min_size=1, max_size=3),
            min_size=1,
            max_size=3,
        ),
        st.integers(1, 5),
    )
    def test_matches_brute_force(self, raw_objects, raw_queries, k):
        corpus = Corpus(raw_objects)
        queries = [Query(items=items) for items in raw_queries]
        engine = GenieEngine(config=GenieConfig(k=k)).fit(corpus)
        for query, result in zip(queries, engine.query(queries)):
            expected = [(i, c) for i, c in brute_force_topk(query, corpus, k) if c > 0]
            assert _counts(result) == sorted((c for _, c in expected), reverse=True)

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.lists(st.integers(0, 10), max_size=5), min_size=1, max_size=12),
        st.lists(st.integers(0, 10), min_size=1, max_size=6),
        st.integers(1, 4),
    )
    def test_reference_cpq_agrees_with_fast_path(self, raw_objects, keywords, k):
        corpus = Corpus(raw_objects)
        query = Query.from_keywords(keywords)
        fast = GenieEngine(config=GenieConfig(k=k)).fit(corpus)
        slow = GenieEngine(config=GenieConfig(k=k, reference_cpq=True)).fit(corpus)
        assert _counts(fast.query([query])[0]) == _counts(slow.query([query])[0])


class TestGenSpqVariant:
    def test_same_results_as_cpq(self):
        corpus = Corpus([[i % 7, (i * 3) % 7, 7 + i % 4] for i in range(40)])
        query = Query.from_keywords([0, 3, 8])
        genie = GenieEngine(config=GenieConfig(k=5)).fit(corpus)
        gen_spq = GenieEngine(config=GenieConfig(k=5, use_cpq=False)).fit(corpus)
        assert _counts(genie.query([query])[0]) == _counts(gen_spq.query([query])[0])

    def test_gen_spq_needs_more_memory_per_query(self):
        genie = per_query_device_bytes(10_000, 10, 16, None, use_cpq=True)
        gen_spq = per_query_device_bytes(10_000, 10, 16, None, use_cpq=False)
        assert gen_spq > genie


class TestLoadBalancedEngine:
    def test_same_results_with_lb(self):
        corpus = Corpus([[7, i % 3] for i in range(100)])
        query = Query(items=[[7], [0, 1]])
        plain = GenieEngine(config=GenieConfig(k=4)).fit(corpus)
        balanced = GenieEngine(
            config=GenieConfig(k=4, load_balance=LoadBalanceConfig(max_sublist_len=8))
        ).fit(corpus)
        assert _counts(plain.query([query])[0]) == _counts(balanced.query([query])[0])


class TestMemoryBehaviour:
    def test_batch_state_released_after_query(self):
        device = Device()
        engine = GenieEngine(device=device, config=GenieConfig(k=2)).fit(FIG1)
        used_before = device.memory.used
        engine.query([Q1])
        assert device.memory.used == used_before

    def test_oom_on_oversized_batch(self):
        corpus = Corpus([[i % 50] for i in range(5_000)])
        device = Device(small_device(64 * 1024))
        engine = GenieEngine(device=device, config=GenieConfig(k=10, use_cpq=False)).fit(corpus)
        with pytest.raises(GpuOutOfMemoryError):
            engine.query([Query.from_keywords([0])] * 64)

    def test_max_batch_size_positive_on_default_device(self):
        engine = GenieEngine(config=GenieConfig(k=10)).fit(FIG1)
        assert engine.max_batch_size(count_bound=3) > 0


class TestBatchedWorkloads:
    def _engine_and_batches(self):
        corpus = Corpus([[i % 20, 20 + i % 7] for i in range(300)])
        device = Device(small_device(16 * 1024))
        engine = GenieEngine(device=device, config=GenieConfig(k=2)).fit(corpus)
        small = [Query.from_keywords([i % 20]) for i in range(4)]
        # A huge count bound inflates the per-query Hash Table until the
        # batch no longer fits next to the resident index.
        huge = [Query(items=[[j] for j in range(120)]) for _ in range(4)]
        return engine, small, huge

    def test_query_batched_merges_profiles(self):
        engine, small, _ = self._engine_and_batches()
        engine.query(small[:2])
        one_batch_match = engine.last_profile.get("match")
        engine.query_batched(small + small, batch_size=2)
        assert engine.last_profile.get("match") == pytest.approx(4 * one_batch_match)

    def test_query_batched_oom_keeps_profile_consistent(self):
        engine, small, huge = self._engine_and_batches()
        engine.query(small)
        clean_match = engine.last_profile.get("match")
        with pytest.raises(GpuOutOfMemoryError):
            engine.query_batched(small + small + huge, batch_size=4)
        # Two small batches completed before the third raised: last_profile
        # holds their accumulated profile, not the dangling failed batch.
        assert engine.last_profile.get("match") == pytest.approx(2 * clean_match)
        # The engine stays usable and the failed batch leaked no memory.
        used_before = engine.device.memory.used
        engine.query(small)
        assert engine.device.memory.used == used_before


class TestProfiling:
    def test_profile_has_pipeline_stages(self):
        engine = GenieEngine(config=GenieConfig(k=1)).fit(FIG1)
        engine.query([Q1])
        profile = engine.last_profile
        assert profile.get("match") > 0
        assert profile.get("select") > 0
        assert profile.get("query_transfer") > 0

    def test_index_transfer_charged_at_fit(self):
        device = Device()
        GenieEngine(device=device, config=GenieConfig(k=1)).fit(FIG1)
        assert device.timings.get("index_transfer") > 0


class TestErrors:
    def test_query_before_fit(self):
        with pytest.raises(QueryError):
            GenieEngine().query([Q1])

    def test_empty_batch(self):
        engine = GenieEngine(config=GenieConfig(k=1)).fit(FIG1)
        with pytest.raises(QueryError):
            engine.query([])

    def test_bad_k(self):
        engine = GenieEngine(config=GenieConfig(k=1)).fit(FIG1)
        with pytest.raises(QueryError):
            engine.query([Q1], k=0)

    def test_config_with_copies(self):
        config = GenieConfig(k=5)
        other = config.with_(k=9, use_cpq=False)
        assert config.k == 5
        assert other.k == 9
        assert not other.use_cpq

    def test_config_with_rejects_unknown_fields(self):
        # Regression: typos must raise ConfigError naming the bad key, not
        # fall through to dataclasses.replace's TypeError.
        with pytest.raises(ConfigError, match="ks"):
            GenieConfig().with_(ks=9)
        with pytest.raises(ConfigError, match="bitz, kq"):
            GenieConfig().with_(kq=1, bitz=2, k=3)
        # Valid fields still work after the check.
        assert GenieConfig().with_(k=3).k == 3
