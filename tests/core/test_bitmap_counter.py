"""Tests for the bit-packed Bitmap Counter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmap_counter import BitmapCounter, bits_for_bound
from repro.errors import ConfigError


class TestBitsForBound:
    def test_thresholds(self):
        assert bits_for_bound(0) == 1
        assert bits_for_bound(1) == 1
        assert bits_for_bound(2) == 2
        assert bits_for_bound(3) == 2
        assert bits_for_bound(4) == 4
        assert bits_for_bound(15) == 4
        assert bits_for_bound(16) == 8
        assert bits_for_bound(255) == 8
        assert bits_for_bound(256) == 16

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            bits_for_bound(-1)

    def test_huge_bound_rejected(self):
        with pytest.raises(ConfigError):
            bits_for_bound(2**33)


class TestBitmapCounter:
    def test_memory_footprint_packs(self):
        # 64 counters x 4 bits = 32 bytes (8 uint32 words).
        bc = BitmapCounter(64, count_bound=15)
        assert bc.bits == 4
        assert bc.nbytes == 32

    def test_increment_and_get(self):
        bc = BitmapCounter(10, count_bound=7)
        assert bc.increment(3) == 1
        assert bc.increment(3) == 2
        assert bc.get(3) == 2
        assert bc.get(4) == 0

    def test_neighbours_in_same_word_independent(self):
        bc = BitmapCounter(8, count_bound=7, bits=4)
        bc.increment(0)
        bc.increment(1)
        bc.increment(1)
        assert bc.get(0) == 1
        assert bc.get(1) == 2
        assert bc.get(2) == 0

    def test_saturation(self):
        bc = BitmapCounter(4, count_bound=3, bits=2)
        for _ in range(10):
            bc.increment(0)
        assert bc.get(0) == 3

    def test_out_of_range_rejected(self):
        bc = BitmapCounter(4, count_bound=3)
        with pytest.raises(IndexError):
            bc.increment(4)
        with pytest.raises(IndexError):
            bc.get(-1)

    def test_bits_too_small_for_bound_rejected(self):
        with pytest.raises(ConfigError):
            BitmapCounter(4, count_bound=100, bits=2)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ConfigError):
            BitmapCounter(4, count_bound=3, bits=3)

    def test_reset(self):
        bc = BitmapCounter(4, count_bound=3)
        bc.increment(2)
        bc.reset()
        assert bc.to_array().tolist() == [0, 0, 0, 0]

    def test_load_counts_roundtrip(self):
        bc = BitmapCounter(6, count_bound=15)
        counts = np.array([0, 3, 15, 1, 7, 2])
        bc.load_counts(counts)
        assert np.array_equal(bc.to_array(), counts)

    def test_load_counts_saturates(self):
        bc = BitmapCounter(2, count_bound=3, bits=2)
        bc.load_counts(np.array([9, 1]))
        assert bc.to_array().tolist() == [3, 1]

    def test_load_counts_shape_checked(self):
        bc = BitmapCounter(3, count_bound=3)
        with pytest.raises(ConfigError):
            bc.load_counts(np.array([1, 2]))

    @settings(max_examples=30)
    @given(
        st.integers(1, 100),
        st.sampled_from([1, 2, 4, 8, 16, 32]),
        st.data(),
    )
    def test_packed_counts_match_plain_array(self, n, bits, data):
        bound = (1 << bits) - 1
        bc = BitmapCounter(n, count_bound=bound, bits=bits)
        reference = np.zeros(n, dtype=np.int64)
        updates = data.draw(st.lists(st.integers(0, n - 1), max_size=200))
        for obj in updates:
            bc.increment(obj)
            reference[obj] = min(reference[obj] + 1, bound)
        assert np.array_equal(bc.to_array(), reference)
        assert np.array_equal(bc.get_many(np.arange(n)), reference)
