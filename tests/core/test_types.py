"""Tests for the core data model (Corpus, Query, TopKResult)."""

import numpy as np
import pytest

from repro.core.types import Corpus, Query, TopKResult, as_keyword_array
from repro.errors import QueryError


class TestKeywordArray:
    def test_accepts_lists_and_arrays(self):
        assert as_keyword_array([1, 2, 3]).tolist() == [1, 2, 3]
        assert as_keyword_array(np.array([4, 5])).tolist() == [4, 5]

    def test_rejects_negative(self):
        with pytest.raises(QueryError):
            as_keyword_array([1, -2])

    def test_empty(self):
        assert as_keyword_array([]).size == 0


class TestCorpus:
    def test_dedupes_and_sorts_object_keywords(self):
        corpus = Corpus([[3, 1, 3, 2]])
        assert corpus[0].tolist() == [1, 2, 3]

    def test_max_keyword(self):
        corpus = Corpus([[1, 5], [2]])
        assert corpus.max_keyword == 5

    def test_empty_corpus(self):
        corpus = Corpus([])
        assert len(corpus) == 0
        assert corpus.max_keyword == -1
        assert corpus.total_entries == 0

    def test_empty_object_allowed(self):
        corpus = Corpus([[], [1]])
        assert corpus[0].size == 0

    def test_sizes_cached_at_construction(self):
        corpus = Corpus([[1, 2, 2, 3], [4], []])
        assert corpus.total_entries == 4  # dedup applies before counting
        assert corpus.max_object_size() == 3
        assert Corpus([]).max_object_size() == 0

    def test_total_entries_after_dedupe(self):
        corpus = Corpus([[1, 1, 2], [3]])
        assert corpus.total_entries == 3

    def test_iteration(self):
        corpus = Corpus([[1], [2]])
        assert [arr.tolist() for arr in corpus] == [[1], [2]]


class TestQuery:
    def test_from_keywords_one_item_each(self):
        query = Query.from_keywords([7, 8, 9])
        assert query.num_items == 3
        assert all(item.size == 1 for item in query.items)

    def test_all_keywords_concatenates(self):
        query = Query(items=[[1, 2], [3]])
        assert query.all_keywords().tolist() == [1, 2, 3]

    def test_count_bound_single_keyword_items(self):
        # One keyword per item (LSH shape): bound = number of items.
        query = Query.from_keywords([1, 2, 3, 4])
        assert query.count_bound() == 4

    def test_count_bound_range_items(self):
        # Multi-keyword items (relational shape): bound = total keywords.
        query = Query(items=[[1, 2, 3], [4, 5]])
        assert query.count_bound() == 5

    def test_empty_query(self):
        query = Query(items=[])
        assert query.num_items == 0
        assert query.all_keywords().size == 0
        assert query.num_keywords == 0
        assert query.count_bound() == 0

    def test_num_keywords_counts_repeats_across_items(self):
        query = Query(items=[[1, 2], [2], []])
        assert query.num_keywords == 3

    def test_single_keyword_fast_path_still_validates(self):
        with pytest.raises(QueryError):
            Query(items=[np.asarray([-3], dtype=np.int64)])

    def test_items_never_alias_caller_arrays(self):
        raw = np.asarray([5], dtype=np.int64)
        query = Query(items=[raw])
        raw[0] = -1
        assert query.items[0].tolist() == [5]

    def test_items_are_canonical_sets(self):
        query = Query(items=[[5, 5, 1]])
        assert query.items[0].tolist() == [1, 5]
        # count_bound is cached and stable across calls.
        assert query.count_bound() == query.count_bound() == 2


class TestTopKResult:
    def test_pairs(self):
        result = TopKResult(ids=[5, 3], counts=[9, 7])
        assert result.as_pairs() == [(5, 9), (3, 7)]
        assert len(result) == 2

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            TopKResult(ids=[1, 2], counts=[1])
