"""Tests for the assembled c-PQ — including Theorem 3.1's guarantees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cpq import CountPriorityQueue, hash_table_capacity
from repro.errors import ConfigError


class TestConstruction:
    def test_capacity_scales_with_k_and_bound(self):
        assert hash_table_capacity(10, 64) > hash_table_capacity(10, 8)
        assert hash_table_capacity(100, 8) > hash_table_capacity(10, 8)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            CountPriorityQueue(10, k=0, count_bound=4)
        with pytest.raises(ConfigError):
            CountPriorityQueue(10, k=1, count_bound=0)


class TestPaperExample31:
    """Example 3.1: data of Fig. 1, query Q1, k = 1."""

    def _run(self):
        cpq = CountPriorityQueue(n_objects=3, k=1, count_bound=3)
        # Postings scanned in the order (A,[1,2]), (B,[1,1]), (C,[2,3]):
        # (A,[1,2]) matches O1 (A=1), O2 (A=2), O3 (A=1).
        cpq.update_many([0, 1, 2])
        # (B,[1,1]) matches O2 only.
        cpq.update(1)
        # (C,[2,3]) matches O2 (C=2) and O3 (C=3).
        cpq.update_many([1, 2])
        return cpq

    def test_final_state(self):
        cpq = self._run()
        assert cpq.audit_threshold == 4
        assert cpq.bc.to_array().tolist() == [1, 3, 2]
        # HT ends with O1:1 and O2:3 (O3's count-2 update came after AT=4).
        assert cpq.ht.get(1) == 3

    def test_top1_is_o2_with_count_3(self):
        result = self._run().select_topk()
        assert result.as_pairs() == [(1, 3)]
        assert result.threshold == 3  # MC_k = AT - 1 = 3


@settings(max_examples=40, deadline=None)
@given(
    st.integers(1, 5),
    st.integers(2, 6),
    st.integers(4, 25),
    st.data(),
)
def test_theorem_3_1(k, bound, n_objects, data):
    """Theorem 3.1: top-k ends in the HT; threshold equals the k-th count."""
    updates = data.draw(st.lists(st.integers(0, n_objects - 1), max_size=150))
    cpq = CountPriorityQueue(n_objects, k=k, count_bound=bound)
    reference = np.zeros(n_objects, dtype=np.int64)
    for obj in updates:
        if reference[obj] >= bound:
            continue
        reference[obj] += 1
        cpq.update(obj)

    kth = np.sort(reference)[::-1][k - 1] if n_objects >= k else 0
    assert cpq.audit_threshold - 1 == kth

    result = cpq.select_topk()
    # Result counts must equal the true top-k counts (ties broken freely).
    true_topk = np.sort(reference)[::-1][: min(k, n_objects)]
    true_topk = true_topk[true_topk > 0]
    assert sorted(result.counts.tolist(), reverse=True) == true_topk.tolist()
    # All reported ids must carry their true count.
    for obj, count in result.as_pairs():
        assert reference[obj] == count

    # HT population bound: O(k * AT) with the implementation's slack.
    assert cpq.ht.size <= hash_table_capacity(k, bound)


class TestSelection:
    def test_fewer_than_k_nonzero(self):
        cpq = CountPriorityQueue(10, k=5, count_bound=4)
        cpq.update_many([0, 0, 1])
        result = cpq.select_topk()
        assert len(result) == 2
        assert result.as_pairs()[0] == (0, 2)

    def test_no_updates(self):
        cpq = CountPriorityQueue(10, k=3, count_bound=4)
        assert len(cpq.select_topk()) == 0

    def test_memory_accounts_components(self):
        cpq = CountPriorityQueue(1000, k=10, count_bound=15)
        assert cpq.memory_bytes() >= cpq.bc.nbytes + cpq.ht.nbytes
