"""Tests for postings-list splitting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.load_balance import LoadBalanceConfig, group_spans_into_blocks, split_span


class TestSplitSpan:
    def test_short_span_unchanged(self):
        assert split_span(0, 10, 100) == [(0, 10)]

    def test_exact_multiple(self):
        assert split_span(0, 12, 4) == [(0, 4), (4, 8), (8, 12)]

    def test_remainder_chunk(self):
        assert split_span(5, 15, 4) == [(5, 9), (9, 13), (13, 15)]

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            split_span(10, 5, 4)

    @given(st.integers(0, 1000), st.integers(0, 5000), st.integers(1, 512))
    def test_coverage_and_length(self, start, length, max_len):
        end = start + length
        chunks = split_span(start, end, max_len)
        # Chunks tile the span exactly.
        cursor = start
        for lo, hi in chunks:
            assert lo == cursor
            assert hi - lo <= max_len
            assert hi > lo or (length == 0 and hi == lo)
            cursor = hi
        assert cursor == end


class TestGrouping:
    def test_groups_of_two(self):
        spans = [(0, 4), (4, 8), (8, 12)]
        groups = group_spans_into_blocks(spans, 2)
        assert groups == [[(0, 4), (4, 8)], [(8, 12)]]

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            group_spans_into_blocks([(0, 1)], 0)

    def test_empty(self):
        assert group_spans_into_blocks([], 2) == []


class TestConfig:
    def test_paper_defaults(self):
        config = LoadBalanceConfig()
        assert config.max_sublist_len == 4096
        assert config.max_lists_per_block == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadBalanceConfig(max_sublist_len=0)
        with pytest.raises(ValueError):
            LoadBalanceConfig(max_lists_per_block=0)
