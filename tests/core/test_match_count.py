"""Tests for the match-count reference implementation.

Uses the paper's running example (Fig. 1): a three-attribute table with
O1 = {(A,1),(B,2),(C,1)}, O2 = {(A,2),(B,1),(C,2)}, O3 = {(A,1),(B,3),(C,3)}
and Q1 = {(A,[1,2]), (B,[1,1]), (C,[2,3])}. Keywords encode (attr, value)
as ``attr_index * 10 + value``.
"""

import numpy as np

from repro.core.match_count import brute_force_topk, item_count, match_count, match_counts_all
from repro.core.types import Corpus, Query

# Fig. 1 encoding: A=0x, B=1x, C=2x.
O1 = [1, 12, 21]
O2 = [2, 11, 22]
O3 = [1, 13, 23]
FIG1 = Corpus([O1, O2, O3])
Q1 = Query(items=[[1, 2], [11], [22, 23]])


class TestPaperExample:
    def test_mc_q1_o1_is_one(self):
        # The paper computes MC(Q1, O1) = 1 + 0 + 0 = 1.
        assert match_count(Q1, FIG1[0]) == 1

    def test_mc_q1_o2_is_three(self):
        assert match_count(Q1, FIG1[1]) == 3

    def test_mc_q1_o3_is_two(self):
        assert match_count(Q1, FIG1[2]) == 2

    def test_item_counts(self):
        assert item_count(np.array([1, 2]), FIG1[0]) == 1
        assert item_count(np.array([11]), FIG1[0]) == 0

    def test_top1_is_o2(self):
        # Example 3.1: the top-1 of Q1 is O2 with count 3.
        assert brute_force_topk(Q1, FIG1, 1) == [(1, 3)]


class TestGeneral:
    def test_counts_all(self):
        assert match_counts_all(Q1, FIG1).tolist() == [1, 3, 2]

    def test_empty_query(self):
        assert match_count(Query(items=[]), FIG1[0]) == 0

    def test_empty_object(self):
        assert match_count(Q1, np.array([], dtype=np.int64)) == 0

    def test_topk_tie_break_by_id(self):
        corpus = Corpus([[1], [1], [2]])
        query = Query(items=[[1]])
        assert brute_force_topk(query, corpus, 2) == [(0, 1), (1, 1)]

    def test_topk_k_larger_than_corpus(self):
        corpus = Corpus([[1]])
        query = Query(items=[[1]])
        assert brute_force_topk(query, corpus, 5) == [(0, 1)]

    def test_multi_keyword_item_counts_each_element(self):
        # An item covering two of the object's elements counts both.
        obj = np.array([1, 2, 3])
        assert item_count(np.array([1, 2]), obj) == 2
