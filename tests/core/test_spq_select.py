"""Tests for the SPQ bucket k-selection (Appendix A)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import topk_from_counts
from repro.core.spq_select import spq_topk


class TestSpqTopk:
    def test_simple(self):
        result, trace = spq_topk(np.array([1, 9, 4, 7]), k=2)
        assert result.as_pairs() == [(1, 9), (3, 7)]
        assert trace.iterations >= 1

    def test_all_equal_counts(self):
        result, _ = spq_topk(np.full(10, 5), k=3)
        assert result.as_pairs() == [(0, 5), (1, 5), (2, 5)]

    def test_zero_counts_excluded(self):
        result, _ = spq_topk(np.array([0, 0, 2]), k=2)
        assert result.as_pairs() == [(2, 2)]

    def test_empty_and_zero_k(self):
        result, trace = spq_topk(np.array([]), k=5)
        assert len(result) == 0
        assert trace.elements_scanned == 0
        result, _ = spq_topk(np.array([1, 2]), k=0)
        assert len(result) == 0

    def test_k_exceeds_n(self):
        result, _ = spq_topk(np.array([3, 1]), k=10)
        assert result.as_pairs() == [(0, 3), (1, 1)]

    def test_trace_first_pass_scans_everything(self):
        counts = np.arange(1000)
        _, trace = spq_topk(counts, k=5)
        assert trace.elements_scanned >= 1000

    def test_multi_iteration_on_adversarial_ties(self):
        # Many ties around the k-th value force bucket recursion.
        counts = np.concatenate([np.full(500, 10), np.arange(500) % 10])
        result, trace = spq_topk(counts, k=100)
        assert all(c == 10 for _, c in result.as_pairs())
        assert trace.iterations >= 1

    @settings(max_examples=60)
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200), st.integers(1, 20))
    def test_agrees_with_reference_selection(self, counts, k):
        counts_arr = np.asarray(counts, dtype=np.int64)
        spq_result, trace = spq_topk(counts_arr, k)
        reference = topk_from_counts(counts_arr, k)
        assert spq_result.as_pairs() == reference.as_pairs()
        # SPQ always scans at least the full array once (its cost signature).
        assert trace.elements_scanned >= counts_arr.size
