"""Tests for the modified Robin Hood hash table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hash_table import RobinHoodHashTable, next_power_of_two
from repro.errors import ConfigError


class TestNextPowerOfTwo:
    def test_values(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1000) == 1024

    def test_zero_clamped(self):
        assert next_power_of_two(0) == 1


class TestBasicOperations:
    def test_put_get(self):
        ht = RobinHoodHashTable(16)
        ht.put(5, 3)
        assert ht.get(5) == 3
        assert ht.get(6) is None
        assert ht.size == 1

    def test_update_keeps_monotone_value(self):
        ht = RobinHoodHashTable(16)
        ht.put(5, 3)
        ht.put(5, 7)
        ht.put(5, 2)  # counts never decrease
        assert ht.get(5) == 7
        assert ht.size == 1

    def test_negative_key_rejected(self):
        with pytest.raises(ConfigError):
            RobinHoodHashTable(16).put(-1, 0)

    def test_scan_filters_by_value(self):
        ht = RobinHoodHashTable(16)
        ht.put(1, 5)
        ht.put(2, 2)
        keys, values = ht.scan(min_value=3)
        assert keys.tolist() == [1]
        assert values.tolist() == [5]

    def test_items(self):
        ht = RobinHoodHashTable(16)
        ht.put(1, 5)
        ht.put(2, 2)
        assert sorted(ht.items()) == [(1, 5), (2, 2)]

    def test_capacity_rounded_up(self):
        assert RobinHoodHashTable(20).capacity == 32

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            RobinHoodHashTable(0)


class TestExpiredOverwrite:
    def test_expired_entry_can_be_displaced(self):
        # Fill a tiny table with expired entries, then insert fresh ones:
        # with the modification this succeeds by overwriting in place.
        ht = RobinHoodHashTable(8, expired_overwrite=True)
        for key in range(8):
            ht.put(key, 1)
        for key in range(100, 108):
            ht.put(key, 10, expire_below=5)
        assert ht.expired_overwrites > 0
        for key in range(100, 108):
            assert ht.get(key) == 10

    def test_without_modification_full_table_overflows(self):
        ht = RobinHoodHashTable(8, expired_overwrite=False)
        for key in range(8):
            ht.put(key, 1)
        with pytest.raises(ConfigError):
            for key in range(100, 108):
                ht.put(key, 10, expire_below=5)

    def test_live_entries_never_overwritten(self):
        ht = RobinHoodHashTable(16, expired_overwrite=True)
        ht.put(1, 9)
        for key in range(2, 12):
            ht.put(key, 9, expire_below=5)
        assert ht.get(1) == 9  # value >= threshold survived


@settings(max_examples=40)
@given(st.dictionaries(st.integers(0, 10_000), st.integers(0, 100), max_size=60))
def test_matches_python_dict(mapping):
    ht = RobinHoodHashTable(256)
    for key, value in mapping.items():
        ht.put(key, value)
    for key, value in mapping.items():
        assert ht.get(key) == value
    assert ht.size == len(mapping)
    assert sorted(ht.items()) == sorted(mapping.items())


@settings(max_examples=20)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(1, 30)), max_size=200))
def test_monotone_updates_keep_maximum(updates):
    ht = RobinHoodHashTable(128)
    best: dict[int, int] = {}
    for key, value in updates:
        ht.put(key, value)
        best[key] = max(best.get(key, 0), value)
    for key, value in best.items():
        assert ht.get(key) == value
